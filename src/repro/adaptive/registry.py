"""Versioned on-disk model registry with atomic promote / rollback.

Adaptive layer 4.  Retrained models have to reach the live service
without a deploy step and without ever exposing a half-written file:

* every published model lands under ``<root>/versions/vNNNN.model``
  (Oracle text format, written via temp-file + ``os.replace``) next to a
  ``vNNNN.json`` metadata sidecar (provenance: source fingerprint,
  trigger, scores, creation time);
* the *live* version is a single ``CURRENT`` pointer file, replaced
  atomically, so a reader never sees a torn pointer — promotion and
  rollback are both one ``os.replace``;
* every pointer move is appended to ``HISTORY`` (``<ts> <event>
  <version>``), which is what :meth:`ModelRegistry.rollback` walks to
  find the previous live version.

The registry is a directory, so it is shared trivially between the
retraining worker (writer) and any number of serving processes
(readers).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.model_io import OracleModel, load_model, save_model
from repro.errors import AdaptiveError

__all__ = ["ModelRegistry", "RegistryEntry"]

_VERSIONS = "versions"
_CURRENT = "CURRENT"
_HISTORY = "HISTORY"


@dataclass(frozen=True)
class RegistryEntry:
    """One published model version: file paths + metadata."""

    version: str
    model_path: str
    metadata: Dict[str, object]

    @property
    def created_at(self) -> float:
        return float(self.metadata.get("created_at", 0.0))


def _atomic_write(path: str, content: str) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".registry.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(content)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


class ModelRegistry:
    """Directory of versioned Oracle models with an atomic live pointer.

    Parameters
    ----------
    root:
        Registry directory; created if absent.

    Publishing and promotion are separate steps: :meth:`publish` writes
    a new immutable version, :meth:`promote` moves the ``CURRENT``
    pointer to it.  :meth:`rollback` moves the pointer back to the
    previously live version.  All mutation is serialised by an in-process
    lock; on-disk readers are safe at any time because every file
    appears via ``os.replace``.
    """

    def __init__(self, root) -> None:
        self.root = str(root)
        os.makedirs(os.path.join(self.root, _VERSIONS), exist_ok=True)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _version_dir(self) -> str:
        return os.path.join(self.root, _VERSIONS)

    def _model_path(self, version: str) -> str:
        return os.path.join(self._version_dir(), f"{version}.model")

    def _meta_path(self, version: str) -> str:
        return os.path.join(self._version_dir(), f"{version}.json")

    def versions(self) -> List[str]:
        """All published versions, oldest first."""
        return sorted(
            name[: -len(".model")]
            for name in os.listdir(self._version_dir())
            if name.endswith(".model")
        )

    def _next_version(self) -> str:
        existing = self.versions()
        highest = 0
        for version in existing:
            try:
                highest = max(highest, int(version.lstrip("v")))
            except ValueError:
                continue
        return f"v{highest + 1:04d}"

    # ------------------------------------------------------------------
    def publish(
        self,
        model: OracleModel,
        *,
        metadata: Optional[Dict[str, object]] = None,
    ) -> str:
        """Write *model* as a new immutable version; returns its id.

        The version stamp and provenance metadata are embedded in the
        model file itself (``meta`` line), so a model file copied out of
        the registry still knows where it came from.
        """
        with self._lock:
            version = self._next_version()
            meta: Dict[str, object] = {
                "version": version,
                "created_at": time.time(),
                **(metadata or {}),
            }
            stamped = OracleModel(
                kind=model.kind,
                trees=model.trees,
                classes=model.classes,
                n_features=model.n_features,
                system=model.system,
                backend=model.backend,
                metadata={**model.metadata, **meta},
            )
            model_path = self._model_path(version)
            fd, tmp = tempfile.mkstemp(
                dir=self._version_dir(), prefix=".model.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="ascii") as fh:
                    save_model(fh, stamped)
                os.replace(tmp, model_path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
            _atomic_write(
                self._meta_path(version),
                json.dumps(meta, sort_keys=True, indent=2) + "\n",
            )
            return version

    # ------------------------------------------------------------------
    def current(self) -> Optional[str]:
        """The live version id, or ``None`` before the first promotion."""
        path = os.path.join(self.root, _CURRENT)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as fh:
            version = fh.read().strip()
        return version or None

    def entry(self, version: Optional[str] = None) -> RegistryEntry:
        """The :class:`RegistryEntry` for *version* (default: live)."""
        version = version if version is not None else self.current()
        if version is None:
            raise AdaptiveError("registry has no live model (promote first)")
        model_path = self._model_path(version)
        if not os.path.exists(model_path):
            raise AdaptiveError(
                f"no model version {version!r} in {self.root}"
            )
        metadata: Dict[str, object] = {}
        if os.path.exists(self._meta_path(version)):
            with open(self._meta_path(version), "r", encoding="utf-8") as fh:
                metadata = json.load(fh)
        return RegistryEntry(
            version=version, model_path=model_path, metadata=metadata
        )

    def load(self, version: Optional[str] = None) -> OracleModel:
        """Load a published model (default: the live one)."""
        return load_model(self.entry(version).model_path)

    # ------------------------------------------------------------------
    def _append_history(self, event: str, version: str) -> None:
        with open(
            os.path.join(self.root, _HISTORY), "a", encoding="utf-8"
        ) as fh:
            fh.write(f"{time.time():.6f} {event} {version}\n")

    def history(self) -> List[Dict[str, object]]:
        """Pointer moves, oldest first: ``{at, event, version}`` dicts."""
        path = os.path.join(self.root, _HISTORY)
        if not os.path.exists(path):
            return []
        events = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                parts = line.split()
                if len(parts) == 3:
                    events.append(
                        {
                            "at": float(parts[0]),
                            "event": parts[1],
                            "version": parts[2],
                        }
                    )
        return events

    def promote(self, version: str) -> RegistryEntry:
        """Atomically point ``CURRENT`` at *version*; returns its entry."""
        with self._lock:
            entry = self.entry(version)
            _atomic_write(os.path.join(self.root, _CURRENT), version + "\n")
            self._append_history("promote", version)
            return entry

    def _promote_stack(self) -> List[str]:
        """Replay the history into the stack of still-live promotions.

        Each ``promote`` pushes its version; each ``rollback`` pops the
        abandoned one, so the stack top is always the current version
        and repeated rollbacks keep walking further back instead of
        ping-ponging between the last two versions.
        """
        stack: List[str] = []
        for event in self.history():
            if event["event"] == "promote":
                stack.append(str(event["version"]))
            elif event["event"] == "rollback" and stack:
                stack.pop()
        return stack

    def rollback(self) -> RegistryEntry:
        """Move the live pointer back to the previously live version.

        Raises :class:`~repro.errors.AdaptiveError` when there is no
        earlier promotion to return to.
        """
        with self._lock:
            stack = self._promote_stack()
            if len(stack) < 2:
                raise AdaptiveError(
                    "no earlier promoted version to roll back to"
                )
            previous = stack[-2]
            entry = self.entry(previous)
            _atomic_write(os.path.join(self.root, _CURRENT), previous + "\n")
            self._append_history("rollback", previous)
            return entry

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Registry summary for metrics endpoints."""
        history = self.history()
        return {
            "root": self.root,
            "versions": len(self.versions()),
            "current": self.current(),
            "promotions": sum(1 for e in history if e["event"] == "promote"),
            "rollbacks": sum(1 for e in history if e["event"] == "rollback"),
        }
