"""Adaptive tuning loop: telemetry → drift → retrain → promote.

The offline pipeline trains format-selection models once; this package
closes the loop for live traffic whose matrix population drifts away
from the training corpus, bottom-up:

* :mod:`~repro.adaptive.telemetry` — :class:`TelemetryLog`, the bounded
  thread-safe (disk-spillable) buffer of per-request
  :class:`Observation` records fed by the
  :class:`~repro.service.service.TuningService` observer hook, including
  periodic shadow timings of rival formats.
* :mod:`~repro.adaptive.drift` — :class:`BaselineFingerprint` (the
  training population condensed to feature moments + residual error,
  stamped with the suite fingerprint) and :class:`DriftMonitor`, the
  sliding-window detector that emits retrain triggers on feature shift
  or mispredict degradation.
* :mod:`~repro.adaptive.retrain` — :class:`Retrainer`, rebuilding the
  model from telemetry-labelled samples (optionally augmenting the
  offline dataset) through the same
  :func:`~repro.experiments.stages.train_model` stage the offline
  pipeline uses.
* :mod:`~repro.adaptive.registry` — :class:`ModelRegistry`, versioned
  on-disk model storage with an atomically replaced ``CURRENT`` pointer
  (promote / rollback are each one ``os.replace``).
* :mod:`~repro.adaptive.controller` — :class:`AdaptiveController`,
  wiring all of the above onto a live service: observe, check, retrain
  (inline or background), publish, hot-swap.
* :mod:`~repro.adaptive.workload` — drifting traffic scenarios and the
  offline :func:`mispredict_rate` ground-truth metric behind
  ``repro adapt`` and ``benchmarks/bench_adaptive.py``.

See ``docs/adaptive.md`` for the loop's semantics and guarantees.
"""

from repro.adaptive.controller import AdaptiveController
from repro.adaptive.drift import BaselineFingerprint, DriftMonitor, DriftReport
from repro.adaptive.registry import ModelRegistry, RegistryEntry
from repro.adaptive.retrain import Retrainer, RetrainResult
from repro.adaptive.telemetry import Observation, TelemetryLog
from repro.adaptive.workload import (
    BANDED_FAMILIES,
    SCALE_FREE_FAMILIES,
    Bootstrap,
    DriftScenario,
    bootstrap,
    drifting_trace,
    mispredict_rate,
)

__all__ = [
    "AdaptiveController",
    "BANDED_FAMILIES",
    "BaselineFingerprint",
    "Bootstrap",
    "DriftMonitor",
    "DriftReport",
    "DriftScenario",
    "ModelRegistry",
    "Observation",
    "RegistryEntry",
    "Retrainer",
    "RetrainResult",
    "SCALE_FREE_FAMILIES",
    "TelemetryLog",
    "bootstrap",
    "drifting_trace",
    "mispredict_rate",
]
