"""Drift detection: compare live traffic against a fingerprinted baseline.

Adaptive layer 2.  A model trained offline is only as good as the match
between its training corpus and the live matrix population.
:class:`BaselineFingerprint` condenses the training population into a
comparison-ready summary (per-feature mean/std, label distribution, the
model's residual mispredict rate on held-out data) stamped with the
training suite's fingerprint; :class:`DriftMonitor` slides a window over
the live :class:`~repro.adaptive.telemetry.Observation` stream and
raises a retrain trigger when either signal degrades:

* **feature drift** — the live feature means move away from the baseline
  by more than ``shift_threshold`` baseline standard deviations
  (largest per-feature effect size wins);
* **mispredict drift** — the shadow-probed mispredict rate exceeds the
  baseline rate by more than ``mispredict_threshold``;
* **matrix evolution** — mutation requests (epoch advances) report their
  measured stat drift through :meth:`DriftMonitor.observe_update`; when
  the summed evolution velocity over the live window exceeds
  ``evolution_threshold`` the population is being *rewritten in place*
  and the model deserves a fresh look even before mispredicts surface.

Without an offline baseline the monitor self-baselines: the first
``min_observations`` live records become the reference population, so
``repro serve --adaptive`` works on any traffic source.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional

import numpy as np

from repro.adaptive.telemetry import Observation
from repro.errors import ValidationError
from repro.formats.base import FORMAT_NAMES

__all__ = ["BaselineFingerprint", "DriftMonitor", "DriftReport"]

_EPS = 1e-12


@dataclass(frozen=True)
class BaselineFingerprint:
    """Condensed summary of a training population.

    ``source`` carries the provenance (typically the training suite's
    :attr:`~repro.experiments.spec.ExperimentSpec.fingerprint`), so a
    drift report can always say *which* population the live traffic
    drifted away from.
    """

    feature_mean: np.ndarray
    feature_std: np.ndarray
    n_samples: int
    label_distribution: Dict[str, float] = field(default_factory=dict)
    mispredict_rate: float = 0.0
    source: str = ""

    @classmethod
    def from_features(
        cls,
        X: np.ndarray,
        y: Optional[np.ndarray] = None,
        *,
        mispredict_rate: float = 0.0,
        source: str = "",
    ) -> "BaselineFingerprint":
        """Fingerprint a feature matrix (rows = matrices, Table-I columns)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] < 1:
            raise ValidationError(
                "baseline features must be a non-empty 2-D array, got "
                f"shape {X.shape}"
            )
        labels: Dict[str, float] = {}
        if y is not None:
            y = np.asarray(y)
            values, counts = np.unique(y, return_counts=True)
            labels = {
                FORMAT_NAMES.get(int(v), str(int(v))): c / y.shape[0]
                for v, c in zip(values, counts)
            }
        return cls(
            feature_mean=X.mean(axis=0),
            feature_std=X.std(axis=0),
            n_samples=X.shape[0],
            label_distribution=labels,
            mispredict_rate=float(mispredict_rate),
            source=source,
        )

    @classmethod
    def from_dataset(
        cls,
        dataset: Mapping[str, np.ndarray],
        *,
        mispredict_rate: float = 0.0,
        source: str = "",
    ) -> "BaselineFingerprint":
        """Fingerprint a stage dataset (train + test rows pooled)."""
        X = np.concatenate(
            [np.asarray(dataset["X_train"]), np.asarray(dataset["X_test"])]
        )
        y = np.concatenate(
            [np.asarray(dataset["y_train"]), np.asarray(dataset["y_test"])]
        )
        return cls.from_features(
            X, y, mispredict_rate=mispredict_rate, source=source
        )

    # ------------------------------------------------------------------
    def shift_of(self, live_mean: np.ndarray) -> np.ndarray:
        """Per-feature effect size of *live_mean* against this baseline."""
        return np.abs(np.asarray(live_mean) - self.feature_mean) / (
            self.feature_std + _EPS
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "feature_mean": [float(v) for v in self.feature_mean],
            "feature_std": [float(v) for v in self.feature_std],
            "n_samples": self.n_samples,
            "label_distribution": dict(self.label_distribution),
            "mispredict_rate": self.mispredict_rate,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "BaselineFingerprint":
        return cls(
            feature_mean=np.asarray(payload["feature_mean"], dtype=np.float64),
            feature_std=np.asarray(payload["feature_std"], dtype=np.float64),
            n_samples=int(payload["n_samples"]),
            label_distribution=dict(payload.get("label_distribution", {})),
            mispredict_rate=float(payload.get("mispredict_rate", 0.0)),
            source=str(payload.get("source", "")),
        )


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift check."""

    drifted: bool
    reasons: tuple
    feature_shift: float
    mispredict_rate: Optional[float]
    window_size: int
    shadowed: int
    baseline_source: str = ""
    #: Summed matrix-evolution drift over the live update window.
    evolution: float = 0.0

    def describe(self) -> str:
        """One-line human summary (CLI output)."""
        rate = (
            "n/a" if self.mispredict_rate is None
            else f"{100 * self.mispredict_rate:.1f}%"
        )
        status = "drift detected" if self.drifted else "no drift"
        detail = "; ".join(self.reasons) if self.reasons else "all clear"
        return (
            f"{status} over {self.window_size} observations "
            f"(feature shift {self.feature_shift:.2f}, "
            f"mispredict {rate}): {detail}"
        )


class DriftMonitor:
    """Sliding-window drift detector over the live observation stream.

    Parameters
    ----------
    baseline:
        The training population's :class:`BaselineFingerprint`.  ``None``
        self-baselines from the first ``min_observations`` live records.
    window:
        Observations kept for the live-side statistics.
    min_observations:
        Observations required before a check can trigger (and the
        self-baseline freeze point when *baseline* is ``None``).
    shift_threshold:
        Feature-drift trigger: maximum per-feature effect size (live
        mean vs baseline mean, in baseline standard deviations).
    mispredict_threshold:
        Mispredict-drift trigger: the shadow-probed mispredict rate must
        exceed ``baseline.mispredict_rate + mispredict_threshold``.
    min_shadowed:
        Shadow-probed observations required before the mispredict signal
        is trusted.
    evolution_threshold:
        Matrix-evolution trigger: the per-update stat drifts reported by
        :meth:`observe_update` are summed over the live window; crossing
        this total means the matrices themselves are being rewritten
        fast enough to invalidate the training population.

    All methods are thread-safe; service worker threads feed
    :meth:`observe` / :meth:`observe_update` concurrently while the
    controller calls :meth:`check`.
    """

    def __init__(
        self,
        baseline: Optional[BaselineFingerprint] = None,
        *,
        window: int = 256,
        min_observations: int = 48,
        shift_threshold: float = 2.0,
        mispredict_threshold: float = 0.25,
        min_shadowed: int = 8,
        evolution_threshold: float = 4.0,
    ) -> None:
        if window < 2:
            raise ValidationError(f"window must be >= 2, got {window}")
        if min_observations < 2:
            raise ValidationError(
                f"min_observations must be >= 2, got {min_observations}"
            )
        if window < min_observations:
            # the feature deque holds at most `window` entries, so this
            # configuration could never reach min_observations: feature
            # drift and self-baselining would be silently dead
            raise ValidationError(
                f"window ({window}) must be >= min_observations "
                f"({min_observations})"
            )
        if (
            shift_threshold <= 0
            or mispredict_threshold <= 0
            or evolution_threshold <= 0
        ):
            raise ValidationError("drift thresholds must be > 0")
        self.baseline = baseline
        self.window = int(window)
        self.min_observations = int(min_observations)
        self.shift_threshold = float(shift_threshold)
        self.mispredict_threshold = float(mispredict_threshold)
        self.min_shadowed = int(min_shadowed)
        self.evolution_threshold = float(evolution_threshold)
        self._lock = threading.Lock()
        self._features: Deque[np.ndarray] = deque(maxlen=self.window)
        self._mispredicts: Deque[bool] = deque(maxlen=self.window)
        self._evolution: Deque[float] = deque(maxlen=self.window)
        self.observed = 0
        self.updates_observed = 0
        self.checks = 0
        self.triggers = 0
        self.self_baselined = baseline is None

    # ------------------------------------------------------------------
    def observe(self, observation: Observation) -> None:
        """Fold one observation into the live window.

        Observations without features still count the mispredict signal
        (when shadow-probed); the feature window only grows on records
        that carry a feature vector.
        """
        with self._lock:
            self.observed += 1
            if observation.features is not None:
                self._features.append(
                    np.asarray(observation.features, dtype=np.float64)
                )
            flag = observation.mispredicted
            if flag is not None:
                self._mispredicts.append(bool(flag))
            if (
                self.baseline is None
                and len(self._features) >= self.min_observations
            ):
                # self-baseline: the warm-up window becomes the reference
                X = np.stack(list(self._features))
                self.baseline = BaselineFingerprint.from_features(
                    X, source="self-baseline"
                )
                self._features.clear()
                self._mispredicts.clear()

    def observe_update(self, stat_drift: float) -> None:
        """Record one mutation request's measured stat drift.

        The tuning service reports every epoch advance here (via the
        controller); the summed drift over the live window is the
        *matrix-evolution velocity* — how fast the population is being
        rewritten in place, as opposed to replaced (which feature shift
        catches).
        """
        with self._lock:
            self.updates_observed += 1
            self._evolution.append(max(0.0, float(stat_drift)))

    def reset(self) -> None:
        """Clear the live window (called after a promotion)."""
        with self._lock:
            self._features.clear()
            self._mispredicts.clear()
            self._evolution.clear()

    def rebaseline(self, baseline: BaselineFingerprint) -> None:
        """Swap the reference population and clear the live window.

        Called after a retrain promotion: the new model was trained on
        the telemetry-augmented population, so *that* becomes the
        reference — otherwise the old baseline would re-trigger feature
        drift forever even while the new model predicts perfectly.
        """
        with self._lock:
            self.baseline = baseline
            self._features.clear()
            self._mispredicts.clear()
            self._evolution.clear()

    # ------------------------------------------------------------------
    def check(self) -> DriftReport:
        """Compare the live window against the baseline; count triggers."""
        with self._lock:
            self.checks += 1
            features = list(self._features)
            flags = list(self._mispredicts)
            evolution = float(sum(self._evolution))
            baseline = self.baseline
        reasons: List[str] = []
        shift = 0.0
        rate: Optional[float] = None
        if len(flags) >= self.min_shadowed:
            rate = sum(flags) / len(flags)
        # matrix evolution needs no reference population: it measures
        # in-place rewriting of the live matrices themselves
        if evolution > self.evolution_threshold:
            reasons.append(
                f"matrix evolution velocity {evolution:.2f} > "
                f"{self.evolution_threshold:.2f}"
            )
        if baseline is not None:
            if len(features) >= self.min_observations:
                live_mean = np.stack(features).mean(axis=0)
                shift = float(baseline.shift_of(live_mean).max())
                if shift > self.shift_threshold:
                    reasons.append(
                        f"feature shift {shift:.2f} > "
                        f"{self.shift_threshold:.2f}"
                    )
            # the mispredict signal has its own gate (min_shadowed), not
            # the feature window's: featureless shadow-probed records
            # (e.g. rebuilt from a spill) must still be able to trigger
            if rate is not None:
                allowed = baseline.mispredict_rate + self.mispredict_threshold
                if rate > allowed:
                    reasons.append(
                        f"mispredict rate {100 * rate:.1f}% > "
                        f"{100 * allowed:.1f}% allowed"
                    )
        report = DriftReport(
            drifted=bool(reasons),
            reasons=tuple(reasons),
            feature_shift=shift,
            mispredict_rate=rate,
            window_size=len(features),
            shadowed=len(flags),
            baseline_source=baseline.source if baseline is not None else "",
            evolution=evolution,
        )
        if report.drifted:
            with self._lock:
                self.triggers += 1
        return report

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Monitor counters + configuration in one dict."""
        with self._lock:
            return {
                "window": self.window,
                "min_observations": self.min_observations,
                "shift_threshold": self.shift_threshold,
                "mispredict_threshold": self.mispredict_threshold,
                "evolution_threshold": self.evolution_threshold,
                "observed": self.observed,
                "updates_observed": self.updates_observed,
                "live_evolution": float(sum(self._evolution)),
                "checks": self.checks,
                "triggers": self.triggers,
                "live_window": len(self._features),
                "baseline_source": (
                    self.baseline.source if self.baseline is not None else ""
                ),
                "baseline_mispredict_rate": (
                    self.baseline.mispredict_rate
                    if self.baseline is not None
                    else None
                ),
            }
