"""Drifting workloads: traffic whose matrix population shifts mid-trace.

The adaptive loop's acceptance case is a *population shift*: live
traffic starts out looking like the training corpus and then moves to a
structurally different family mix (the classic example: a banded /
multi-diagonal population giving way to scale-free graph matrices).
This module builds that scenario end to end:

* :func:`bootstrap` — train the initial model on a family-biased corpus
  through the offline stages, returning everything the adaptive loop
  needs (the model, the stage dataset for augmentation, the
  :class:`~repro.adaptive.drift.BaselineFingerprint`);
* :func:`drifting_trace` — a replayable
  :class:`~repro.service.replay.Trace` whose request stream switches
  from a *before* corpus to an *after* corpus at ``shift_fraction``;
* :func:`mispredict_rate` — offline ground truth: how often a model's
  prediction loses to the measured-optimal format over a matrix set
  (the metric the drift benchmark compares frozen vs adapted models
  on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.adaptive.drift import BaselineFingerprint
from repro.backends import make_space
from repro.core.model_io import OracleModel
from repro.datasets.collection import MatrixCollection
from repro.errors import ValidationError
from repro.formats.base import FORMAT_IDS
from repro.formats.dynamic import DynamicMatrix
from repro.machine.stats import MatrixStats
from repro.service.replay import Trace, _hot_cold_sequence

__all__ = [
    "BANDED_FAMILIES",
    "SCALE_FREE_FAMILIES",
    "Bootstrap",
    "DriftScenario",
    "bootstrap",
    "drifting_trace",
    "mispredict_rate",
]

#: Structured population: diagonal-dominated matrices (DIA/ELL country).
BANDED_FAMILIES: Dict[str, float] = {
    "banded": 0.4,
    "multi_diagonal": 0.3,
    "diagonal_dominant": 0.2,
    "noisy_banded": 0.1,
}

#: Scale-free population: skewed row-length graphs (CSR/HYB country).
SCALE_FREE_FAMILIES: Dict[str, float] = {
    "powerlaw": 0.5,
    "rmat": 0.3,
    "hypersparse": 0.2,
}


@dataclass
class Bootstrap:
    """Everything the offline stage hands the adaptive loop."""

    model: OracleModel
    dataset: Dict[str, np.ndarray]
    baseline: BaselineFingerprint
    collection: MatrixCollection
    test_scores: Dict[str, float]

    @property
    def baseline_mispredict_rate(self) -> float:
        return self.baseline.mispredict_rate


def bootstrap(
    system: str,
    backend: str,
    *,
    families: Optional[Mapping[str, float]] = None,
    n_matrices: int = 24,
    seed: int = 42,
    algorithm: str = "random_forest",
    grid: Optional[Mapping[str, Sequence[object]]] = None,
    cv: int = 3,
    source: str = "",
) -> Bootstrap:
    """Train the initial model on a family-biased corpus, offline-style.

    Runs the profile and train stages of the experiment pipeline over a
    :class:`MatrixCollection` restricted to *families* (default: the
    banded mix) and condenses the result into a :class:`Bootstrap`: the
    deployable model, the stage dataset (for retrain augmentation) and
    the corpus :class:`BaselineFingerprint` whose ``mispredict_rate`` is
    the model's held-out test error.
    """
    from repro.core.pipeline import build_dataset
    from repro.experiments.stages import run_profile_stage, train_model

    if grid is None:
        grid = {"n_estimators": [10], "max_depth": [10]}
    space = make_space(system, backend)
    collection = MatrixCollection(
        n_matrices=n_matrices,
        seed=seed,
        families=dict(families) if families is not None else BANDED_FAMILIES,
    )
    profiling = run_profile_stage(collection, [space])
    train_specs, test_specs = collection.train_test_split()
    X_train, y_train = build_dataset(
        collection, train_specs, profiling, space.name
    )
    X_test, y_test = build_dataset(collection, test_specs, profiling, space.name)
    tm = train_model(
        X_train,
        y_train,
        X_test,
        y_test,
        algorithm=algorithm,
        grid=dict(grid),
        cv=cv,
        seed=seed,
        system=system,
        backend=backend,
    )
    dataset = {
        "X_train": X_train,
        "y_train": y_train,
        "X_test": X_test,
        "y_test": y_test,
    }
    baseline = BaselineFingerprint.from_dataset(
        dataset,
        mispredict_rate=1.0 - float(tm.test_scores["tuned_accuracy"]),
        source=source or f"bootstrap:{space.name}:seed={seed}",
    )
    return Bootstrap(
        model=tm.oracle_model,
        dataset=dataset,
        baseline=baseline,
        collection=collection,
        test_scores=dict(tm.test_scores),
    )


@dataclass
class DriftScenario:
    """A drifting trace plus the bookkeeping the benchmark needs."""

    trace: Trace
    shift_index: int
    before_names: List[str] = field(default_factory=list)
    after_names: List[str] = field(default_factory=list)

    @property
    def after_matrices(self) -> Dict[str, DynamicMatrix]:
        """The drifted population (name -> matrix), for offline scoring."""
        return {
            name: self.trace.matrices[name] for name in self.after_names
        }

    def phase_trace(self, phase: str) -> Trace:
        """The ``"before"`` or ``"after"`` slice as its own replayable trace.

        Adaptive drivers serve the pre-drift phase once and then replay
        the drifted phase in *waves* — sustained drifted traffic is what
        lets the loop converge (probe the whole population, retrain,
        confirm the fix) rather than adapting from one early snapshot.
        """
        if phase not in ("before", "after"):
            raise ValidationError(
                f"phase must be 'before' or 'after', got {phase!r}"
            )
        names = set(
            self.before_names if phase == "before" else self.after_names
        )
        trace = Trace(
            matrices={n: self.trace.matrices[n] for n in names},
            sequence=[n for n in self.trace.sequence if n in names],
            seed=self.trace.seed + (0 if phase == "before" else 1),
        )
        trace.source = f"drifting:{phase}"
        return trace


def drifting_trace(
    n_matrices: int = 6,
    requests: int = 128,
    *,
    seed: int = 42,
    families_before: Optional[Mapping[str, float]] = None,
    families_after: Optional[Mapping[str, float]] = None,
    shift_fraction: float = 0.5,
) -> DriftScenario:
    """A request trace whose matrix population shifts mid-stream.

    The first ``shift_fraction`` of requests draw (hot/cold) from a
    corpus of *families_before* matrices, the rest from a disjoint
    corpus of *families_after* matrices — ``n_matrices`` of each.  Names
    are prefixed ``pre:`` / ``post:``, so the two populations can never
    collide in the engine cache.
    """
    if requests < 2:
        raise ValidationError(f"requests must be >= 2, got {requests}")
    if not 0.0 < shift_fraction < 1.0:
        raise ValidationError("shift_fraction must be in (0, 1)")
    before = MatrixCollection(
        n_matrices=n_matrices,
        seed=seed,
        families=dict(families_before or BANDED_FAMILIES),
    )
    after = MatrixCollection(
        n_matrices=n_matrices,
        seed=seed + 1,
        families=dict(families_after or SCALE_FREE_FAMILIES),
    )
    matrices: Dict[str, DynamicMatrix] = {}
    for prefix, collection in (("pre", before), ("post", after)):
        for spec in collection.specs:
            matrices[f"{prefix}:{spec.name}"] = DynamicMatrix(
                collection.generate(spec)
            )
    before_names = [n for n in matrices if n.startswith("pre:")]
    after_names = [n for n in matrices if n.startswith("post:")]
    shift_index = int(round(shift_fraction * requests))
    shift_index = min(max(shift_index, 1), requests - 1)
    rng = np.random.default_rng(seed)
    sequence = _hot_cold_sequence(before_names, shift_index, rng)
    sequence += _hot_cold_sequence(after_names, requests - shift_index, rng)
    trace = Trace(matrices=matrices, sequence=sequence, seed=seed)
    trace.source = "drifting"
    return DriftScenario(
        trace=trace,
        shift_index=shift_index,
        before_names=before_names,
        after_names=after_names,
    )


def mispredict_rate(
    model: OracleModel,
    matrices: Mapping[str, DynamicMatrix],
    space,
) -> float:
    """Fraction of *matrices* where *model* loses to the measured optimum.

    Ground truth comes from the space's deterministic per-format cost
    model (``time_all_formats``), keyed by matrix name — exactly what
    the service's shadow probes measure — so the frozen-vs-adapted
    comparison in the drift benchmark is apples to apples.
    """
    from repro.core.features import extract_features_from_stats

    if not matrices:
        raise ValidationError("mispredict_rate needs at least one matrix")
    wrong = 0
    for name, matrix in matrices.items():
        concrete = (
            matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        )
        stats = MatrixStats.from_matrix(concrete)
        times = space.time_all_formats(stats, matrix_key=name)
        best = min(times, key=times.get)
        predicted = model.predict_one(extract_features_from_stats(stats))
        if predicted != FORMAT_IDS[best]:
            wrong += 1
    return wrong / len(matrices)
