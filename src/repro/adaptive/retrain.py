"""Telemetry-driven retraining through the offline experiment stages.

Adaptive layer 3.  Shadow-probed telemetry records are miniature
profiling runs: each carries the matrix's Table-I features *and* the
measured per-format timings, so labelling is just ``argmin``.
:class:`Retrainer` turns a batch of such records into a dataset, folds
it into the (optional) offline baseline dataset via
:func:`repro.experiments.stages.augment_dataset`, and hands the result
to the *same* :func:`repro.experiments.stages.train_model` the offline
pipeline uses — the adaptive loop retrains with the full grid-search /
CV / held-out-scoring machinery, not a shortcut.

Retraining is synchronous here; the
:class:`~repro.adaptive.controller.AdaptiveController` decides whether
to run it inline or on its background worker thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.adaptive.drift import BaselineFingerprint
from repro.adaptive.telemetry import Observation
from repro.core.model_io import OracleModel
from repro.errors import AdaptiveError
from repro.experiments.stages import augment_dataset, train_model
from repro.formats.base import FORMAT_IDS

__all__ = ["Retrainer", "RetrainResult"]

#: Deliberately small default grid: online retraining happens between
#: serving batches, so it trades a little accuracy headroom for speed.
#: Callers with slack pass a larger grid (or ``None`` for the offline
#: default grid).
FAST_RF_GRID: Dict[str, Sequence[object]] = {
    "n_estimators": [10],
    "max_depth": [10],
}


@dataclass(frozen=True)
class RetrainResult:
    """One completed retrain: the deployable model + its provenance.

    ``baseline`` fingerprints the population the model was trained on
    (offline corpus + telemetry) with the model's held-out error — the
    drift monitor adopts it after the promotion, so future drift is
    measured against what the *new* model knows.
    """

    model: OracleModel
    algorithm: str
    n_samples: int
    n_telemetry: int
    test_scores: Dict[str, float]
    cv_best_score: float
    baseline: BaselineFingerprint

    @property
    def test_accuracy(self) -> float:
        return float(self.test_scores.get("tuned_accuracy", 0.0))


class Retrainer:
    """Rebuild the format-selection model from telemetry records.

    Parameters
    ----------
    system / backend:
        Stamped into the retrained model (provenance + tuner binding).
    algorithm:
        ``"random_forest"`` or ``"decision_tree"``.
    grid:
        Hyperparameter grid for the retrain's grid search; defaults to
        the deliberately small :data:`FAST_RF_GRID`.
    cv / seed / test_fraction:
        Training axes, as in the offline train stage.
    min_samples:
        Minimum telemetry records (post-dedup) required to attempt a
        retrain.
    recency_weight:
        How many times each *train-side* telemetry sample is replicated
        when augmenting a baseline dataset (replication happens after
        the train/test split, so held-out scores stay honest).
        Telemetry describes the *live* population but is usually
        outnumbered by the offline corpus; replication shifts the class
        balance toward what traffic looks like now without discarding
        the old knowledge.
    """

    def __init__(
        self,
        *,
        system: str = "",
        backend: str = "",
        algorithm: str = "random_forest",
        grid: Optional[Mapping[str, Sequence[object]]] = None,
        cv: int = 3,
        seed: int = 0,
        test_fraction: float = 0.25,
        min_samples: int = 4,
        recency_weight: int = 3,
    ) -> None:
        if recency_weight < 1:
            raise AdaptiveError(
                f"recency_weight must be >= 1, got {recency_weight}"
            )
        self.system = system
        self.backend = backend
        self.algorithm = algorithm
        self.grid = dict(grid) if grid is not None else dict(FAST_RF_GRID)
        self.cv = int(cv)
        self.seed = int(seed)
        self.test_fraction = float(test_fraction)
        self.min_samples = int(min_samples)
        self.recency_weight = int(recency_weight)
        self.retrains = 0
        self.failures = 0

    # ------------------------------------------------------------------
    @staticmethod
    def dataset_from_records(
        records: Sequence[Observation],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(X, y)`` from shadow-probed records, deduplicated by matrix.

        The label of a record is the *measured*-fastest format from its
        shadow timings.  Repeated probes of one matrix collapse to the
        latest record, so hot matrices don't drown out the rest of the
        drifted population.
        """
        latest: Dict[str, Observation] = {}
        for obs in records:
            if obs.features is None or not obs.shadow_times:
                continue
            latest[obs.fingerprint] = obs
        if not latest:
            return np.empty((0, 0)), np.empty((0,), dtype=np.int64)
        ordered = sorted(latest.values(), key=lambda o: o.sequence)
        X = np.stack([np.asarray(o.features, dtype=np.float64) for o in ordered])
        y = np.asarray(
            [FORMAT_IDS[o.shadow_best] for o in ordered], dtype=np.int64
        )
        return X, y

    # ------------------------------------------------------------------
    def retrain(
        self,
        records: Sequence[Observation],
        *,
        baseline_dataset: Optional[Mapping[str, np.ndarray]] = None,
    ) -> RetrainResult:
        """Train a fresh model from *records* (+ the offline baseline).

        With a *baseline_dataset* (the suite's ``(X, y)`` splits) the
        telemetry samples augment it — the retrained model keeps what it
        knew about the old population while learning the new one.
        Raises :class:`~repro.errors.AdaptiveError` when the records
        cannot support a retrain (too few samples, or a single label
        class with no baseline to widen it).
        """
        X, y = self.dataset_from_records(records)
        n_telemetry = X.shape[0]
        if n_telemetry < self.min_samples:
            self.failures += 1
            raise AdaptiveError(
                f"retrain needs >= {self.min_samples} shadow-probed "
                f"records, got {n_telemetry}"
            )
        if baseline_dataset is not None:
            # replication is applied train-side only, after the split
            # (augment_dataset's train_replicas), so duplicated rows can
            # never leak into the held-out test score
            dataset = augment_dataset(
                dict(baseline_dataset),
                X,
                y,
                test_fraction=self.test_fraction,
                seed=self.seed,
                train_replicas=self.recency_weight,
            )
        else:
            order = np.random.default_rng(self.seed).permutation(n_telemetry)
            n_test = max(1, int(round(self.test_fraction * n_telemetry)))
            test_idx, train_idx = order[:n_test], order[n_test:]
            dataset = {
                "X_train": X[train_idx],
                "y_train": y[train_idx],
                "X_test": X[test_idx],
                "y_test": y[test_idx],
            }
        if np.unique(dataset["y_train"]).shape[0] < 2:
            self.failures += 1
            raise AdaptiveError(
                "telemetry labels collapse to a single format class; "
                "augment with a baseline dataset to retrain"
            )
        tm = train_model(
            dataset["X_train"],
            dataset["y_train"],
            dataset["X_test"],
            dataset["y_test"],
            algorithm=self.algorithm,
            grid=self.grid,
            cv=self.cv,
            seed=self.seed,
            system=self.system,
            backend=self.backend,
        )
        self.retrains += 1
        # the monitor's future allowance is the model's residual on its
        # own (full) training population — the held-out split is kept
        # for honest reporting but is far too small online to anchor a
        # drift threshold (a noisy-high test error would make the
        # monitor tolerate a model that keeps mispredicting live)
        from repro.ml.metrics import accuracy_score

        X_all = np.concatenate([dataset["X_train"], dataset["X_test"]])
        y_all = np.concatenate([dataset["y_train"], dataset["y_test"]])
        fit_rate = 1.0 - float(
            accuracy_score(y_all, tm.oracle_model.predict(X_all))
        )
        return RetrainResult(
            model=tm.oracle_model,
            algorithm=self.algorithm,
            n_samples=int(dataset["X_train"].shape[0])
            + int(dataset["X_test"].shape[0]),
            n_telemetry=n_telemetry,
            test_scores=dict(tm.test_scores),
            cv_best_score=float(tm.cv_best_score),
            baseline=BaselineFingerprint.from_dataset(
                dataset,
                mispredict_rate=fit_rate,
                source=f"retrain:{self.retrains}",
            ),
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "grid": {k: list(v) for k, v in self.grid.items()},
            "cv": self.cv,
            "min_samples": self.min_samples,
            "retrains": self.retrains,
            "failures": self.failures,
        }
