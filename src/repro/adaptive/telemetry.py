"""Per-request telemetry: the adaptive loop's sensory memory.

Adaptive layer 1.  The serving path already measures everything a
feedback tuner needs — matrix features, the chosen format, wall latency,
and (on shadow-probed batches) the rival per-format timings.
:class:`TelemetryLog` is where those observations live: a bounded,
thread-safe ring buffer fed by the
:class:`~repro.service.service.TuningService` observer hook, with an
optional disk spill so evicted observations are archived (JSON lines)
instead of lost.

An :class:`Observation` whose ``shadow_times`` are present knows its own
ground truth: :attr:`Observation.shadow_best` is the measured-fastest
format and :attr:`Observation.mispredicted` compares it against the
format the model actually chose — the signal the
:class:`~repro.adaptive.drift.DriftMonitor` and
:class:`~repro.adaptive.retrain.Retrainer` both feed on.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, Iterator, List, Mapping, Optional

import numpy as np

from repro.errors import ValidationError

__all__ = ["Observation", "TelemetryLog"]


@dataclass(frozen=True)
class Observation:
    """One served request, as recorded by the telemetry feed.

    ``features`` is the Table-I feature vector of the served matrix (the
    engine's cached copy); ``shadow_times`` carries the rival per-format
    timings on shadow-probed batches and is ``None`` otherwise.
    ``backend`` is the kernel backend (:mod:`repro.kernels`) that
    actually executed the request — per-backend latency attribution for
    the adaptive layer.  ``epoch`` is the matrix version the request was
    served against (0 = never mutated) — trace-grade provenance, so a
    replayed observation stream can be aligned against the update
    barriers of the trace that produced it.
    """

    fingerprint: str
    format: str
    seconds: float
    latency_seconds: float
    batch_size: int
    model_version: str = ""
    backend: str = "numpy"
    epoch: int = 0
    features: Optional[np.ndarray] = None
    shadow_times: Optional[Dict[str, float]] = None
    sequence: int = field(default=-1, compare=False)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Observation":
        """Build from a service observer dict (or a spilled JSON record)."""
        features = payload.get("features")
        if features is not None:
            features = np.asarray(features, dtype=np.float64)
        shadow = payload.get("shadow_times")
        return cls(
            fingerprint=str(payload["fingerprint"]),
            format=str(payload["format"]),
            seconds=float(payload.get("seconds", 0.0)),
            latency_seconds=float(payload.get("latency_seconds", 0.0)),
            batch_size=int(payload.get("batch_size", 1)),
            model_version=str(payload.get("model_version", "")),
            backend=str(payload.get("backend", "numpy")),
            epoch=int(payload.get("epoch", 0)),
            features=features,
            shadow_times=dict(shadow) if shadow is not None else None,
            sequence=int(payload.get("sequence", -1)),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (used by the disk spill)."""
        return {
            "fingerprint": self.fingerprint,
            "format": self.format,
            "seconds": self.seconds,
            "latency_seconds": self.latency_seconds,
            "batch_size": self.batch_size,
            "model_version": self.model_version,
            "backend": self.backend,
            "epoch": self.epoch,
            "features": (
                None if self.features is None else
                [float(v) for v in self.features]
            ),
            "shadow_times": self.shadow_times,
            "sequence": self.sequence,
        }

    # ------------------------------------------------------------------
    @property
    def shadow_best(self) -> Optional[str]:
        """Measured-fastest rival format (``None`` without shadow times)."""
        if not self.shadow_times:
            return None
        return min(self.shadow_times, key=self.shadow_times.get)

    @property
    def mispredicted(self) -> Optional[bool]:
        """Did the model's format lose to a shadow rival? (``None`` = unknown)."""
        best = self.shadow_best
        if best is None:
            return None
        return best != self.format


class TelemetryLog:
    """Bounded, thread-safe, disk-spillable buffer of observations.

    Parameters
    ----------
    capacity:
        Maximum observations held in memory; beyond it the oldest are
        evicted (spilled to disk when *spill_path* is set, dropped and
        counted otherwise).
    spill_path:
        Optional JSONL archive for evicted observations.  Appended
        atomically per line under the log's lock; read back with
        :meth:`iter_spilled`.

    Every mutation happens under one internal lock, so many service
    worker threads can record concurrently; counters (``recorded`` /
    ``spilled`` / ``dropped`` / ``shadowed`` / ``mispredicts``) are
    exposed through :meth:`stats`.
    """

    def __init__(
        self, capacity: int = 4096, *, spill_path: Optional[str] = None
    ) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.spill_path = str(spill_path) if spill_path is not None else None
        self._buffer: Deque[Observation] = deque()
        self._lock = threading.Lock()
        # disk appends happen under their own lock, never the buffer's:
        # a slow spill must not stall every serving worker's record()
        self._spill_lock = threading.Lock()
        self._sequence = 0
        self.recorded = 0
        self.spilled = 0
        self.dropped = 0
        self.shadowed = 0
        self.mispredicts = 0

    # ------------------------------------------------------------------
    def record(self, observation) -> Observation:
        """Append one observation (an :class:`Observation` or a dict).

        Returns the stored :class:`Observation` (sequence-stamped).
        When the buffer is full the oldest record is evicted: appended
        to *spill_path* when configured, dropped (and counted) when not.
        """
        if isinstance(observation, Observation):
            # copy before stamping: the caller's object must not change
            # (it may be re-recorded, or shared with another log)
            stamped = replace(observation)
        else:
            stamped = Observation.from_dict(observation)
        with self._lock:
            # stamp the (owned) copy in place: sequence is excluded from
            # equality and the record path runs on serving workers
            object.__setattr__(stamped, "sequence", self._sequence)
            self._sequence += 1
            self.recorded += 1
            if stamped.shadow_times is not None:
                self.shadowed += 1
                if stamped.mispredicted:
                    self.mispredicts += 1
            self._buffer.append(stamped)
            evicted: List[Observation] = []
            while len(self._buffer) > self.capacity:
                evicted.append(self._buffer.popleft())
            if evicted and self.spill_path is None:
                self.dropped += len(evicted)
        if evicted and self.spill_path is not None:
            # the buffer lock is released: concurrent evictors may
            # interleave whole batches, so the archive is only
            # near-sorted — readers needing strict order sort by the
            # sequence stamp (dataset_from_records already does)
            with self._spill_lock:
                with open(self.spill_path, "a", encoding="utf-8") as fh:
                    for obs in evicted:
                        fh.write(json.dumps(obs.to_dict()) + "\n")
            with self._lock:
                self.spilled += len(evicted)
        return stamped

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def snapshot(self) -> List[Observation]:
        """Copy of the in-memory buffer, oldest first."""
        with self._lock:
            return list(self._buffer)

    def window(self, n: int) -> List[Observation]:
        """The most recent *n* in-memory observations, oldest first."""
        if n < 0:
            raise ValidationError(f"window size must be >= 0, got {n}")
        with self._lock:
            if n >= len(self._buffer):
                return list(self._buffer)
            return list(self._buffer)[-n:]

    def shadowed_records(self, n: Optional[int] = None) -> List[Observation]:
        """In-memory observations carrying shadow timings (latest *n*).

        These are the trainable records: each knows its features and its
        measured-optimal format, so the retrainer consumes exactly this
        list.
        """
        records = [o for o in self.snapshot() if o.shadow_times is not None]
        if n is not None:
            records = records[-n:]
        return records

    def clear(self) -> int:
        """Drop the in-memory buffer (spill archive untouched)."""
        with self._lock:
            n = len(self._buffer)
            self._buffer.clear()
            return n

    # ------------------------------------------------------------------
    def iter_spilled(self) -> Iterator[Observation]:
        """Read back the spill archive, oldest first."""
        if self.spill_path is None or not os.path.exists(self.spill_path):
            return iter(())
        with open(self.spill_path, "r", encoding="utf-8") as fh:
            payloads = [json.loads(line) for line in fh if line.strip()]
        return (Observation.from_dict(p) for p in payloads)

    def stats(self) -> Dict[str, object]:
        """Counters + occupancy in one dict (the telemetry endpoint)."""
        with self._lock:
            shadowed = self.shadowed
            return {
                "capacity": self.capacity,
                "size": len(self._buffer),
                "recorded": self.recorded,
                "spilled": self.spilled,
                "dropped": self.dropped,
                "shadowed": shadowed,
                "mispredicts": self.mispredicts,
                "mispredict_rate": (
                    self.mispredicts / shadowed if shadowed else 0.0
                ),
                "spill_path": self.spill_path,
            }
