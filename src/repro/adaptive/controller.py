"""The adaptive controller: close the telemetry → retrain → promote loop.

Adaptive layer 5.  :class:`AdaptiveController` wires the pieces onto a
live :class:`~repro.service.service.TuningService`:

* :meth:`attach` installs the service observer, so every served batch
  feeds the :class:`~repro.adaptive.telemetry.TelemetryLog` and the
  :class:`~repro.adaptive.drift.DriftMonitor`;
* every ``check_every`` observations the monitor is consulted; a drift
  trigger hands the recent shadow-probed records to the
  :class:`~repro.adaptive.retrain.Retrainer` (inline, or on the
  controller's single background worker thread);
* the retrained model is published to the
  :class:`~repro.adaptive.registry.ModelRegistry`, promoted, and
  hot-swapped into the service via
  :meth:`~repro.service.service.TuningService.promote_model` — engines
  re-decide formats under the new model while in-flight batches finish
  under the old one;
* :meth:`rollback` walks the registry back one promotion and swaps the
  earlier model in, the one-call undo for a bad retrain.

The controller never raises into the serving path: retrain failures are
counted (:meth:`stats`) and serving continues under the current model.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.adaptive.drift import DriftMonitor, DriftReport
from repro.adaptive.registry import ModelRegistry
from repro.adaptive.retrain import Retrainer, RetrainResult
from repro.adaptive.telemetry import Observation, TelemetryLog
from repro.core.model_io import OracleModel
from repro.errors import AdaptiveError, ReproError
from repro.obs import MetricsRegistry, mint_trace_id

__all__ = ["AdaptiveController"]


def _tuner_for(model: OracleModel):
    from repro.core.tuners.ml import DecisionTreeTuner, RandomForestTuner

    cls = (
        DecisionTreeTuner if model.kind == "decision_tree" else RandomForestTuner
    )
    return cls(model)


class AdaptiveController:
    """Drive one service's adaptive loop.

    Parameters
    ----------
    service:
        The live :class:`~repro.service.service.TuningService`.  Build
        it with ``shadow_every > 0`` so telemetry carries shadow
        timings — without them drift can only be detected from feature
        shift and retraining has nothing to label.
    registry:
        The :class:`~repro.adaptive.registry.ModelRegistry` retrained
        models are published to and promoted from.
    telemetry / monitor / retrainer:
        The loop's components; sensible defaults are built when omitted
        (the default monitor self-baselines from the first live window).
    baseline_dataset:
        Optional offline ``{X_train, y_train, X_test, y_test}`` arrays;
        telemetry samples augment it on every retrain so old knowledge
        is kept.
    check_every:
        Drift checks run every this-many observations.
    background:
        ``True`` retrains on the controller's worker thread (serving
        continues under the old model meanwhile); ``False`` retrains
        inline on the observer's worker thread (deterministic — the
        promotion lands before that fingerprint's next batch is
        served).
    source:
        Provenance stamp for published models (typically the training
        suite's fingerprint).
    """

    def __init__(
        self,
        service,
        registry: ModelRegistry,
        *,
        telemetry: Optional[TelemetryLog] = None,
        monitor: Optional[DriftMonitor] = None,
        retrainer: Optional[Retrainer] = None,
        baseline_dataset=None,
        check_every: int = 32,
        background: bool = False,
        auto_promote: bool = True,
        max_retrains: Optional[int] = None,
        source: str = "",
    ) -> None:
        if check_every < 1:
            raise AdaptiveError(
                f"check_every must be >= 1, got {check_every}"
            )
        self.service = service
        self.registry = registry
        self.telemetry = telemetry if telemetry is not None else TelemetryLog()
        self.monitor = monitor if monitor is not None else DriftMonitor()
        if retrainer is None:
            system, _, backend = service.space.name.partition("/")
            retrainer = Retrainer(system=system, backend=backend)
        self.retrainer = retrainer
        self.baseline_dataset = baseline_dataset
        self.check_every = int(check_every)
        self.background = bool(background)
        self.auto_promote = bool(auto_promote)
        self.max_retrains = max_retrains
        self.source = source
        self._lock = threading.Lock()
        self._since_check = 0
        self._retraining = False
        self._ingesting = 0
        self._worker: Optional[threading.Thread] = None
        self._attached = False
        # adaptive-loop instruments live in the *service's* registry
        # when the service has one, so a single exposition / spill
        # covers serving and adaptation side by side; retrain spans and
        # drift events ride the service's rings the same way
        self._service_obs = getattr(service, "obs", None)
        registry = (
            self._service_obs.registry
            if self._service_obs is not None
            else MetricsRegistry()
        )
        labels = {"tier": "adaptive"}
        self._drift_events = registry.counter(
            "drift_events", labels=labels,
            help="Drift checks that triggered a retrain",
        )
        self._retrains = registry.counter(
            "retrains", labels=labels,
            help="Retrains completed and published",
        )
        self._retrain_failures = registry.counter(
            "retrain_failures", labels=labels,
            help="Retrains that raised (old model stayed live)",
        )
        self._promotions = registry.counter(
            "model_promotions", labels=labels,
            help="Models hot-swapped into the service by the controller",
        )
        self._rollbacks = registry.counter(
            "rollbacks", labels=labels,
            help="Promotions undone via rollback()",
        )
        self.last_report: Optional[DriftReport] = None
        self.last_trigger: Optional[DriftReport] = None
        self.last_result: Optional[RetrainResult] = None

    # ------------------------------------------------------------------
    # read-compat counter views (the instruments are the truth)
    # ------------------------------------------------------------------
    @property
    def drift_events(self) -> int:
        return self._drift_events.value

    @property
    def promotions(self) -> int:
        return self._promotions.value

    @property
    def rollbacks(self) -> int:
        return self._rollbacks.value

    @property
    def retrain_failures(self) -> int:
        return self._retrain_failures.value

    def _event(self, kind: str, **fields) -> None:
        obs = self._service_obs
        if obs is not None:
            obs.event(kind, **fields)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> "AdaptiveController":
        """Install the service observer; returns ``self`` for chaining."""
        self.service.set_observer(self._ingest)
        self._attached = True
        return self

    def detach(self) -> None:
        """Remove the observer (telemetry already gathered is kept)."""
        if self._attached:
            self.service.set_observer(None)
            self._attached = False

    def close(self) -> None:
        """Detach and wait out every in-flight ingest and retrain.

        A service worker thread may be anywhere inside :meth:`_ingest`
        right now — even before ``_retraining`` is set — so this waits
        for the in-flight ingest count to drain *and* the retrain flag
        to clear (joining the background worker when one is registered),
        rather than trusting a single ``_worker`` read.
        """
        self.detach()
        while True:
            with self._lock:
                worker = self._worker
                busy = self._retraining or self._ingesting > 0
            if worker is not None and worker.is_alive():
                worker.join()
            elif busy:
                # work in flight on a thread we can't join (an observer
                # call mid-ingest, an inline retrain on a service
                # worker, or a background thread not yet registered)
                time.sleep(0.005)
            else:
                return

    def __enter__(self) -> "AdaptiveController":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observation path (runs on service worker threads)
    # ------------------------------------------------------------------
    def _ingest(self, observations: Sequence[Dict[str, object]]) -> None:
        with self._lock:
            self._ingesting += 1
        try:
            for payload in observations:
                if payload.get("kind") == "update":
                    # mutation requests carry no features or timings —
                    # they feed the matrix-evolution velocity signal
                    self.monitor.observe_update(
                        float(payload.get("stat_drift", 0.0))
                    )
                    continue
                obs = self.telemetry.record(payload)
                self.monitor.observe(obs)
            with self._lock:
                self._since_check += len(observations)
                due = self._since_check >= self.check_every
                if due:
                    self._since_check = 0
            if due:
                self.maybe_adapt()
        finally:
            with self._lock:
                self._ingesting -= 1

    # ------------------------------------------------------------------
    # the loop itself
    # ------------------------------------------------------------------
    def maybe_adapt(self) -> Optional[DriftReport]:
        """Run one drift check; kick a retrain when it triggers.

        Returns the report (``None`` when a retrain is already in
        flight — checking mid-retrain would re-trigger on the same
        window).
        """
        with self._lock:
            if self._retraining:
                return None
            report = self.monitor.check()
            self.last_report = report
            if not report.drifted:
                return report
            if (
                self.max_retrains is not None
                and self.retrainer.retrains + self.retrain_failures
                >= self.max_retrains
            ):
                return report
            self.last_trigger = report
            self._retraining = True
        self._drift_events.inc()
        self._event(
            "drift_detected",
            reasons=list(report.reasons),
            window_size=report.window_size,
        )
        records = self.telemetry.shadowed_records()
        if self.background:
            worker = threading.Thread(
                target=self._retrain_and_promote,
                args=(records, report),
                name="repro-adaptive-retrain",
                daemon=True,
            )
            with self._lock:
                self._worker = worker
            worker.start()
        else:
            self._retrain_and_promote(records, report)
        return report

    def _retrain_and_promote(
        self, records: List[Observation], report: DriftReport
    ) -> None:
        trace_id = mint_trace_id()
        retrain_start = time.perf_counter()
        try:
            result = self.retrainer.retrain(
                records, baseline_dataset=self.baseline_dataset
            )
            retrain_seconds = time.perf_counter() - retrain_start
            self.last_result = result
            publish_start = time.perf_counter()
            version = self.registry.publish(
                result.model,
                metadata={
                    "source": self.source or report.baseline_source,
                    "trigger": list(report.reasons),
                    "n_telemetry": result.n_telemetry,
                    "n_samples": result.n_samples,
                    "test_accuracy": result.test_accuracy,
                },
            )
            publish_seconds = time.perf_counter() - publish_start
            promote_start = time.perf_counter()
            if self.auto_promote:
                self.promote(version)
                # the reference population is now what the new model was
                # trained on; keeping the old baseline would re-trigger
                # feature drift forever on perfectly served traffic
                self.monitor.rebaseline(result.baseline)
            self._retrains.inc()
            obs = self._service_obs
            if obs is not None and obs.enabled:
                obs.spans.record(
                    trace_id,
                    kind="retrain",
                    tier="adaptive",
                    fingerprint=version,
                    batch_size=result.n_samples,
                    promoted=self.auto_promote,
                    stages={
                        "retrain": retrain_seconds,
                        "publish": publish_seconds,
                        "promote": time.perf_counter() - promote_start,
                    },
                )
        except ReproError as exc:
            # a failed retrain must never take serving down; the count
            # is surfaced through stats() and the old model stays live
            self._retrain_failures.inc()
            self._event(
                "retrain_failed",
                error=type(exc).__name__,
                message=str(exc)[:200],
                records=len(records),
            )
        finally:
            with self._lock:
                self._retraining = False

    def promote(self, version: str) -> Dict[str, object]:
        """Promote *version* in the registry and hot-swap it into service."""
        entry = self.registry.promote(version)
        model = self.registry.load(version)
        info = self.service.promote_model(
            _tuner_for(model),
            version=version,
            source=str(entry.metadata.get("source", self.source)),
            algorithm=model.kind,
        )
        self.monitor.reset()
        self._promotions.inc()
        return info

    def rollback(self) -> Dict[str, object]:
        """Undo the latest promotion: registry pointer + live service."""
        entry = self.registry.rollback()
        model = self.registry.load(entry.version)
        info = self.service.promote_model(
            _tuner_for(model),
            version=entry.version,
            source=str(entry.metadata.get("source", self.source)),
            algorithm=model.kind,
        )
        self.monitor.reset()
        self._rollbacks.inc()
        self._event("model_rollback", version=entry.version)
        return info

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """One dict over the whole loop: every component + controller."""
        with self._lock:
            snapshot = {
                "check_every": self.check_every,
                "background": self.background,
                "attached": self._attached,
                "drift_events": self.drift_events,
                "promotions": self.promotions,
                "rollbacks": self.rollbacks,
                "retrain_failures": self.retrain_failures,
                "retraining": self._retraining,
                "last_drift": (
                    self.last_report.describe()
                    if self.last_report is not None
                    else None
                ),
                "last_trigger": (
                    self.last_trigger.describe()
                    if self.last_trigger is not None
                    else None
                ),
            }
        snapshot["telemetry"] = self.telemetry.stats()
        snapshot["drift"] = self.monitor.stats()
        snapshot["retrainer"] = self.retrainer.stats()
        snapshot["registry"] = self.registry.stats()
        return snapshot
