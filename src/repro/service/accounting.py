"""Engine-accounting folding shared by the serving tiers.

Both the in-process :class:`~repro.service.service.TuningService` and the
multi-process :class:`~repro.distributed.gateway.DistributedService`
present one ``stats()["engines"]`` block that aggregates every
:meth:`~repro.runtime.engine.WorkloadEngine.stats` dict the tier has ever
owned — live engines, engines evicted from a cache, and (in distributed
mode) engines hosted by remote or since-dead worker processes.  The
folding arithmetic lives here so the two tiers can never drift apart on
the schema: the keys of :func:`empty_engine_totals` are the locked
contract (``tests/distributed/test_stats_schema.py`` pins it).
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "ENGINE_TOTAL_KEYS",
    "empty_engine_totals",
    "fold_engine_stats",
    "merge_engine_totals",
]

#: The locked key set of an aggregated ``stats()["engines"]`` block.
ENGINE_TOTAL_KEYS = (
    "requests_served",
    "seconds",
    "counters",
    "invalidations",
    "backends",
    "warmups",
    "streaming",
)


def empty_engine_totals() -> Dict[str, object]:
    """A zeroed aggregation block with the locked key schema."""
    return {
        "requests_served": 0,
        "seconds": {
            "tuning": 0.0,
            "conversion": 0.0,
            "spmv": 0.0,
            "warmup": 0.0,
        },
        "counters": {},
        "invalidations": {},
        "backends": {},
        "warmups": 0,
        "streaming": {"requests": 0, "blocks": 0, "seconds": 0.0},
    }


def fold_engine_stats(totals: Dict[str, object], stats: Dict[str, object]) -> None:
    """Fold one :meth:`WorkloadEngine.stats` dict into *totals* in place."""
    totals["requests_served"] += stats["requests_served"]
    seconds = totals["seconds"]
    for name, value in stats["seconds"].items():
        seconds[name] = seconds.get(name, 0.0) + value
    counters = totals["counters"]
    for name, value in stats["counters"].items():
        counters[name] = counters.get(name, 0) + value
    invalidations = totals["invalidations"]
    for name, value in stats["invalidations"].items():
        invalidations[name] = invalidations.get(name, 0) + value
    backends = totals["backends"]
    for kb, entry in stats["backends"].items():
        slot = backends.setdefault(kb, {"requests": 0, "seconds": 0.0})
        slot["requests"] += entry["requests"]
        slot["seconds"] += entry["seconds"]
    totals["warmups"] += stats["warmups"]
    streaming = totals["streaming"]
    for name, value in stats.get("streaming", {}).items():
        streaming[name] = streaming.get(name, 0) + value


def merge_engine_totals(
    totals: Dict[str, object], other: Dict[str, object]
) -> None:
    """Fold one aggregation block into another in place.

    *other* must carry the :data:`ENGINE_TOTAL_KEYS` schema — this is how
    the distributed gateway folds each worker's already-aggregated block
    (and the last snapshot of a dead worker) into the fleet total.
    """
    # an aggregated block is shaped exactly like one engine's stats dict
    # for every key the fold touches
    fold_engine_stats(totals, other)
