"""Workload drivers for the tuning service: synthetic and suite replay.

Service layer 3.  A service is only as good as the traffic you can throw
at it, so this module builds request *traces* and replays them from many
concurrent client threads:

* :func:`synthetic_trace` — a deterministic request stream over a
  :class:`~repro.datasets.collection.MatrixCollection` corpus (Zipf-ish
  reuse: a handful of hot matrices dominate, the way real workloads do);
* :func:`trace_from_suite` — replay the corpus of a **stored scenario
  suite**: the spec is loaded from an
  :class:`~repro.experiments.store.ArtifactStore`, its corpus rebuilt,
  and the trace drawn from those exact matrices, so the service serves
  the matrices the suite's exported models were trained on;
* :func:`service_for_suite` — a :class:`~repro.service.service.TuningService`
  whose tuner is a model the suite exported (loaded through
  :mod:`repro.core.model_io` via the suite's ``models/<fingerprint>/``
  model database);
* :func:`trace_from_recorded` — adapt a **recorded** trace directory
  (:mod:`repro.trace`) into this module's :class:`Trace`: the captured
  matrices and operand contents become a throughput-driver workload, so
  the multi-client :func:`replay` can hammer a service with real
  recorded traffic (the *deterministic* re-execution of a recording —
  order, barriers, bitwise verification — lives in
  :func:`repro.trace.replay.replay_trace`);
* :func:`replay` — drive a service with N concurrent client sessions and
  report wall throughput, latency and the service's own counters.

Replay results are deterministic in content (operands derive from the
trace seed), so a replay can be checked bitwise against serial dispatch.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.collection import MatrixCollection
from repro.errors import TuningError, ValidationError
from repro.formats.dynamic import DynamicMatrix
from repro.service.service import ServiceResult, TuningService

__all__ = [
    "Trace",
    "ReplayReport",
    "synthetic_trace",
    "trace_from_recorded",
    "trace_from_suite",
    "service_for_suite",
    "replay",
]


@dataclass
class Trace:
    """A replayable request stream: named matrices + a request sequence.

    ``sequence[i]`` names the matrix of request *i*; the operand of
    request *i* is drawn deterministically from ``seed`` and *i*, so two
    replays of the same trace (concurrent or serial) issue bitwise
    identical requests.
    """

    matrices: Dict[str, DynamicMatrix]
    sequence: List[str]
    seed: int = 0
    #: where the matrices came from (reporting only)
    source: str = "synthetic"
    _operands: Optional[Dict[int, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.sequence)

    def operand(self, index: int) -> np.ndarray:
        """The request operand for position *index* (deterministic)."""
        if self._operands is not None:
            return self._operands[index]
        name = self.sequence[index]
        ncols = self.matrices[name].ncols
        rng = np.random.default_rng((self.seed, index))
        return rng.standard_normal(ncols)

    def materialize(self) -> "Trace":
        """Precompute every operand (same values as the lazy path).

        Benchmarks call this before the timed window so operand
        generation does not pollute the throughput measurement; returns
        ``self`` for chaining.
        """
        if self._operands is None:
            operands = {}
            for i, name in enumerate(self.sequence):
                rng = np.random.default_rng((self.seed, i))
                operands[i] = rng.standard_normal(self.matrices[name].ncols)
            self._operands = operands
        return self


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    requests: int
    clients: int
    wall_seconds: float
    results: List[ServiceResult] = field(repr=False, default_factory=list)
    service_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Requests served per wall-clock second."""
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean enqueue-to-completion latency across all requests."""
        if not self.results:
            return 0.0
        return sum(r.latency_seconds for r in self.results) / len(self.results)


def _hot_cold_sequence(
    names: Sequence[str], requests: int, rng: np.random.Generator
) -> List[str]:
    """Zipf-ish sequence: ~80% of traffic hits the first half of *names*."""
    names = list(names)
    hot = names[: max(1, len(names) // 2)]
    sequence = []
    for _ in range(requests):
        pool = hot if rng.random() < 0.8 else names
        sequence.append(pool[int(rng.integers(0, len(pool)))])
    return sequence


def synthetic_trace(
    n_matrices: int = 8,
    requests: int = 64,
    *,
    seed: int = 42,
    collection: Optional[MatrixCollection] = None,
) -> Trace:
    """A deterministic synthetic trace over a generated corpus.

    Materialises ``n_matrices`` matrices from a
    :class:`MatrixCollection` (or the given *collection*) and draws a
    hot/cold request sequence over them.
    """
    if requests < 1:
        raise ValidationError(f"requests must be >= 1, got {requests}")
    if collection is None:
        collection = MatrixCollection(n_matrices=n_matrices, seed=seed)
    specs = collection.subset(n_matrices)
    matrices = {s.name: DynamicMatrix(collection.generate(s)) for s in specs}
    rng = np.random.default_rng(seed)
    return Trace(
        matrices=matrices,
        sequence=_hot_cold_sequence([s.name for s in specs], requests, rng),
        seed=seed,
    )


def trace_from_suite(
    store_root,
    *,
    fingerprint: Optional[str] = None,
    n_matrices: int = 8,
    requests: int = 64,
    seed: int = 42,
) -> Tuple[Trace, "object"]:
    """Replay trace over the corpus of a stored scenario suite.

    Loads the suite spec from the :class:`~repro.experiments.store.ArtifactStore`
    at *store_root* (latest suite unless *fingerprint* is given), rebuilds
    its corpus and draws the trace from those matrices.  Returns
    ``(trace, spec)`` so the caller can also locate the suite's exported
    models (see :func:`service_for_suite`).
    """
    from repro.experiments.store import ArtifactStore

    store = ArtifactStore(store_root)
    spec = store.load_spec(fingerprint)
    collection = spec.corpus.build()
    trace = synthetic_trace(
        min(n_matrices, len(collection)),
        requests,
        seed=seed,
        collection=collection,
    )
    trace.source = f"suite:{spec.name}"
    return trace, spec


def trace_from_recorded(trace) -> Trace:
    """Adapt a recorded trace (:mod:`repro.trace`) into a driver Trace.

    *trace* is a :class:`~repro.trace.format.RecordedTrace` or a trace
    directory path.  The captured matrices become the corpus and the
    recorded ``spmv`` events (in submission order) become the request
    sequence, with the *exact recorded operand contents* attached — so
    two replays of the adapted trace issue bitwise-identical requests,
    same as a synthetic trace.  Updates, kills and promotions are not
    representable in this flat driver view; use
    :func:`repro.trace.replay.replay_trace` to re-execute those
    faithfully.
    """
    from repro.trace.format import RecordedTrace

    if not isinstance(trace, RecordedTrace):
        trace = RecordedTrace.load(trace)
    matrices = {
        key: DynamicMatrix(coo) for key, coo in trace.matrices().items()
    }
    spmv_events = sorted(
        (e for e in trace.events if e["kind"] == "spmv"),
        key=lambda e: e["seq"],
    )
    sequence = [str(e["key"]) for e in spmv_events]
    operands = {i: trace.operand(e) for i, e in enumerate(spmv_events)}
    return Trace(
        matrices=matrices,
        sequence=sequence,
        seed=trace.seed,
        source=f"recorded:{trace.name}",
        _operands=operands,
    )


def service_for_suite(
    store_root,
    *,
    fingerprint: Optional[str] = None,
    algorithm: Optional[str] = None,
    target: int = 0,
    service_cls: Optional[type] = None,
    **kwargs,
) -> TuningService:
    """A service serving predictions from a stored suite's exported model.

    The suite's spec names its targets and algorithms; the service binds
    target *target* (default: the first) and loads that cell's exported
    model from ``<store>/models/<spec fingerprint>/`` through the model
    database.  ``kwargs`` pass through to the service constructor.
    *service_cls* selects the serving tier — :class:`TuningService`
    (default) or :class:`repro.distributed.DistributedService`; both
    expose the same ``from_model_database`` entry point.
    """
    import os

    from repro.experiments.store import ArtifactStore

    store = ArtifactStore(store_root)
    spec = store.load_spec(fingerprint)
    if not 0 <= target < len(spec.targets):
        raise ValidationError(
            f"suite {spec.name!r} has {len(spec.targets)} targets, "
            f"no index {target}"
        )
    t = spec.targets[target]
    model_dir = os.path.join(store.root, "models", spec.fingerprint)
    if not os.path.isdir(model_dir):
        # fail before any service/worker construction: a suite that was
        # never exported must not leave a half-built service behind
        raise TuningError(
            f"suite {spec.name!r} has no exported model database at "
            f"{model_dir}; run its export stage first"
        )
    cls = service_cls or TuningService
    return cls.from_model_database(
        model_dir,
        t.system,
        t.backend,
        algorithm=algorithm or spec.algorithms[0],
        **kwargs,
    )


def replay(
    service: TuningService,
    trace: Trace,
    *,
    clients: int = 4,
) -> ReplayReport:
    """Drive *service* with the trace split across *clients* threads.

    Client *c* issues requests ``c, c + clients, c + 2*clients, ...``
    through its own :class:`~repro.service.service.Session`, all
    asynchronously, then waits for its futures — so requests from
    different clients (and for the same matrix) genuinely overlap and
    can coalesce.  Results come back in trace order regardless of
    completion order.
    """
    if clients < 1:
        raise ValidationError(f"clients must be >= 1, got {clients}")
    results: List[Optional[ServiceResult]] = [None] * len(trace)
    errors: List[BaseException] = []

    def client(c: int) -> None:
        session = service.session(name=f"client-{c}")
        try:
            futures = [
                (i, session.submit(
                    trace.matrices[trace.sequence[i]],
                    trace.operand(i),
                    key=trace.sequence[i],
                ))
                for i in range(c, len(trace), clients)
            ]
            for i, future in futures:
                results[i] = future.result()
        except BaseException as exc:  # surface in the caller's thread
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(c,), name=f"replay-client-{c}")
        for c in range(clients)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return ReplayReport(
        requests=len(trace),
        clients=clients,
        wall_seconds=wall,
        results=[r for r in results if r is not None],
        service_stats=service.stats(),
    )
