"""Sharded, capacity-bounded LRU of per-matrix workload engines.

Service layer 1.  The online :class:`~repro.service.service.TuningService`
cannot hold a :class:`~repro.runtime.engine.WorkloadEngine` for every
matrix it has ever seen — under heavy traffic the set of live matrices is
unbounded — so engines live in a :class:`ShardedEngineCache`:

* the key space is split across ``shards`` independent shards, each with
  its **own** lock and its own LRU list, so requests for unrelated
  matrices never contend on a global cache lock;
* total capacity is bounded; when a shard exceeds its slice of the
  budget the least-recently-used engine is evicted (its cache counters
  and modelled seconds are first folded into the service-level totals via
  the ``on_evict`` hook, so accounting survives eviction);
* :meth:`ShardedEngineCache.lease` hands the caller the engine *while
  holding the shard lock*, which is what makes serving safe: an engine
  can only be evicted by another lease on the same shard, and that lease
  is blocked until the current one releases.

Shard assignment is a stable blake2b hash of the key, so the same matrix
always lands on the same shard across runs and processes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, TypeVar

from repro.errors import ValidationError

__all__ = ["ShardedEngineCache"]

T = TypeVar("T")


def _stable_hash(key: str) -> int:
    """Deterministic (cross-process) integer hash of a cache key."""
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class _Shard:
    """One lock + LRU list; all mutation happens under :attr:`lock`."""

    __slots__ = ("lock", "entries", "capacity")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.entries: "OrderedDict[str, object]" = OrderedDict()
        self.capacity = capacity


class ShardedEngineCache:
    """Capacity-bounded LRU of lazily built values, sharded by key hash.

    Parameters
    ----------
    factory:
        Zero-argument callable building a fresh value (engine) on a miss.
    capacity:
        Total number of values kept alive across all shards (>= 1).
    shards:
        Number of independent lock domains; clamped to ``capacity`` so
        every shard owns at least one slot.  With ``capacity=1`` the
        cache degenerates to a single shard holding a single engine —
        the deterministic-eviction configuration the tests use.
    on_evict:
        Optional hook called with ``(key, value)`` right after a value
        leaves the cache (still under the shard lock); the service uses
        it to fold the evicted engine's accounting into its own totals.
    pinned:
        Optional predicate ``(key, value) -> bool``; entries it returns
        ``True`` for are exempt from eviction.  The LRU walk skips them
        and evicts the oldest unpinned entry instead; when *every*
        entry in an over-budget shard is pinned, the shard is allowed
        to overflow its slice rather than discard a pinned value.  The
        service pins engines holding mutated streams — their merged
        content exists nowhere else, so evicting one would silently
        lose acknowledged matrix updates.
    """

    def __init__(
        self,
        factory: Callable[[], T],
        *,
        capacity: int = 64,
        shards: int = 8,
        on_evict: Optional[Callable[[str, T], None]] = None,
        pinned: Optional[Callable[[str, T], bool]] = None,
    ) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        self.factory = factory
        self.capacity = int(capacity)
        self.n_shards = min(int(shards), self.capacity)
        # distribute the budget: the first (capacity % shards) shards get
        # one extra slot, so per-shard capacities always sum to `capacity`
        base, extra = divmod(self.capacity, self.n_shards)
        self._shards: List[_Shard] = [
            _Shard(base + (1 if i < extra else 0)) for i in range(self.n_shards)
        ]
        self.on_evict = on_evict
        self.pinned = pinned
        self._counter_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """Stable shard index for *key* (same key, same shard, any run)."""
        return _stable_hash(key) % self.n_shards

    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)

    def __contains__(self, key: str) -> bool:
        shard = self._shards[self.shard_of(key)]
        with shard.lock:
            return key in shard.entries

    @contextmanager
    def lease(self, key: str) -> Iterator[T]:
        """Yield the (get-or-created) value for *key* under its shard lock.

        Holding the shard lock for the whole lease serialises work on
        matrices sharing a shard while leaving every other shard free —
        and guarantees the leased value cannot be evicted mid-use, since
        eviction only happens under the same lock.
        """
        shard = self._shards[self.shard_of(key)]
        with shard.lock:
            value = shard.entries.get(key)
            if value is not None:
                shard.entries.move_to_end(key)
                with self._counter_lock:
                    self.hits += 1
            else:
                with self._counter_lock:
                    self.misses += 1
                value = self.factory()
                shard.entries[key] = value
                while len(shard.entries) > shard.capacity:
                    victim = None
                    for old_key, old_value in shard.entries.items():
                        if old_key is key:
                            continue  # never evict the entry being leased
                        if self.pinned is not None and self.pinned(
                            old_key, old_value
                        ):
                            continue
                        victim = (old_key, old_value)
                        break
                    if victim is None:
                        # every candidate is pinned: overflow the shard
                        # rather than lose un-reconstructable state
                        break
                    old_key, old_value = victim
                    del shard.entries[old_key]
                    with self._counter_lock:
                        self.evictions += 1
                    if self.on_evict is not None:
                        self.on_evict(old_key, old_value)
            yield value

    def values(self) -> List[T]:
        """Snapshot of the live values (for stats aggregation)."""
        out: List[T] = []
        for shard in self._shards:
            with shard.lock:
                out.extend(shard.entries.values())
        return out

    def apply(self, fn: Callable[[str, T], None]) -> int:
        """Run *fn(key, value)* on every live entry under its shard lock.

        Shards are visited one at a time, so *fn* never races a lease on
        the same entry: a drain serving a batch holds its shard lock and
        the apply waits for it.  This is what makes a model hot-swap
        atomic per engine — an in-flight batch finishes under the old
        model, everything after the apply sees the new one.  Returns the
        number of entries visited.
        """
        visited = 0
        for shard in self._shards:
            with shard.lock:
                for key, value in shard.entries.items():
                    fn(key, value)
                    visited += 1
        return visited

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Lookup/eviction tallies and per-shard occupancy."""
        with self._counter_lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
        sizes = [len(s.entries) for s in self._shards]
        total = hits + misses
        return {
            "capacity": self.capacity,
            "shards": self.n_shards,
            "size": sum(sizes),
            "shard_sizes": sizes,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "evictions": evictions,
        }
