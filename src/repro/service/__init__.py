"""Concurrent auto-tuning service: the online stack over the runtime.

The offline layers (``repro.core`` for tuning, ``repro.experiments`` for
training suites) produce models; this package *serves* them under
concurrent traffic, top-down:

* :mod:`~repro.service.service` — :class:`TuningService`, the concurrent
  request front end: a worker pool executes decide -> convert -> execute,
  concurrent requests against the same matrix coalesce into batched
  multi-vector kernel calls, and everything is accounted through one
  :meth:`~TuningService.stats` dict.  :class:`Session` is the per-client
  programmatic API.
* :mod:`~repro.service.cache` — :class:`ShardedEngineCache`, the sharded
  capacity-bounded LRU of per-matrix
  :class:`~repro.runtime.engine.WorkloadEngine` instances (per-shard
  locks, eviction with accounting hand-off).
* :mod:`~repro.service.replay` — synthetic and stored-suite request
  traces plus the multi-client :func:`replay` driver behind
  ``repro serve``.

See ``docs/service.md`` for the sharding, coalescing and eviction
semantics.
"""

from repro.service.cache import ShardedEngineCache
from repro.service.replay import (
    ReplayReport,
    Trace,
    replay,
    service_for_suite,
    synthetic_trace,
    trace_from_recorded,
    trace_from_suite,
)
from repro.service.service import (
    ServiceResult,
    Session,
    TuningService,
    UpdateResult,
)

__all__ = [
    "ReplayReport",
    "ServiceResult",
    "Session",
    "ShardedEngineCache",
    "Trace",
    "TuningService",
    "UpdateResult",
    "replay",
    "service_for_suite",
    "synthetic_trace",
    "trace_from_recorded",
    "trace_from_suite",
]
