"""Per-fingerprint request coalescing, shared by the serving tiers.

The coalescing discipline of the in-process
:class:`~repro.service.service.TuningService` — pile concurrent requests
for the same matrix into a per-fingerprint queue, drain up to
``max_batch`` of them as one batched kernel call, treat mutation
requests as barriers that are never coalesced and never reordered — is
exactly what the multi-process gateway
(:class:`~repro.distributed.gateway.DistributedService`) needs at the
process boundary too.  This module holds that machinery once:

* :class:`PendingRequest` — one validated, submitted request (compute or
  mutation) awaiting a drain;
* :class:`FingerprintQueues` — the lock-protected map of per-fingerprint
  queues with the scheduled-flag discipline (at most one drain loop in
  flight per fingerprint) and barrier-aware batch extraction;
* :func:`split_stacked` — fan a batched ``(nrows, k)`` engine result out
  into per-request results with fair-share accounting (the service's
  stacked fast path and the worker process use the same arithmetic, so
  the two tiers can never diverge on what a coalesced request reports).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["FingerprintQueues", "PendingRequest", "split_stacked"]


class PendingRequest:
    """One validated, submitted request awaiting a drain.

    ``kind`` is ``"spmv"`` for compute requests and ``"update"`` for
    mutation requests (which carry a ``delta`` instead of an operand and
    act as a barrier in the fingerprint's queue: never coalesced, never
    reordered against surrounding SpMVs).
    """

    __slots__ = (
        "matrix",
        "operand",
        "repetitions",
        "future",
        "enqueued_at",
        "kind",
        "delta",
        "trace_id",
        "validate_seconds",
    )

    def __init__(
        self,
        matrix,
        operand: Optional[np.ndarray],
        repetitions: int,
        future: "Future",
        *,
        kind: str = "spmv",
        delta=None,
        trace_id: str = "",
        validate_seconds: float = 0.0,
    ) -> None:
        self.matrix = matrix
        self.operand = operand
        self.repetitions = repetitions
        self.future = future
        self.kind = kind
        self.delta = delta
        #: Observability trace ID minted at submit(); rides the request
        #: through coalescing, control messages, and respawn replays.
        self.trace_id = trace_id
        #: Seconds spent validating in the caller's thread (span stage).
        self.validate_seconds = validate_seconds
        self.enqueued_at = time.perf_counter()

    @property
    def stackable(self) -> bool:
        """Whether this request can share a stacked single-kernel batch."""
        return (
            self.kind == "spmv"
            and self.repetitions == 1
            and self.operand is not None
            and self.operand.ndim == 1
        )


class _Queue:
    """Pending requests for one fingerprint plus its drain-scheduled flag."""

    __slots__ = ("items", "scheduled")

    def __init__(self) -> None:
        self.items: List[PendingRequest] = []
        self.scheduled = False


class FingerprintQueues:
    """Map of per-fingerprint request queues with drain scheduling.

    The discipline both serving tiers rely on:

    * :meth:`push` appends a request and reports whether the caller must
      schedule a drain (at most one drain is in flight per fingerprint —
      the ``scheduled`` flag stays set until :meth:`finish` observes an
      empty queue);
    * :meth:`take_batch` extracts the next batch under barrier rules: a
      leading mutation request is returned alone, otherwise up to
      ``max_batch`` compute requests up to (never across) the next
      mutation.  With ``stackable_only=True`` a batch additionally never
      mixes plain single-vector requests with block or repeated
      requests — the distributed tier ships a batch as one contiguous
      shared-memory block, so every member must be one column of it;
    * :meth:`finish` re-checks the queue after a drain: ``True`` means
      more requests arrived and the caller must keep the drain alive.
    """

    def __init__(self) -> None:
        self._queues: Dict[str, _Queue] = {}
        self._lock = threading.Lock()

    def push(self, fp: str, request: PendingRequest) -> bool:
        """Append *request* under *fp*; ``True`` = caller schedules a drain."""
        with self._lock:
            queue = self._queues.get(fp)
            if queue is None:
                queue = self._queues[fp] = _Queue()
            queue.items.append(request)
            if queue.scheduled:
                return False
            queue.scheduled = True
            return True

    def take_batch(
        self, fp: str, max_batch: int, *, stackable_only: bool = False
    ) -> List[PendingRequest]:
        """Extract the next barrier-respecting batch for *fp* (may be [])."""
        with self._lock:
            queue = self._queues.get(fp)
            if queue is None or not queue.items:
                return []
            items = queue.items
            if items[0].kind == "update":
                # a mutation is a barrier: applied alone, in queue order
                return [items.pop(0)]
            if stackable_only and not items[0].stackable:
                # block / repeated requests ship alone: their operand is
                # its own shared-memory payload, not a stacked column
                return [items.pop(0)]
            end = 0
            limit = min(len(items), int(max_batch))
            while end < limit and items[end].kind == "spmv":
                if stackable_only and not items[end].stackable:
                    break
                end += 1
            batch = items[:end]
            del items[:end]
            return batch

    def finish(self, fp: str) -> bool:
        """Post-drain check: ``True`` when requests remain queued for *fp*.

        When the queue is empty its entry is dropped and the scheduled
        flag cleared, so the next :meth:`push` schedules a fresh drain.
        """
        with self._lock:
            queue = self._queues.get(fp)
            if queue is None:
                return False
            if queue.items:
                return True  # stayed scheduled: more arrived
            queue.scheduled = False
            del self._queues[fp]
            return False

    def keys(self) -> List[str]:
        """Snapshot of fingerprints with queued requests."""
        with self._lock:
            return list(self._queues)

    def pop_all(self) -> List[PendingRequest]:
        """Remove and return every queued request (shutdown without wait)."""
        with self._lock:
            leftovers = [
                request
                for queue in self._queues.values()
                for request in queue.items
            ]
            self._queues.clear()
            return leftovers

    def __len__(self) -> int:
        with self._lock:
            return sum(len(q.items) for q in self._queues.values())


def split_stacked(block, n: int) -> List:
    """Per-request results for a batched ``(nrows, k)`` engine result.

    Each request's modelled ``seconds`` is its fair share of the single
    batched kernel call, so summed request costs match the engine's
    accounting; the tuning/conversion overhead is attributed to the
    batch's first request, and every member after the first reports
    ``from_cache`` (its artefacts were resolved by the first).  Both the
    in-process stacked fast path and the distributed worker fan batches
    out through this helper, which is what keeps a coalesced request's
    accounting bitwise-stable across tiers.
    """
    from repro.runtime.engine import EngineResult

    share = block.seconds / n
    return [
        EngineResult(
            y=block.y[:, j],
            seconds=share,
            overhead_seconds=block.overhead_seconds if j == 0 else 0.0,
            format=block.format,
            fingerprint=block.fingerprint,
            from_cache=block.from_cache or j > 0,
            epoch=block.epoch,
            backend=block.backend,
        )
        for j in range(n)
    ]
