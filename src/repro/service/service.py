"""Concurrent auto-tuning service: the online face of the runtime stack.

Service layer 2.  :class:`TuningService` accepts many concurrent SpMV /
SpMM requests and turns them into as few kernel launches as possible:

* engines live in a :class:`~repro.service.cache.ShardedEngineCache` —
  one cached :class:`~repro.runtime.engine.WorkloadEngine` per matrix
  fingerprint, per-shard locks, bounded capacity with LRU eviction (an
  evicted engine's accounting is folded into the service totals first);
* concurrent requests against the *same* matrix are **coalesced**: they
  pile up in a per-fingerprint queue and a single worker drains up to
  ``max_batch`` of them as one batched multi-vector call through
  :mod:`repro.runtime.batch` (one kernel launch for *k* requests instead
  of *k* launches);
* a ``ThreadPoolExecutor`` worker pool executes the decide -> convert ->
  execute chain; every request is accounted (enqueue-to-completion wall
  latency plus the engine's modelled seconds) and the service keeps
  counters for cache hits, coalesced batches and evictions, all exposed
  through one :meth:`TuningService.stats` dict.

Requests are validated *at submission* (shape, operand length), so a
malformed request fails fast in the caller's thread and can never poison
a coalesced batch.  Results are bitwise identical to serial dispatch:
the batched CSR kernel accumulates each output element in the same order
as the single-vector kernel.

Model-driven serving loads deployed models through
:mod:`repro.core.model_io` — :meth:`TuningService.from_model_database`
points the service at a :class:`~repro.core.pipeline.ModelDatabase`
directory (e.g. the ``models/<fingerprint>/`` directory a scenario suite
exported) and serves predictions from the stored model.

Matrices are allowed to *evolve*: a :meth:`Session.update` mutation
request carries a :class:`~repro.formats.delta.MatrixDelta` through the
same per-fingerprint queue as the SpMVs (it acts as a barrier — never
coalesced, never reordered) and advances the matrix's epoch under the
engine-cache shard lock, invalidating only decision-dependent artefacts
(see :meth:`~repro.runtime.engine.WorkloadEngine.update`).  Every
:class:`ServiceResult` is stamped with the epoch that served it.

The service is also the sensor and actuator of the adaptive loop
(:mod:`repro.adaptive`): an optional *observer* callback receives one
plain-dict observation per served request (features, chosen format,
latency, and — every ``shadow_every``-th batch per matrix — the rival
per-format shadow timings), and :meth:`TuningService.promote_model`
hot-swaps the serving model under the engine-cache shard locks, so an
in-flight batch always completes under a single model and no request is
ever dropped or served from a torn state.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.delta import MatrixDelta
from repro.formats.dynamic import DynamicMatrix
from repro.machine.stats import MatrixStats
from repro.obs import Observability
from repro.obs.views import build_service_stats
from repro.runtime.engine import (
    STREAM_THRESHOLD_BYTES,
    WorkloadEngine,
    request_key,
    validate_operand,
)
from repro.service.accounting import empty_engine_totals, fold_engine_stats
from repro.service.cache import ShardedEngineCache
from repro.service.coalesce import (
    FingerprintQueues,
    PendingRequest,
    split_stacked,
)
from repro.storage.stream import mmap_backed
from repro.storage.tier import StorageTier
from repro.utils.concurrency import default_thread_workers

__all__ = ["ServiceResult", "Session", "TuningService", "UpdateResult"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


@dataclass(frozen=True)
class ServiceResult:
    """Outcome of one served request.

    ``seconds`` / ``overhead_seconds`` / ``format`` / ``from_cache``
    mirror :class:`~repro.runtime.engine.EngineResult` — for a coalesced
    batch, ``seconds`` is the request's fair share of the single batched
    kernel call and the tuning/conversion overhead is attributed to the
    batch's first request.  On top of those the service records
    ``batch_size`` (how many requests shared the kernel launch that
    produced this result), ``latency_seconds`` (wall-clock time from
    submission to completion) and ``model_version`` (which deployed
    model the serving batch ran under — the hot-swap audit trail).
    ``backend`` is the kernel backend that actually ran the batch
    (:mod:`repro.kernels`), after any fallback.
    """

    y: np.ndarray
    seconds: float
    overhead_seconds: float
    format: str
    fingerprint: str
    from_cache: bool
    batch_size: int
    latency_seconds: float
    model_version: str = ""
    #: Matrix version that served this request (0 = never mutated).
    epoch: int = 0
    #: Kernel backend that executed the serving kernel.
    backend: str = "numpy"
    #: Observability trace ID minted at submit() — correlates this
    #: result with its span timeline and trace-replay events.
    trace_id: str = ""


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one :meth:`Session.update` mutation request.

    Mirrors the engine's :class:`~repro.runtime.epoch.StreamUpdate` —
    which epoch the matrix advanced to, whether the format decision was
    carried forward or re-tuned (and at what measured stat ``drift``) —
    plus the request's wall ``latency_seconds``.
    """

    fingerprint: str
    epoch: int
    carried_forward: bool
    retuned: bool
    format: Optional[str]
    drift: float
    nnz: int
    latency_seconds: float
    #: Observability trace ID minted at submit_update().
    trace_id: str = ""


class TuningService:
    """Concurrent SpMV/SpMM auto-tuning service over a worker pool.

    Parameters
    ----------
    space:
        The :class:`~repro.backends.base.ExecutionSpace` requests are
        served and priced against.
    tuner:
        Optional :class:`~repro.core.tuners.base.Tuner` deciding each
        matrix's serving format (paid once per matrix, then cached by
        that matrix's engine).  ``None`` serves every matrix in its
        active format.
    workers:
        Thread-pool size executing the decide -> convert -> execute chain.
        ``None`` (default) derives the size from the host's core count
        (see :func:`repro.utils.concurrency.default_thread_workers`).
    capacity:
        Maximum live :class:`~repro.runtime.engine.WorkloadEngine`
        instances (one per matrix fingerprint); least-recently-used
        engines are evicted beyond it.
    shards:
        Lock domains of the engine cache (clamped to ``capacity``);
        requests for matrices on different shards never contend.
    max_batch:
        Upper bound on how many queued requests one drain coalesces into
        a single batched kernel call; ``1`` disables coalescing (the
        "naive dispatch" baseline the benchmark compares against).
    accelerate:
        Route kernels through the compiled batch path when available.
    kernel_backend:
        Kernel-backend policy handed to every engine the cache builds
        (see :class:`~repro.runtime.engine.WorkloadEngine`): ``None``
        (default) follows each matrix's tuner decision, an explicit
        :mod:`repro.kernels` name pins every request, ``"auto"``
        re-resolves the best available tier.
    shadow_every:
        Shadow-profiling cadence for the telemetry feed: every
        ``shadow_every``-th batch per matrix (starting with the first)
        also resolves the rival per-format timings through the engine's
        memoised :meth:`~repro.runtime.engine.WorkloadEngine.profile_formats`
        and attaches them to that batch's first observation.  ``0``
        (default) disables shadow profiling.
    redecision:
        Optional :class:`~repro.runtime.epoch.RedecisionPolicy` handed
        to every engine the cache builds — how far the incrementally
        maintained statistics may drift across epochs before a mutation
        forces a re-tune.  ``None`` uses the engine default.
    storage_dir:
        Optional disk-tier root (:class:`~repro.storage.tier
        .StorageTier`).  With a tier configured, engine-cache eviction
        *demotes* the evicted engine's converted container (and its
        decision + statistics) to disk instead of dropping it, and a
        later request for the same matrix *promotes* it back as
        read-only mmap views — the conversion cost of the round trip is
        replaced by an mmap reattach.  ``None`` (default) keeps plain
        drop-on-evict behaviour.
    storage_capacity_bytes:
        Optional byte cap on the disk tier's resident entries (oldest
        demoted entries are evicted beyond it).
    stream_threshold_bytes / stream_block_bytes:
        Out-of-core streaming policy handed to every engine (see
        :class:`~repro.runtime.engine.WorkloadEngine`): mmap-backed CSR
        containers at or above the threshold are served by row-block
        streaming, bitwise-identical to the in-RAM path.

    Use as a context manager (or call :meth:`close`) to shut the worker
    pool down; pending requests are drained first.
    """

    def __init__(
        self,
        space,
        tuner=None,
        *,
        workers: Optional[int] = None,
        capacity: int = 64,
        shards: int = 8,
        max_batch: int = 32,
        accelerate: bool = True,
        kernel_backend: Optional[str] = None,
        shadow_every: int = 0,
        redecision=None,
        observability: bool = True,
        storage_dir: Optional[str] = None,
        storage_capacity_bytes: Optional[int] = None,
        stream_threshold_bytes: Optional[int] = STREAM_THRESHOLD_BYTES,
        stream_block_bytes: Optional[int] = None,
    ) -> None:
        if workers is None:
            workers = default_thread_workers()
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        if shadow_every < 0:
            raise ValidationError(
                f"shadow_every must be >= 0, got {shadow_every}"
            )
        self.space = space
        self.tuner = tuner
        self.workers = int(workers)
        self.max_batch = int(max_batch)
        self.accelerate = accelerate
        #: Kernel-backend policy for the engines (None follows tuners).
        self.kernel_backend = kernel_backend
        self.shadow_every = int(shadow_every)
        #: Optional :class:`~repro.runtime.epoch.RedecisionPolicy` every
        #: engine is built with (None = the engine default).
        self.redecision = redecision
        #: Out-of-core streaming policy handed to every engine.
        self.stream_threshold_bytes = stream_threshold_bytes
        self.stream_block_bytes = stream_block_bytes
        #: Disk tier for demoted serving containers (None = drop on evict).
        self.storage: Optional[StorageTier] = (
            StorageTier(storage_dir, capacity_bytes=storage_capacity_bytes)
            if storage_dir is not None
            else None
        )
        self.engines = ShardedEngineCache(
            self._make_engine,
            capacity=capacity,
            shards=shards,
            on_evict=self._retire_engine,
            # mutated stream content lives only in its engine; evicting
            # one would silently lose acknowledged updates
            pinned=lambda _key, engine: engine.has_mutated_streams(),
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._pending = FingerprintQueues()
        self._metrics_lock = threading.Lock()
        self._model_lock = threading.Lock()
        self._closed = False
        # service-level instruments live in the observability registry
        # (engine-level accounting stays in the engines and is folded at
        # view time); ``observability=False`` keeps the instruments —
        # they ARE the accounting — but turns span/event recording off
        self.obs = Observability(tier="inproc", enabled=observability)
        self.obs.registry.register_collector(self._collect_gauges)
        #: accounting folded in from engines evicted by the cache
        self._retired = empty_engine_totals()
        self._retired["profile_times"] = {}
        #: deployed-model provenance, replaced atomically by promote_model
        self.model_info: Dict[str, object] = {
            "version": "-",
            "source": "",
            "algorithm": type(tuner).__name__ if tuner is not None else "",
            "promoted_at": None,
        }
        # the authoritative (tuner, info) pair: read in one attribute
        # access by the engine factory so a freshly built engine can
        # never pair a new tuner with an old version stamp (or vice
        # versa) mid-promotion
        self._deployed = (tuner, self.model_info)
        self._observer = None
        self._shadow_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # registry-backed counters (read-compat attribute surface)
    # ------------------------------------------------------------------
    @property
    def requests_submitted(self) -> int:
        return self.obs.requests_submitted.value

    @property
    def requests_served(self) -> int:
        return self.obs.requests_served.value

    @property
    def updates_served(self) -> int:
        return self.obs.updates_served.value

    @property
    def batches(self) -> int:
        return self.obs.batches.value

    @property
    def coalesced_batches(self) -> int:
        return self.obs.coalesced_batches.value

    @property
    def coalesced_requests(self) -> int:
        return self.obs.coalesced_requests.value

    @property
    def shadow_probes(self) -> int:
        return self.obs.shadow_probes.value

    @property
    def promotions(self) -> int:
        return self.obs.promotions.value

    @property
    def latency_total(self) -> float:
        return self.obs.latency.sum

    @property
    def latency_max(self) -> float:
        return self.obs.latency.max_value

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _make_engine(self) -> WorkloadEngine:
        tuner, info = self._deployed  # one read: tuner/version stay paired
        engine = WorkloadEngine(
            self.space,
            tuner=tuner,
            accelerate=self.accelerate,
            redecision=self.redecision,
            kernel_backend=self.kernel_backend,
            stream_threshold_bytes=self.stream_threshold_bytes,
            stream_block_bytes=self.stream_block_bytes,
        )
        engine.model_version = str(info.get("version", "-"))
        return engine

    @classmethod
    def from_model_database(
        cls,
        model_dir,
        system: str,
        backend: str,
        *,
        algorithm: str = "random_forest",
        **kwargs,
    ) -> "TuningService":
        """Service driven by a deployed model from a model database.

        Loads the ``(system, backend, algorithm)`` model through
        :class:`~repro.core.pipeline.ModelDatabase` /
        :mod:`repro.core.model_io` and binds the matching execution
        space, so a model exported by the offline pipeline (or a
        scenario suite's ``models/<fingerprint>/`` directory) serves
        online predictions.  ``kwargs`` pass through to the constructor.
        """
        from repro.backends import make_space
        from repro.core.pipeline import ModelDatabase
        from repro.core.tuners.ml import DecisionTreeTuner, RandomForestTuner

        model = ModelDatabase(model_dir).load(system, backend, algorithm)
        tuner_cls = (
            DecisionTreeTuner
            if model.kind == "decision_tree"
            else RandomForestTuner
        )
        service = cls(make_space(system, backend), tuner_cls(model), **kwargs)
        service.set_model_info(
            version=str(model.metadata.get("version", "deployed")),
            source=str(model.metadata.get("source", model_dir)),
            algorithm=algorithm,
        )
        return service

    # ------------------------------------------------------------------
    # adaptive loop: hot swap + telemetry feed
    # ------------------------------------------------------------------
    def set_model_info(
        self,
        *,
        version: str,
        source: str = "",
        algorithm: str = "",
    ) -> None:
        """Stamp the *currently deployed* tuner's provenance (no swap).

        For services whose initial tuner was handed to the constructor:
        records where it came from so ``stats()["model"]`` and
        per-result ``model_version`` stamps are meaningful from the
        first request.  Use :meth:`promote_model` to actually change
        models.
        """
        with self._model_lock:
            info: Dict[str, object] = {
                "version": str(version),
                "source": source,
                "algorithm": algorithm or type(self.tuner).__name__,
                "promoted_at": None,
            }
            self._deployed = (self.tuner, info)
            self.model_info = info
            self.engines.apply(
                lambda _key, engine: engine.set_tuner(
                    self.tuner, version=str(version)
                )
            )

    def set_observer(self, observer) -> None:
        """Install (or clear, with ``None``) the telemetry observer.

        The observer is called once per served batch with a list of
        plain-dict observations (one per request): ``fingerprint``,
        ``format``, ``seconds``, ``latency_seconds``, ``batch_size``,
        ``model_version``, the matrix's cached ``features`` vector, and
        ``shadow_times`` (per-format rival timings) on shadow-probed
        batches.  It runs on the worker thread *after* the batch's
        futures resolve and the engine lease is released, so a slow
        observer (a synchronous retrain) delays only that fingerprint's
        next drain, never a result.  Observer exceptions are counted
        (``stats()["observer_errors"]``) and swallowed — telemetry must
        not break serving.
        """
        self._observer = observer

    def promote_model(
        self,
        tuner,
        *,
        version: str,
        source: str = "",
        algorithm: str = "",
    ) -> Dict[str, object]:
        """Hot-swap the serving model; returns the new model-info block.

        Atomicity contract: the swap walks every live engine under its
        cache shard lock (:meth:`ShardedEngineCache.apply`), updating
        tuner and version stamp together, so a drain serving a batch
        finishes under the old model before its engine is swapped, and
        any request after the swap is decided by — and stamped with —
        the new one.  Requests are never dropped and never see a torn
        state.  Each engine keeps its model-independent artefacts
        (stats, features, profile timings) and re-decides formats on
        demand; rollback is just another promotion with an earlier
        model's tuner.
        """
        with self._model_lock:
            info: Dict[str, object] = {
                "version": str(version),
                "source": source,
                "algorithm": algorithm or type(tuner).__name__,
                "promoted_at": time.time(),
            }
            # publish the pair first: engines built during the walk below
            # already get the new (tuner, version); the walk then fixes
            # every engine that predates it
            self._deployed = (tuner, info)
            self.tuner = tuner
            self.model_info = info
            self.engines.apply(
                lambda _key, engine: engine.set_tuner(
                    tuner, version=str(version)
                )
            )
            self.obs.promotions.inc()
            self.obs.event(
                "model_promoted",
                version=str(version),
                algorithm=info["algorithm"],
            )
            return dict(info)

    def profile_times(self) -> Dict[str, Dict[str, float]]:
        """Per-matrix per-format shadow timings, live *and* evicted.

        Merges every live engine's
        :meth:`~repro.runtime.engine.WorkloadEngine.profile_snapshot`
        with the snapshots folded in at eviction, so the telemetry
        baseline for a matrix survives its engine's eviction.  Live
        snapshots are taken under each engine's shard lock
        (:meth:`ShardedEngineCache.apply`) — a concurrent drain's first
        shadow probe inserts into the engine's timing table, and an
        unlocked iteration could see the dict change size mid-walk.
        """
        with self._metrics_lock:
            merged = {
                fp: dict(times)
                for fp, times in self._retired["profile_times"].items()
            }
        self.engines.apply(
            lambda _key, engine: merged.update(engine.profile_snapshot())
        )
        return merged

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: MatrixLike,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        repetitions: int = 1,
    ) -> "Future[ServiceResult]":
        """Enqueue one request; returns a future resolving to its result.

        ``x`` may be a length-``ncols`` vector or an ``(ncols, k)``
        block; validation happens here, in the caller's thread, so a
        malformed request raises immediately instead of failing a
        coalesced batch later.  Requests for the same matrix submitted
        while a worker is busy are coalesced into one batched kernel
        call when that worker drains the queue.
        """
        if self._closed:
            raise ValidationError("service is closed")
        submitted_at = time.perf_counter()
        operand = validate_operand(matrix, x)
        fp = key if key is not None else request_key(matrix)
        future: "Future[ServiceResult]" = Future()
        request = PendingRequest(
            matrix,
            operand,
            int(repetitions),
            future,
            trace_id=self.obs.mint(),
            validate_seconds=time.perf_counter() - submitted_at,
        )
        self._enqueue(fp, request)
        return future

    def submit_update(
        self,
        matrix: MatrixLike,
        delta: MatrixDelta,
        *,
        key: Optional[str] = None,
    ) -> "Future[UpdateResult]":
        """Enqueue a mutation: advance the matrix one epoch under its key.

        The delta is validated here (bounds against the matrix shape)
        and queued behind any already-submitted requests for the same
        fingerprint; it acts as a barrier — SpMVs submitted before it
        are served against the old epoch, SpMVs after it against the
        new one — and is applied under the engine-cache shard lock, so
        it can never interleave with a batch in flight.
        """
        if self._closed:
            raise ValidationError("service is closed")
        submitted_at = time.perf_counter()
        if not isinstance(delta, MatrixDelta):
            raise ValidationError(
                f"update needs a MatrixDelta, got {type(delta).__name__}"
            )
        concrete = (
            matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        )
        delta.check_bounds(concrete.nrows, concrete.ncols)
        fp = key if key is not None else request_key(matrix)
        future: "Future[UpdateResult]" = Future()
        request = PendingRequest(
            matrix,
            None,
            1,
            future,
            kind="update",
            delta=delta,
            trace_id=self.obs.mint(),
            validate_seconds=time.perf_counter() - submitted_at,
        )
        self._enqueue(fp, request)
        return future

    def update(
        self,
        matrix: MatrixLike,
        delta: MatrixDelta,
        *,
        key: Optional[str] = None,
    ) -> UpdateResult:
        """Blocking convenience wrapper around :meth:`submit_update`."""
        return self.submit_update(matrix, delta, key=key).result()

    def _enqueue(self, fp: str, request: PendingRequest) -> None:
        """Append one request to its fingerprint queue; schedule a drain."""
        schedule = self._pending.push(fp, request)
        self.obs.requests_submitted.inc()
        if schedule:
            self._schedule(fp)

    def spmv(
        self,
        matrix: MatrixLike,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        repetitions: int = 1,
    ) -> ServiceResult:
        """Blocking convenience wrapper: submit and wait for the result."""
        return self.submit(matrix, x, key=key, repetitions=repetitions).result()

    def _schedule(self, fp: str) -> None:
        """Hand a drain for *fp* to the worker pool (one in flight per fp).

        If the pool has been shut down (a reschedule racing
        :meth:`close`), the queue is drained inline in the calling
        thread instead — a submitted request is never silently dropped.
        """
        try:
            self._executor.submit(self._drain, fp)
        except RuntimeError:  # executor shut down mid-close
            self._drain_inline(fp)

    def _drain_inline(self, fp: str) -> None:
        """Serve a fingerprint's whole queue in the calling thread."""
        while True:
            more, observations, spans = self._drain_once(fp)
            self._deliver_telemetry(observations, spans)
            if not more:
                return

    def _drain(self, fp: str) -> None:
        """Worker task: serve one batch, reschedule if more arrived.

        The next drain is rescheduled *before* the telemetry observer
        runs, so a slow observer (or a synchronous retrain) overlaps
        with serving on the pool instead of stalling the fingerprint's
        queue.
        """
        more, observations, spans = self._drain_once(fp)
        if more:
            self._schedule(fp)
        self._deliver_telemetry(observations, spans)

    def _drain_once(self, fp: str):
        """Serve up to ``max_batch`` queued requests for one fingerprint.

        Returns ``(more, observations, spans)``: *more* is ``True``
        when requests remain queued for *fp* (the caller must keep the
        drain alive); *observations* is the served batch's telemetry and
        *spans* its partially-timed span records — the caller hands both
        to :meth:`_deliver_telemetry` once the drain is rescheduled, so
        observer time lands in each span as its final stage.
        """
        observations: List[dict] = []
        spans: List[dict] = []
        batch = self._pending.take_batch(fp, self.max_batch)
        if batch:
            try:
                if batch[0].kind == "update":
                    observations, spans = self._serve_update(fp, batch[0])
                else:
                    observations, spans = self._serve(fp, batch)
            except BaseException as exc:  # propagate to every waiting caller
                self.obs.event(
                    "serve_error",
                    error=type(exc).__name__,
                    message=str(exc)[:200],
                    fingerprint=fp,
                    batch_size=len(batch),
                    kind=batch[0].kind,
                )
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)
        return self._pending.finish(fp), observations, spans

    def _deliver_telemetry(
        self, observations: List[dict], spans: List[dict]
    ) -> None:
        """Run the observer, then record spans with observer time filled."""
        observer_seconds = 0.0
        if observations and self._observer is not None:
            started = time.perf_counter()
            self._notify(observations)
            observer_seconds = time.perf_counter() - started
        for span in spans:
            span["stages"]["observer"] = observer_seconds
            self.obs.span(span.pop("trace"), **span)

    def _notify(self, observations: List[dict]) -> None:
        """Hand a served batch's observations to the observer, if any.

        A raising observer is no longer reduced to a bare counter bump:
        the counter still moves (``stats()["observer_errors"]``) but a
        structured event with the exception type and the dropped batch's
        identity goes through the event ring, so telemetry drops are
        diagnosable after the fact.
        """
        if not observations:
            return
        observer = self._observer
        if observer is None:
            return
        try:
            observer(observations)
        except Exception as exc:
            self.obs.observer_errors.inc()
            first = observations[0]
            self.obs.event(
                "observer_error",
                error=type(exc).__name__,
                message=str(exc)[:200],
                fingerprint=str(first.get("fingerprint", "")),
                batch_size=int(first.get("batch_size", len(observations))),
                observations=len(observations),
            )

    def _serve(self, fp: str, batch: List[PendingRequest]):
        """Run one coalesced batch through the fingerprint's engine.

        Returns ``(observations, spans)`` — the batch's telemetry
        observations (empty without an observer) and its span records
        (empty with observability disabled); the caller delivers both
        via :meth:`_deliver_telemetry` after rescheduling the drain.

        A batch of plain single-vector requests (``repetitions == 1``)
        takes the fast path: the operands are stacked into one
        ``(ncols, k)`` block served by a single ``engine.execute`` call
        — one kernel launch *and* one round of artefact lookups for the
        whole batch (engine counters tally lookups, the service tallies
        requests).  Batches containing 2-D operands or repeated
        workloads fall back to the engine's queued ``submit``/``flush``
        path, which handles mixed shapes and per-request repetitions.
        """
        observer = self._observer
        features = shadow = None
        promote_seconds = stream_seconds = 0.0
        serve_start = time.perf_counter()
        with self.engines.lease(fp) as engine:
            # the engine's stamp moves with its tuner (same shard lock),
            # so the recorded version is exactly the model that decides
            # this batch's format
            model_version = engine.model_version
            # likewise the epoch: updates advance it under this same
            # shard lock, so the whole batch serves one matrix version
            epoch = engine.epoch_of(fp)
            # a fresh engine (cache miss) first tries the disk tier: a
            # demoted container promotes back as mmap views instead of
            # paying the stats + tune + convert chain again
            if self.storage is not None and not engine.has_decision(fp):
                promote_seconds = self._promote_into(fp, engine)
            stream_before = engine.streaming["seconds"]
            kernel_start = time.perf_counter()
            if len(batch) > 1 and all(r.stackable for r in batch):
                results = self._serve_stacked(fp, engine, batch)
            else:
                for request in batch:
                    engine.submit(
                        request.matrix,
                        request.operand,
                        key=fp,
                        repetitions=request.repetitions,
                    )
                results = engine.flush()
            kernel_seconds = time.perf_counter() - kernel_start
            stream_seconds = engine.streaming["seconds"] - stream_before
            # telemetry artefacts are resolved while the engine is leased:
            # features come from the (warm) per-matrix cache, and every
            # shadow_every-th batch per matrix also resolves the rival
            # per-format timings (memoised, so repeat probes are free)
            if observer is not None:
                features = engine.features_for(batch[0].matrix, key=fp)
            if self.shadow_every > 0:
                # per-fp counters need no lock: same-fp drains are already
                # serialised by the shard lock held through this lease
                count = self._shadow_counts.get(fp, 0)
                self._shadow_counts[fp] = count + 1
                if count % self.shadow_every == 0:
                    shadow = engine.profile_formats(batch[0].matrix, key=fp)
                    self.obs.shadow_probes.inc()
        done_at = time.perf_counter()
        latencies = [done_at - r.enqueued_at for r in batch]
        o = self.obs
        o.requests_served.inc(len(batch))
        o.batches.inc()
        if len(batch) > 1:
            o.coalesced_batches.inc()
            o.coalesced_requests.inc(len(batch))
        for latency in latencies:
            o.latency.observe(latency)
        for request, engine_result, latency in zip(batch, results, latencies):
            request.future.set_result(
                ServiceResult(
                    y=engine_result.y,
                    seconds=engine_result.seconds,
                    overhead_seconds=engine_result.overhead_seconds,
                    format=engine_result.format,
                    fingerprint=engine_result.fingerprint,
                    from_cache=engine_result.from_cache,
                    batch_size=len(batch),
                    latency_seconds=latency,
                    model_version=model_version,
                    epoch=epoch,
                    backend=engine_result.backend,
                    trace_id=request.trace_id,
                )
            )
        # tier traffic rides the span timeline: a batch that promoted a
        # demoted container or streamed row panels shows those stages in
        # `repro top` next to validate/queue/kernel (absent otherwise,
        # so storage-free span schemas are unchanged)
        tier_stages: Dict[str, float] = {}
        if promote_seconds > 0.0:
            tier_stages["promote"] = promote_seconds
        if stream_seconds > 0.0:
            tier_stages["stream"] = stream_seconds
        spans = (
            [
                {
                    "trace": request.trace_id,
                    "kind": "spmv",
                    "fingerprint": fp,
                    "batch_size": len(batch),
                    "backend": engine_result.backend,
                    "stages": {
                        "validate": request.validate_seconds,
                        "queue": serve_start - request.enqueued_at,
                        # lease wait + batch assembly ahead of the kernel
                        "coalesce": kernel_start - serve_start,
                        "kernel": kernel_seconds,
                        **tier_stages,
                    },
                }
                for request, engine_result in zip(batch, results)
            ]
            if o.enabled
            else []
        )
        if observer is None:
            return [], spans
        observations = [
            {
                "fingerprint": fp,
                "format": engine_result.format,
                "backend": engine_result.backend,
                "seconds": engine_result.seconds,
                "latency_seconds": latency,
                "batch_size": len(batch),
                "model_version": model_version,
                "epoch": epoch,
                "features": features,
                # rival timings ride the probed batch's first request
                "shadow_times": shadow if i == 0 else None,
            }
            for i, (engine_result, latency) in enumerate(
                zip(results, latencies)
            )
        ]
        return observations, spans

    def _serve_update(self, fp: str, request: PendingRequest):
        """Apply one mutation request under the engine's shard lock.

        Returns ``(observations, spans)`` — the update's telemetry
        observation (``kind: "update"``, carrying the measured stat
        drift — the adaptive layer's matrix-evolution velocity signal)
        when an observer is installed, plus its span record.
        """
        serve_start = time.perf_counter()
        with self.engines.lease(fp) as engine:
            kernel_start = time.perf_counter()
            upd = engine.update(fp, request.delta, matrix=request.matrix)
        done_at = time.perf_counter()
        latency = done_at - request.enqueued_at
        o = self.obs
        o.requests_served.inc()
        o.updates_served.inc()
        o.batches.inc()
        o.latency.observe(latency)
        request.future.set_result(
            UpdateResult(
                fingerprint=fp,
                epoch=upd.epoch,
                carried_forward=upd.carried_forward,
                retuned=upd.retuned,
                format=upd.format,
                drift=upd.drift,
                nnz=upd.nnz,
                latency_seconds=latency,
                trace_id=request.trace_id,
            )
        )
        spans = (
            [
                {
                    "trace": request.trace_id,
                    "kind": "update",
                    "fingerprint": fp,
                    "batch_size": 1,
                    "stages": {
                        "validate": request.validate_seconds,
                        "queue": serve_start - request.enqueued_at,
                        "coalesce": kernel_start - serve_start,
                        "kernel": done_at - kernel_start,
                    },
                    "epoch": upd.epoch,
                    "retuned": upd.retuned,
                }
            ]
            if o.enabled
            else []
        )
        if self._observer is None:
            return [], spans
        observations = [
            {
                "kind": "update",
                "fingerprint": fp,
                "epoch": upd.epoch,
                "stat_drift": upd.drift,
                "retuned": upd.retuned,
                "carried_forward": upd.carried_forward,
                "nnz": upd.nnz,
                "latency_seconds": latency,
            }
        ]
        return observations, spans

    def _serve_stacked(self, fp: str, engine, batch: List[PendingRequest]):
        """Fast path: one stacked block, one ``execute``, one lookup round.

        Returns per-request :class:`~repro.runtime.engine.EngineResult`
        views into the block result, fanned out through
        :func:`~repro.service.coalesce.split_stacked` (shared with the
        distributed worker so the two tiers' per-request accounting can
        never diverge): each request's modelled ``seconds`` is its fair
        share of the batched call and the tuning/conversion overhead is
        attributed to the first request, as in
        :meth:`WorkloadEngine.flush`.  Only called for batches whose
        requests all have ``repetitions == 1`` (repeated workloads go
        through ``flush``, which threads repetitions into the
        per-request accounting).
        """
        X = np.stack([r.operand for r in batch], axis=1)
        block = engine.execute(batch[0].matrix, X, key=fp)
        return split_stacked(block, len(batch))

    # ------------------------------------------------------------------
    # storage tier: demote on evict, promote on return
    # ------------------------------------------------------------------
    def _promote_into(self, fp: str, engine: WorkloadEngine) -> float:
        """Re-attach a demoted container into a fresh engine, if resident.

        Runs under the fingerprint's shard lock (the caller holds the
        engine lease), so a promote can never race a demotion of the
        same key.  Restores the serving container (as read-only mmap
        views), the decided format + backend, and the persisted matrix
        statistics; returns the wall seconds spent (0.0 on a tier miss).
        """
        started = time.perf_counter()
        promoted = self.storage.promote(fp)
        if promoted is None:
            return 0.0
        meta = self.storage.decision(fp) or {}
        stats_dict = meta.get("stats")
        engine.adopt_prepared(
            fp,
            promoted,
            backend=meta.get("backend"),
            stats=(
                MatrixStats.from_dict(stats_dict)
                if isinstance(stats_dict, dict)
                else None
            ),
        )
        elapsed = time.perf_counter() - started
        self.obs.event(
            "tier_promote",
            fingerprint=fp,
            format=promoted.format,
            seconds=elapsed,
        )
        return elapsed

    def _demote_engine(self, key: str, engine: WorkloadEngine) -> None:
        """Spill an evicted engine's serving container to the disk tier.

        A container that is *already* an mmap view of a resident tier
        entry (a promoted engine being re-evicted) is not rewritten —
        the entry on disk is still its exact content.  Demotion failures
        are reported through the event ring and never break eviction.
        """
        try:
            payload = engine.demote_payload(key)
            if payload is None:
                return
            prepared, meta = payload
            if key in self.storage and mmap_backed(prepared):
                return
            entry = self.storage.demote(key, prepared, extra=meta)
            self.obs.event(
                "tier_demote",
                fingerprint=key,
                format=prepared.format,
                nbytes=entry.nbytes,
            )
        except Exception as exc:
            self.obs.event(
                "tier_demote_error",
                fingerprint=key,
                error=type(exc).__name__,
                message=str(exc)[:200],
            )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _retire_engine(self, key: str, engine: WorkloadEngine) -> None:
        """Fold an evicted engine's accounting into the service totals.

        With a disk tier configured, eviction is a *demotion*: the
        engine's converted serving container spills to the tier first
        (see :meth:`_demote_engine`), so a later request pays an mmap
        reattach instead of a re-conversion.

        Besides the hit/miss counters and modelled seconds, the engine's
        per-format profile timings are kept (:meth:`profile_times`), so
        a telemetry baseline built from shadow probes survives the
        eviction of the engine that measured it.  The retired map and
        the per-matrix shadow-cadence counters are bounded: an unbounded
        stream of distinct matrices must not leak memory in exactly the
        long-lived serving scenario the adaptive loop targets.
        """
        if self.storage is not None:
            self._demote_engine(key, engine)
        stats = engine.stats()
        profile = engine.profile_snapshot()
        # oldest-first cap on retired timings; 4x the engine capacity
        # keeps every plausibly-hot matrix while bounding the map
        cap = max(256, 4 * self.engines.capacity)
        with self._metrics_lock:
            self._shadow_counts.pop(key, None)  # re-probed on return
            fold_engine_stats(self._retired, stats)
            retired_profiles = self._retired["profile_times"]
            for fp, times in profile.items():
                retired_profiles.setdefault(fp, dict(times))
            while len(retired_profiles) > cap:
                retired_profiles.pop(next(iter(retired_profiles)))

    def _engines_total(self) -> Dict[str, object]:
        """Aggregate every engine ever owned: retired folds + live walks."""
        engines_total = empty_engine_totals()
        with self._metrics_lock:
            # extra retired-only keys (profile_times) are ignored by the fold
            fold_engine_stats(engines_total, self._retired)
        for engine in self.engines.values():
            fold_engine_stats(engines_total, engine.stats())
        return engines_total

    def _collect_gauges(self, registry) -> None:
        """Dump-time collector: publish engine/cache/backend gauges.

        This is how the :class:`WorkloadEngine` fleet and the
        :class:`ShardedEngineCache` register into the metrics registry
        without paying anything on the request path — the fold runs
        only when the registry is dumped (spiller tick, ``repro
        metrics``), never per request.
        """
        labels = {"tier": self.obs.tier}
        cache = self.engines.stats()
        for name in ("hits", "misses", "evictions", "size", "capacity"):
            registry.gauge(f"engine_cache_{name}", labels=labels).set(
                cache.get(name, 0)
            )
        engines_total = self._engines_total()
        registry.gauge("engine_requests", labels=labels).set(
            engines_total["requests_served"]
        )
        for kb, entry in engines_total["backends"].items():
            backend_labels = {**labels, "backend": kb}
            registry.gauge("backend_requests", labels=backend_labels).set(
                entry["requests"]
            )
            registry.gauge("backend_seconds", labels=backend_labels).set(
                entry["seconds"]
            )
        for name in ("epoch_advances", "carried_forward", "forced_retunes"):
            registry.gauge(
                "invalidations", labels={**labels, "reason": name}
            ).set(engines_total["invalidations"].get(name, 0))
        registry.gauge("profiled_matrices", labels=labels).set(
            len(self.profile_times())
        )
        if self.storage is not None:
            tier = self.storage.stats()
            for name in (
                "entries",
                "resident_bytes",
                "demotions",
                "promotions",
                "promote_misses",
                "tier_evictions",
                "bytes_written",
            ):
                registry.gauge(f"storage_{name}", labels=labels).set(
                    tier[name]
                )

    def stats(self) -> Dict[str, object]:
        """One dict with every service-level and engine-level counter.

        The common schema — request/batch/coalescing tallies,
        wall-latency aggregates (now with log-bucket p50/p99), the
        engine cache's hit/miss/eviction numbers (``engine_cache``) and
        the summed :meth:`WorkloadEngine.stats` of every engine the
        service has ever owned (``engines``) — is rendered by
        :func:`repro.obs.views.build_service_stats`, the same generator
        every serving tier uses, so the schema cannot drift between
        tiers.  This is the service's metrics endpoint — callers should
        consume it rather than poking individual attributes.
        """
        stats = build_service_stats(
            self.obs,
            space=self.space.name,
            workers=self.workers,
            max_batch=self.max_batch,
            model_info=self.model_info,
            engines_total=self._engines_total(),
            engine_cache=self.engines.stats(),
            profiled_matrices=len(self.profile_times()),
        )
        if self.storage is not None:
            # optional block: present only when a disk tier is configured,
            # so storage-free deployments keep the cross-tier parity schema
            stats["storage"] = self.storage.stats()
        return stats

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def session(self, name: str = "") -> "Session":
        """A new client :class:`Session` bound to this service."""
        return Session(self, name=name)

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down.

        With ``wait=True`` (the default) every already-submitted request
        is served before the method returns — in-flight drains finish on
        the pool, and any drain whose reschedule raced the shutdown
        falls back to serving inline (see :meth:`_schedule`); a final
        sweep here catches queues whose drain task never started.  With
        ``wait=False`` the pool is told to shut down without waiting and
        still-queued requests have their futures **cancelled**.
        """
        self._closed = True
        self._executor.shutdown(wait=wait)
        if wait:
            for fp in self._pending.keys():
                self._drain_inline(fp)
        else:
            for request in self._pending.pop_all():
                request.future.cancel()

    def __enter__(self) -> "TuningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Session:
    """A client handle on a :class:`TuningService`.

    Sessions are the programmatic API a client holds: they forward
    requests to the shared service (so all coalescing and caching is
    cross-session) while keeping per-client tallies — requests issued,
    wall latency observed — that a multi-client driver can report
    per client.  Sessions are cheap; create one per logical client.
    """

    def __init__(self, service: TuningService, *, name: str = "") -> None:
        self.service = service
        self.name = name
        #: Requests issued through this session (async and blocking).
        self.requests = 0
        #: Mutation requests issued through this session.
        self.updates = 0
        #: Blocking requests whose latency was observed (spmv/spmm).
        self.completed = 0
        self.latency_total = 0.0

    def submit(
        self,
        matrix: MatrixLike,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        repetitions: int = 1,
    ) -> "Future[ServiceResult]":
        """Asynchronous request; returns the service future."""
        self.requests += 1
        return self.service.submit(matrix, x, key=key, repetitions=repetitions)

    def spmv(
        self,
        matrix: MatrixLike,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        repetitions: int = 1,
    ) -> ServiceResult:
        """Blocking SpMV: ``y = A @ x`` through the service."""
        result = self.submit(
            matrix, x, key=key, repetitions=repetitions
        ).result()
        self.completed += 1
        self.latency_total += result.latency_seconds
        return result

    def update(
        self,
        matrix: MatrixLike,
        delta: MatrixDelta,
        *,
        key: Optional[str] = None,
    ) -> UpdateResult:
        """Blocking mutation: advance the matrix one epoch.

        The delta queues behind this key's already-submitted requests
        and is applied under the engine-cache shard lock, so SpMVs
        submitted before it serve the old epoch and SpMVs after it the
        new one; the returned :class:`UpdateResult` reports the epoch
        reached and whether the format decision was carried forward.
        """
        self.updates += 1
        return self.service.update(matrix, delta, key=key)

    def spmm(
        self,
        matrix: MatrixLike,
        X: np.ndarray,
        *,
        key: Optional[str] = None,
        repetitions: int = 1,
    ) -> ServiceResult:
        """Blocking block SpMV: ``Y = A @ X`` for an ``(ncols, k)`` block."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(
                f"spmm operand must be 2-D, got ndim={X.ndim}"
            )
        return self.spmv(matrix, X, key=key, repetitions=repetitions)

    @property
    def mean_latency(self) -> float:
        """Mean wall latency of this session's blocking requests.

        Async :meth:`submit` futures are not folded in — the session
        never observes their completion — so the divisor is the count
        of blocking :meth:`spmv`/:meth:`spmm` calls only.
        """
        return self.latency_total / self.completed if self.completed else 0.0
