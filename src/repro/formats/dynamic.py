"""The ``DynamicMatrix`` runtime-switching container (Morpheus's core idea).

A :class:`DynamicMatrix` wraps exactly one concrete format at a time and can
:meth:`switch` to any other format at runtime, mirroring the paper's
Section II-C: a single "abstract" matrix type whose active format is a
runtime property, so algorithms (SpMV) and tuners are written once against
the dynamic type.

The container keeps a switch history so experiments can audit how many
conversions a tuning policy triggered.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import FormatError
from repro.formats.base import FORMAT_IDS, SparseMatrix, format_name
from repro.formats.convert import convert

__all__ = ["DynamicMatrix"]


class DynamicMatrix:
    """A sparse matrix whose storage format can change at runtime.

    Parameters
    ----------
    matrix:
        The initial concrete container (any of the six formats).

    Examples
    --------
    >>> from repro.formats import COOMatrix, DynamicMatrix
    >>> import numpy as np
    >>> m = DynamicMatrix(COOMatrix.from_dense(np.eye(3)))
    >>> m.active_format
    'COO'
    >>> m.switch("CSR").active_format
    'CSR'
    """

    def __init__(self, matrix: SparseMatrix) -> None:
        if not isinstance(matrix, SparseMatrix):
            raise FormatError(
                f"DynamicMatrix wraps SparseMatrix instances, got {type(matrix)}"
            )
        self._matrix = matrix
        self._history: List[str] = [matrix.format]

    # ------------------------------------------------------------------
    @property
    def concrete(self) -> SparseMatrix:
        """The currently active concrete container."""
        return self._matrix

    @property
    def active_format(self) -> str:
        """Canonical name of the active format."""
        return self._matrix.format

    @property
    def active_format_id(self) -> int:
        """Integer id of the active format (the ML target space)."""
        return self._matrix.format_id

    @property
    def shape(self) -> tuple[int, int]:
        return self._matrix.shape

    @property
    def nrows(self) -> int:
        return self._matrix.nrows

    @property
    def ncols(self) -> int:
        return self._matrix.ncols

    @property
    def nnz(self) -> int:
        return self._matrix.nnz

    @property
    def switch_history(self) -> tuple[str, ...]:
        """Formats the matrix has been stored in, oldest first."""
        return tuple(self._history)

    @property
    def n_switches(self) -> int:
        """Number of conversions performed (excludes the initial format)."""
        return len(self._history) - 1

    # ------------------------------------------------------------------
    def switch(self, target: str | int, **params: object) -> "DynamicMatrix":
        """Switch the active storage format in place; returns ``self``.

        *target* may be a format name or id.  Switching to the current
        format is a no-op (no history entry).
        """
        name = format_name(target) if isinstance(target, int) else target.upper()
        if name not in FORMAT_IDS:
            raise FormatError(f"unknown target format {target!r}")
        if name == self._matrix.format and not params:
            return self
        self._matrix = convert(self._matrix, name, **params)
        self._history.append(name)
        return self

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` with the active format's kernel."""
        return self._matrix.spmv(x)

    def row_nnz(self) -> np.ndarray:
        return self._matrix.row_nnz()

    def diagonal_nnz(self) -> np.ndarray:
        return self._matrix.diagonal_nnz()

    def nbytes(self) -> int:
        return self._matrix.nbytes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DynamicMatrix {self.nrows}x{self.ncols} nnz={self.nnz} "
            f"active={self.active_format} switches={self.n_switches}>"
        )
