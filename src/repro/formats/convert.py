"""Conversions between the six storage formats.

All conversions route through canonical COO (the interchange hub), which is
exact for every pair and keeps the conversion graph a star.  The relative
*cost weights* exposed here feed the run-first tuner's overhead model: a
run-first tuner must pay one conversion per candidate format, which is
precisely why the paper replaces it with ML prediction.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConversionError
from repro.formats.base import SparseMatrix, format_class

__all__ = ["convert", "convert_cost_weight"]

#: Relative cost of building each format from COO, in units of "touches per
#: stored entry".  DIA/ELL write padded dense blocks, hence the extra factor.
_CONVERSION_WEIGHTS: Dict[str, float] = {
    "COO": 1.0,
    "CSR": 2.0,   # counting sort of rows + pointer scan
    "DIA": 4.0,   # offset discovery + padded block fill
    "ELL": 3.5,   # row-width discovery + padded block fill
    "HYB": 4.5,   # split decision + ELL fill + COO spill
    "HDC": 5.0,   # diagonal histogram + DIA fill + CSR build of the rest
}


def convert(
    matrix: SparseMatrix, target: str, **params: object
) -> SparseMatrix:
    """Convert *matrix* to the *target* format (case-insensitive name).

    Format-specific split parameters (HYB's ``k``, HDC's ``nd``) can be
    passed through ``params``; unknown parameters are ignored by formats
    that do not use them.

    Converting to the format the matrix already has returns the same object
    (containers are immutable, so sharing is safe) unless parameters are
    supplied, in which case the container is rebuilt.
    """
    key = target.upper()
    cls = format_class(key)
    if matrix.format == key and not params:
        return matrix
    try:
        return cls.from_coo(matrix.to_coo(), **params)
    except ConversionError:
        raise
    except Exception as exc:  # pragma: no cover - defensive wrap
        raise ConversionError(
            f"converting {matrix.format} -> {key} failed: {exc}"
        ) from exc


def convert_cost_weight(source: str, target: str) -> float:
    """Relative cost of converting *source* -> *target*.

    The star topology means cost = (read source as COO) + (build target),
    approximated by the target build weight plus one source traversal.
    Same-format "conversion" is free.
    """
    src = source.upper()
    dst = target.upper()
    for name in (src, dst):
        if name not in _CONVERSION_WEIGHTS:
            raise ConversionError(f"unknown format {name!r} in cost query")
    if src == dst:
        return 0.0
    return 1.0 + _CONVERSION_WEIGHTS[dst]
