"""ELLPACK (ELL) storage format.

ELL assumes at most ``K`` non-zeros per row and stores two dense
``(nrows, K)`` arrays: values and column indices, padding short rows (paper
Section II-B).  Padded slots carry the sentinel column index ``-1`` and a
zero value, so kernels and statistics can mask them exactly.

ELL shines when row lengths are uniform (structured / semi-structured
matrices) and degrades through padding when ``max(row_nnz)`` far exceeds the
mean — exactly the signal the ``max(NNZ)`` / ``sigma_NNZ`` features capture.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.utils.validation import check_array_2d

__all__ = ["ELLMatrix", "PAD_COL"]

#: Sentinel column index marking padded slots.
PAD_COL = -1


@register_format
class ELLMatrix(SparseMatrix):
    """ELLPACK sparse matrix with fixed row width ``K``.

    Parameters
    ----------
    nrows, ncols:
        Matrix shape.
    col_idx:
        ``(nrows, K)`` int64 array; entries are column indices or
        :data:`PAD_COL` for padding.  Valid entries precede padding in
        each row.
    data:
        ``(nrows, K)`` float64 array; padded slots hold ``0.0``.
    """

    format = "ELL"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        col_idx: np.ndarray,
        data: np.ndarray,
    ) -> None:
        super().__init__(nrows, ncols)
        col_idx = check_array_2d(col_idx, name="col_idx", dtype=np.int64)
        data = check_array_2d(data, name="data", dtype=np.float64)
        if col_idx.shape != data.shape:
            raise ValidationError(
                f"col_idx shape {col_idx.shape} != data shape {data.shape}"
            )
        if col_idx.shape[0] != nrows:
            raise ValidationError(
                f"col_idx must have nrows={nrows} rows, got {col_idx.shape[0]}"
            )
        valid = col_idx != PAD_COL
        if valid.any():
            cols = col_idx[valid]
            if cols.min() < 0 or cols.max() >= ncols:
                raise ValidationError(
                    f"column indices must lie in [0, {ncols}) or be {PAD_COL}"
                )
        # normalise padded slots to exactly (PAD_COL, 0.0); skip the
        # copy when padding is already clean so a read-only mmap buffer
        # re-attached from the disk tier stays zero-copy
        if not valid.all() and np.any(data[~valid]):
            data = np.where(valid, data, 0.0)
        self.col_idx = col_idx
        self.data = data
        self._valid = valid
        self.col_idx.setflags(write=False)
        self.data.setflags(write=False)
        self._valid.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Row width ``K`` (maximum entries stored per row)."""
        return int(self.col_idx.shape[1])

    @property
    def nnz(self) -> int:
        return int(self._valid.sum())

    def padded_size(self) -> int:
        """Total stored slots ``nrows * K`` including padding."""
        return int(self.data.size)

    def nbytes(self) -> int:
        return int(self.col_idx.nbytes + self.data.nbytes)

    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        rows = np.broadcast_to(
            np.arange(self.nrows, dtype=np.int64)[:, None], self.col_idx.shape
        )
        mask = self._valid
        return COOMatrix(
            self.nrows,
            self.ncols,
            rows[mask],
            self.col_idx[mask],
            self.data[mask],
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, **params: object) -> "ELLMatrix":
        row_counts = coo.row_nnz()
        width = int(row_counts.max()) if row_counts.size else 0
        col_idx = np.full((coo.nrows, max(width, 0)), PAD_COL, dtype=np.int64)
        data = np.zeros((coo.nrows, max(width, 0)), dtype=np.float64)
        if coo.nnz:
            # canonical COO is row-major sorted: position within row is the
            # running index since the row started
            starts = np.zeros(coo.nrows + 1, dtype=np.int64)
            np.cumsum(row_counts, out=starts[1:])
            slot = np.arange(coo.nnz, dtype=np.int64) - starts[coo.row]
            col_idx[coo.row, slot] = coo.col
            data[coo.row, slot] = coo.data
        return cls(coo.nrows, coo.ncols, col_idx, data)

    # ------------------------------------------------------------------
    def row_nnz(self) -> np.ndarray:
        return self._valid.sum(axis=1).astype(np.int64)

    def diagonal_nnz(self) -> np.ndarray:
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int64)
        rows = np.broadcast_to(
            np.arange(self.nrows, dtype=np.int64)[:, None], self.col_idx.shape
        )
        mask = self._valid
        shifted = self.col_idx[mask] - rows[mask] + (self.nrows - 1)
        counts = np.bincount(shifted, minlength=self.nrows + self.ncols - 1)
        return counts[counts > 0].astype(np.int64)
