"""Compressed Sparse Row (CSR) storage format.

CSR compresses the row indices of COO into a length ``nrows + 1`` pointer
array whose consecutive differences delimit each row's slice of the column
index and value arrays.  It is the paper's general-purpose default and the
baseline every speedup in the evaluation is measured against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.utils.validation import (
    as_index_array,
    as_value_array,
    check_index_bounds,
)

__all__ = ["CSRMatrix"]


@register_format
class CSRMatrix(SparseMatrix):
    """CSR sparse matrix with ``row_ptr`` / ``col_idx`` / ``data`` arrays.

    Invariants enforced at construction: ``row_ptr`` is non-decreasing,
    starts at 0, ends at ``nnz``; every column index is in range.  Column
    indices within a row are stored in ascending order when built through
    :meth:`from_coo` (canonical COO is row-major sorted), but ascending
    order is *not* a class invariant — kernels never rely on it.
    """

    format = "CSR"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        data: np.ndarray,
    ) -> None:
        super().__init__(nrows, ncols)
        row_ptr = as_index_array(row_ptr, name="row_ptr")
        col_idx = as_index_array(col_idx, name="col_idx")
        data = as_value_array(data, name="data")
        if row_ptr.shape[0] != nrows + 1:
            raise ValidationError(
                f"row_ptr must have length nrows+1={nrows + 1}, "
                f"got {row_ptr.shape[0]}"
            )
        if col_idx.shape != data.shape:
            raise ValidationError(
                "col_idx and data must have equal length, got "
                f"{col_idx.shape[0]} vs {data.shape[0]}"
            )
        if row_ptr[0] != 0 or row_ptr[-1] != data.shape[0]:
            raise ValidationError(
                "row_ptr must start at 0 and end at nnz="
                f"{data.shape[0]}, got [{row_ptr[0]}, {row_ptr[-1]}]"
            )
        if np.any(np.diff(row_ptr) < 0):
            raise ValidationError("row_ptr must be non-decreasing")
        check_index_bounds(col_idx, ncols, name="col_idx")
        self.row_ptr = row_ptr
        self.col_idx = col_idx
        self.data = data
        for arr in (self.row_ptr, self.col_idx, self.data):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def nbytes(self) -> int:
        return int(self.row_ptr.nbytes + self.col_idx.nbytes + self.data.nbytes)

    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.row_ptr)
        )
        return COOMatrix(
            self.nrows, self.ncols, rows, self.col_idx.copy(), self.data.copy()
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, **params: object) -> "CSRMatrix":
        counts = np.bincount(coo.row, minlength=coo.nrows)
        row_ptr = np.zeros(coo.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        # canonical COO is already row-major sorted, so col/data copy across
        return cls(coo.nrows, coo.ncols, row_ptr, coo.col.copy(), coo.data.copy())

    # ------------------------------------------------------------------
    def row_nnz(self) -> np.ndarray:
        return np.diff(self.row_ptr).astype(np.int64)

    def diagonal_nnz(self) -> np.ndarray:
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int64)
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.row_ptr)
        )
        shifted = self.col_idx - rows + (self.nrows - 1)
        counts = np.bincount(shifted, minlength=self.nrows + self.ncols - 1)
        return counts[counts > 0].astype(np.int64)

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(col_idx, data)`` views of row *i* (no copies)."""
        lo, hi = int(self.row_ptr[i]), int(self.row_ptr[i + 1])
        return self.col_idx[lo:hi], self.data[lo:hi]
