"""Hybrid DIA/CSR (HDC) storage format.

HDC uses a threshold ``ND`` (paper Section II-B): diagonals whose non-zero
count is at least ``ND`` are "true" diagonals and are stored in a DIA block;
every remaining entry goes into a CSR block.  The format captures
banded-plus-noise matrices — dense bands run at DIA speed while stray
entries avoid blowing up the diagonal count.

The default threshold is ``HDC_DIAG_FRACTION * min(nrows, ncols)``: a
diagonal must be reasonably full before dedicated DIA storage pays off.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix

__all__ = ["HDCMatrix", "default_hdc_threshold", "HDC_DIAG_FRACTION"]

#: Fraction of the main-diagonal length a diagonal must fill to be "true".
HDC_DIAG_FRACTION = 0.5


def default_hdc_threshold(nrows: int, ncols: int) -> int:
    """Default true-diagonal occupancy threshold ``ND``."""
    return max(1, int(HDC_DIAG_FRACTION * min(nrows, ncols)))


@register_format
class HDCMatrix(SparseMatrix):
    """Hybrid sparse matrix: a DIA block for true diagonals plus CSR rest."""

    format = "HDC"

    def __init__(self, dia: DIAMatrix, csr: CSRMatrix) -> None:
        if dia.shape != csr.shape:
            raise ValidationError(
                f"DIA part {dia.shape} and CSR part {csr.shape} disagree"
            )
        super().__init__(dia.nrows, dia.ncols)
        self.dia = dia
        self.csr = csr

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self.dia.nnz + self.csr.nnz

    @property
    def dia_nnz(self) -> int:
        """Entries stored in the diagonal block."""
        return self.dia.nnz

    @property
    def csr_nnz(self) -> int:
        """Entries stored in the irregular (CSR) block."""
        return self.csr.nnz

    @property
    def ntrue_diags(self) -> int:
        """Number of diagonals promoted to the DIA block."""
        return self.dia.ndiags

    def nbytes(self) -> int:
        return self.dia.nbytes() + self.csr.nbytes()

    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        a = self.dia.to_coo()
        b = self.csr.to_coo()
        return COOMatrix(
            self.nrows,
            self.ncols,
            np.concatenate([a.row, b.row]),
            np.concatenate([a.col, b.col]),
            np.concatenate([a.data, b.data]),
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, **params: object) -> "HDCMatrix":
        """Build from COO, promoting diagonals with ``>= nd`` non-zeros."""
        nd = params.get("nd")
        if nd is None:
            nd = default_hdc_threshold(coo.nrows, coo.ncols)
        nd = int(nd)
        if nd < 1:
            raise ValidationError(f"HDC threshold nd must be >= 1, got {nd}")
        if coo.nnz == 0:
            dia = DIAMatrix(
                coo.nrows,
                coo.ncols,
                np.zeros(0, dtype=np.int64),
                np.zeros((0, coo.ncols)),
            )
            return cls(dia, CSRMatrix.from_coo(coo))
        entry_offsets = coo.col - coo.row
        shift = coo.nrows - 1
        counts = np.bincount(
            entry_offsets + shift, minlength=coo.nrows + coo.ncols - 1
        )
        true_mask_per_entry = counts[entry_offsets + shift] >= nd
        true_offsets = np.flatnonzero(counts >= nd).astype(np.int64) - shift
        dia_data = np.zeros((true_offsets.shape[0], coo.ncols), dtype=np.float64)
        if true_offsets.size:
            k = np.searchsorted(true_offsets, entry_offsets[true_mask_per_entry])
            dia_data[k, coo.col[true_mask_per_entry]] = coo.data[true_mask_per_entry]
        dia = DIAMatrix(coo.nrows, coo.ncols, true_offsets, dia_data)
        rest = COOMatrix(
            coo.nrows,
            coo.ncols,
            coo.row[~true_mask_per_entry],
            coo.col[~true_mask_per_entry],
            coo.data[~true_mask_per_entry],
            canonical=True,
        )
        return cls(dia, CSRMatrix.from_coo(rest))

    # ------------------------------------------------------------------
    def row_nnz(self) -> np.ndarray:
        return self.dia.row_nnz() + self.csr.row_nnz()

    def diagonal_nnz(self) -> np.ndarray:
        return self.to_coo().diagonal_nnz()
