"""Abstract base class and registry for sparse matrix storage formats.

Every concrete format implements the small :class:`SparseMatrix` interface:
construction from / conversion to COO (the interchange hub), a serial
reference SpMV, an exact storage-byte count, and the per-row / per-diagonal
statistics the Oracle feature extractor needs *without* leaving the format
(paper Section VI-C: online feature extraction must not convert the matrix).
"""

from __future__ import annotations

import abc
import itertools
from typing import TYPE_CHECKING, Dict, Optional, Type

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.utils.validation import check_vector_length

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.formats.coo import COOMatrix
    from repro.formats.delta import MatrixDelta

#: Process-wide source of stable matrix identities (see
#: :attr:`SparseMatrix.stable_id`).
_STABLE_IDS = itertools.count()

__all__ = [
    "FORMAT_IDS",
    "FORMAT_NAMES",
    "SparseMatrix",
    "format_id",
    "format_name",
    "register_format",
    "format_class",
]

#: Paper enumeration order (Eq. 1): these ids are the ML targets.
FORMAT_IDS: Dict[str, int] = {
    "COO": 0,
    "CSR": 1,
    "DIA": 2,
    "ELL": 3,
    "HYB": 4,
    "HDC": 5,
}

#: Inverse mapping id -> canonical name.
FORMAT_NAMES: Dict[int, str] = {v: k for k, v in FORMAT_IDS.items()}

_REGISTRY: Dict[str, Type["SparseMatrix"]] = {}

#: Lazily resolved kernel dispatcher (import cycle guard: the runtime
#: registry imports the format modules to know their array layouts).
_DISPATCH = None


def _kernel_dispatch(operation: str, matrix: "SparseMatrix", operand):
    global _DISPATCH
    if _DISPATCH is None:
        from repro.runtime.registry import dispatch

        _DISPATCH = dispatch
    return _DISPATCH(operation, matrix, operand)


def format_id(name: str) -> int:
    """Return the integer id for a format *name* (case-insensitive)."""
    key = name.upper()
    if key not in FORMAT_IDS:
        raise FormatError(
            f"unknown format {name!r}; expected one of {sorted(FORMAT_IDS)}"
        )
    return FORMAT_IDS[key]


def format_name(fid: int) -> str:
    """Return the canonical name for a format id."""
    try:
        return FORMAT_NAMES[int(fid)]
    except (KeyError, ValueError) as exc:
        raise FormatError(f"unknown format id {fid!r}") from exc


def register_format(cls: Type["SparseMatrix"]) -> Type["SparseMatrix"]:
    """Class decorator: add *cls* to the name -> class registry."""
    key = cls.format.upper()
    if key not in FORMAT_IDS:
        raise FormatError(f"cannot register unknown format {key!r}")
    _REGISTRY[key] = cls
    return cls


def format_class(name: str) -> Type["SparseMatrix"]:
    """Look up the container class for a format name."""
    key = name.upper()
    if key not in _REGISTRY:
        raise FormatError(f"no registered container for format {name!r}")
    return _REGISTRY[key]


class SparseMatrix(abc.ABC):
    """Common interface of the six storage formats.

    Concrete subclasses store their arrays as read-only attributes and are
    immutable after construction: conversions always build new containers.
    """

    #: Canonical format name, overridden per subclass ("COO", "CSR", ...).
    format: str = "?"

    def __init__(self, nrows: int, ncols: int) -> None:
        if nrows < 0 or ncols < 0:
            raise ShapeError(f"matrix shape must be non-negative, got {nrows}x{ncols}")
        self._nrows = int(nrows)
        self._ncols = int(ncols)
        # epoch identity: assigned lazily (stable_id) or inherited from a
        # predecessor by with_updates(); plain containers stay unstamped
        # so content-hash caching keeps working unchanged for them
        self._stable_id: Optional[str] = None
        self._epoch = 0
        self._successors = 0

    # ------------------------------------------------------------------
    # shape / metadata
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        """Number of rows (paper feature ``M``)."""
        return self._nrows

    @property
    def ncols(self) -> int:
        """Number of columns (paper feature ``N``)."""
        return self._ncols

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrows, ncols)``."""
        return (self._nrows, self._ncols)

    @property
    def format_id(self) -> int:
        """Integer id of this container's format."""
        return FORMAT_IDS[self.format]

    # ------------------------------------------------------------------
    # epoch identity (streaming workloads, see repro.runtime.epoch)
    # ------------------------------------------------------------------
    @property
    def has_identity(self) -> bool:
        """Has a stable id been assigned (explicitly or via mutation)?"""
        return self._stable_id is not None

    @property
    def stable_id(self) -> str:
        """Process-stable identity shared by every epoch of this matrix.

        Assigned lazily on first access; :meth:`with_updates` successors
        inherit it, so ``(stable_id, epoch)`` identifies one version of
        one logical matrix — the cache key the runtime layer uses in
        place of content fingerprints for mutating matrices.
        """
        if self._stable_id is None:
            self._stable_id = f"mx{next(_STABLE_IDS):08d}"
        return self._stable_id

    @property
    def epoch(self) -> int:
        """Mutation generation: 0 at construction, +1 per ``with_updates``."""
        return self._epoch

    def with_updates(
        self, delta: "MatrixDelta", *, format: Optional[str] = None
    ) -> "SparseMatrix":
        """Apply *delta* and return an epoch-stamped successor container.

        The receiver is untouched (containers stay immutable): the delta
        is merged into the canonical COO view, converted to *format*
        (default: the receiver's own format) and the fresh container is
        stamped with the same :attr:`stable_id` and ``epoch + 1``.

        Mutation histories may *branch*: only the receiver's first
        successor inherits the stable id unchanged; every further
        successor forks it (``<id>/b1``, ``<id>/b2``, ...), so two
        different successors of one base can never share an epoch cache
        key.
        """
        from repro.formats.convert import convert
        from repro.formats.delta import apply_delta

        merged, _ = apply_delta(self.to_coo(), delta)
        successor = convert(merged, format or self.format)
        if successor is self:  # empty delta on a COO base: copy, don't alias
            from repro.formats.coo import COOMatrix

            successor = COOMatrix(
                self.nrows, self.ncols,
                merged.row, merged.col, merged.data,
                canonical=True,
            )
        branch = self._successors
        self._successors += 1
        successor._stable_id = (  # assigns ours if unset
            self.stable_id if branch == 0
            else f"{self.stable_id}/b{branch}"
        )
        successor._epoch = self._epoch + 1
        return successor

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored non-zero entries (excluding padding)."""

    @abc.abstractmethod
    def nbytes(self) -> int:
        """Exact bytes occupied by the format's arrays, *including* padding.

        This drives the memory-traffic term of the performance models.
        """

    # ------------------------------------------------------------------
    # conversion hub
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def to_coo(self) -> "COOMatrix":
        """Convert to canonical (row-major sorted, deduplicated) COO."""

    @classmethod
    @abc.abstractmethod
    def from_coo(cls, coo: "COOMatrix", **params: object) -> "SparseMatrix":
        """Build this format from a canonical COO matrix."""

    # ------------------------------------------------------------------
    # reference kernel
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Serial reference ``y = A @ x`` used by all backends for values.

        Validates the operand, then dispatches through the runtime kernel
        registry (:mod:`repro.runtime.registry`) — the single source of
        truth for per-format kernels.
        """
        vec = self._check_spmv_operand(x)
        return _kernel_dispatch("spmv", self, vec)

    def _check_spmv_operand(self, x: np.ndarray) -> np.ndarray:
        """Validate and coerce the SpMV input vector."""
        vec = np.ascontiguousarray(x, dtype=np.float64)
        if vec.ndim != 1:
            raise ShapeError(f"SpMV operand must be 1-D, got ndim={vec.ndim}")
        check_vector_length(vec, self._ncols, name="x")
        return vec

    # ------------------------------------------------------------------
    # statistics for online feature extraction (paper Section VI-C)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def row_nnz(self) -> np.ndarray:
        """Length-``nrows`` int64 array with the non-zero count of each row."""

    @abc.abstractmethod
    def diagonal_nnz(self) -> np.ndarray:
        """Non-zero count per occupied diagonal.

        The returned array has one entry per diagonal that contains at least
        one non-zero; its length is the paper's ``ND`` feature and the counts
        feed ``NTD`` (true diagonals above a threshold).
        """

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise the full dense matrix (tests / tiny matrices only)."""
        coo = self.to_coo()
        dense = np.zeros(self.shape, dtype=np.float64)
        # canonical COO is deduplicated, so plain assignment is safe
        dense[coo.row, coo.col] = coo.data
        return dense

    def diagonal(self) -> np.ndarray:
        """The main diagonal as a dense length-``min(nrows, ncols)`` vector.

        Needed by diagonal preconditioners (Jacobi) and the HDC split
        diagnostics; implemented via the COO view, overridable where a
        format can answer faster.
        """
        coo = self.to_coo()
        k = min(self.nrows, self.ncols)
        diag = np.zeros(k, dtype=np.float64)
        on_diag = coo.row == coo.col
        diag[coo.row[on_diag]] = coo.data[on_diag]
        return diag

    def to_scipy(self):
        """Return an equivalent :class:`scipy.sparse.coo_matrix` (test oracle)."""
        import scipy.sparse as sp

        coo = self.to_coo()
        return sp.coo_matrix((coo.data, (coo.row, coo.col)), shape=self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.nrows}x{self.ncols} "
            f"nnz={self.nnz} format={self.format}>"
        )
