"""Coordinate (COO) storage format.

COO stores one ``(row, col, value)`` triplet per non-zero in three parallel
arrays.  The paper (Section II-B) treats it as a general-purpose format with
no ordering guarantee; our *canonical* COO — produced by
:meth:`COOMatrix.canonical` and by every ``to_coo`` — is row-major sorted
with duplicate coordinates summed, which makes it a convenient interchange
hub for the other five formats.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix, register_format
from repro.utils.validation import (
    as_index_array,
    as_value_array,
    check_index_bounds,
)

__all__ = ["COOMatrix"]


@register_format
class COOMatrix(SparseMatrix):
    """Coordinate-format sparse matrix.

    Parameters
    ----------
    nrows, ncols:
        Matrix shape.
    row, col, data:
        Parallel arrays of equal length: row index, column index and value of
        each stored entry.
    canonical:
        When ``True`` the caller asserts the triplets are already row-major
        sorted and duplicate-free, skipping the normalisation pass.
    """

    format = "COO"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        row: np.ndarray,
        col: np.ndarray,
        data: np.ndarray,
        *,
        canonical: bool = False,
    ) -> None:
        super().__init__(nrows, ncols)
        row = as_index_array(row, name="row")
        col = as_index_array(col, name="col")
        data = as_value_array(data, name="data")
        if not (row.shape == col.shape == data.shape):
            raise ValidationError(
                "row, col and data must have equal length, got "
                f"{row.shape[0]}, {col.shape[0]}, {data.shape[0]}"
            )
        check_index_bounds(row, nrows, name="row")
        check_index_bounds(col, ncols, name="col")
        if not canonical:
            row, col, data = _canonicalise(nrows, ncols, row, col, data)
        self.row = row
        self.col = col
        self.data = data
        for arr in (self.row, self.col, self.data):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def nbytes(self) -> int:
        return int(self.row.nbytes + self.col.nbytes + self.data.nbytes)

    # ------------------------------------------------------------------
    def to_coo(self) -> "COOMatrix":
        return self

    @classmethod
    def from_coo(cls, coo: "COOMatrix", **params: object) -> "COOMatrix":
        return coo

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a dense 2-D array, storing every non-zero entry."""
        arr = np.ascontiguousarray(dense, dtype=np.float64)
        if arr.ndim != 2:
            raise ValidationError(f"dense input must be 2-D, got ndim={arr.ndim}")
        row, col = np.nonzero(arr)
        return cls(
            arr.shape[0],
            arr.shape[1],
            row.astype(np.int64),
            col.astype(np.int64),
            arr[row, col],
            canonical=True,
        )

    # ------------------------------------------------------------------
    def row_nnz(self) -> np.ndarray:
        return np.bincount(self.row, minlength=self.nrows).astype(np.int64)

    def diagonal_nnz(self) -> np.ndarray:
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int64)
        offsets = self.col - self.row  # in [-(nrows-1), ncols-1]
        shifted = offsets + (self.nrows - 1)
        counts = np.bincount(shifted, minlength=self.nrows + self.ncols - 1)
        return counts[counts > 0].astype(np.int64)

    def diagonal_offsets(self) -> np.ndarray:
        """Sorted offsets (col - row) of the occupied diagonals."""
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int64)
        return np.unique(self.col - self.row)

    # ------------------------------------------------------------------
    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (canonicalised)."""
        return COOMatrix(self.ncols, self.nrows, self.col, self.row, self.data)


def _canonicalise(
    nrows: int,
    ncols: int,
    row: np.ndarray,
    col: np.ndarray,
    data: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort triplets row-major and sum duplicate coordinates."""
    if row.size == 0:
        return row, col, data
    # linearised key fits in int64 for any matrix we can hold in memory
    key = row * np.int64(ncols) + col
    order = np.argsort(key, kind="stable")
    key = key[order]
    data = data[order]
    uniq_mask = np.empty(key.shape, dtype=bool)
    uniq_mask[0] = True
    np.not_equal(key[1:], key[:-1], out=uniq_mask[1:])
    if uniq_mask.all():
        return row[order], col[order], data
    # sum runs of duplicates via segment ids
    seg = np.cumsum(uniq_mask) - 1
    summed = np.bincount(seg, weights=data)
    key_u = key[uniq_mask]
    return (key_u // ncols).astype(np.int64), (key_u % ncols).astype(np.int64), summed
