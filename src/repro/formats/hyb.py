"""Hybrid ELL/COO (HYB) storage format.

HYB splits each row at a width parameter ``K`` (the paper's ``K_H``): the
first ``K`` entries of every row live in an ELL block, any surplus spills
into a COO block (paper Section II-B).  This bounds ELL padding while
keeping the bulk of the matrix in the regular, vector-friendly part.

The default ``K`` follows the Bell & Garland heuristic used by CUSP: the
largest width such that at least ``HYB_ROW_FRACTION`` of the *non-empty*
rows are fully covered — for near-uniform matrices this stores everything
in ELL, for power-law matrices it clips the heavy tail into COO.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.formats.ell import ELLMatrix

__all__ = ["HYBMatrix", "default_hyb_split", "HYB_ROW_FRACTION"]

#: Fraction of non-empty rows that must be fully covered by the ELL block.
HYB_ROW_FRACTION = 2.0 / 3.0


def default_hyb_split(row_counts: np.ndarray) -> int:
    """Bell–Garland-style default for the ELL width ``K``.

    Returns the largest ``K`` such that at least :data:`HYB_ROW_FRACTION` of
    non-empty rows have ``row_nnz <= K``; 0 for an empty matrix.
    """
    nonzero = row_counts[row_counts > 0]
    if nonzero.size == 0:
        return 0
    # K = smallest width covering the target fraction of rows entirely
    return int(np.quantile(nonzero, HYB_ROW_FRACTION, method="inverted_cdf"))


@register_format
class HYBMatrix(SparseMatrix):
    """Hybrid sparse matrix: an ELL block plus a COO overflow block.

    Parameters
    ----------
    ell:
        The regular part; its width is the split parameter ``K``.
    coo:
        The overflow part holding entries of rows longer than ``K``.
    """

    format = "HYB"

    def __init__(self, ell: ELLMatrix, coo: COOMatrix) -> None:
        if ell.shape != coo.shape:
            raise ValidationError(
                f"ELL part {ell.shape} and COO part {coo.shape} disagree"
            )
        super().__init__(ell.nrows, ell.ncols)
        self.ell = ell
        self.coo = coo

    # ------------------------------------------------------------------
    @property
    def split_k(self) -> int:
        """The ELL width ``K`` (paper parameter ``K_H``)."""
        return self.ell.width

    @property
    def nnz(self) -> int:
        return self.ell.nnz + self.coo.nnz

    @property
    def ell_nnz(self) -> int:
        """Entries stored in the regular (ELL) block."""
        return self.ell.nnz

    @property
    def coo_nnz(self) -> int:
        """Entries stored in the overflow (COO) block."""
        return self.coo.nnz

    def nbytes(self) -> int:
        return self.ell.nbytes() + self.coo.nbytes()

    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        ell_coo = self.ell.to_coo()
        return COOMatrix(
            self.nrows,
            self.ncols,
            np.concatenate([ell_coo.row, self.coo.row]),
            np.concatenate([ell_coo.col, self.coo.col]),
            np.concatenate([ell_coo.data, self.coo.data]),
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, **params: object) -> "HYBMatrix":
        """Build from COO, splitting rows at ``k`` (default: heuristic)."""
        row_counts = coo.row_nnz()
        k = params.get("k")
        if k is None:
            k = default_hyb_split(row_counts)
        k = int(k)
        if k < 0:
            raise ValidationError(f"HYB split k must be non-negative, got {k}")
        if coo.nnz == 0:
            ell = ELLMatrix(
                coo.nrows,
                coo.ncols,
                np.full((coo.nrows, 0), -1, dtype=np.int64),
                np.zeros((coo.nrows, 0)),
            )
            return cls(ell, coo)
        starts = np.zeros(coo.nrows + 1, dtype=np.int64)
        np.cumsum(row_counts, out=starts[1:])
        slot = np.arange(coo.nnz, dtype=np.int64) - starts[coo.row]
        in_ell = slot < k
        ell_cols = np.full((coo.nrows, k), -1, dtype=np.int64)
        ell_data = np.zeros((coo.nrows, k), dtype=np.float64)
        if k:
            ell_cols[coo.row[in_ell], slot[in_ell]] = coo.col[in_ell]
            ell_data[coo.row[in_ell], slot[in_ell]] = coo.data[in_ell]
        ell = ELLMatrix(coo.nrows, coo.ncols, ell_cols, ell_data)
        overflow = COOMatrix(
            coo.nrows,
            coo.ncols,
            coo.row[~in_ell],
            coo.col[~in_ell],
            coo.data[~in_ell],
            canonical=True,
        )
        return cls(ell, overflow)

    # ------------------------------------------------------------------
    def row_nnz(self) -> np.ndarray:
        return self.ell.row_nnz() + self.coo.row_nnz()

    def diagonal_nnz(self) -> np.ndarray:
        # combine the two blocks' diagonals by re-counting over union COO;
        # cheap because this is only used by offline feature extraction
        return self.to_coo().diagonal_nnz()
