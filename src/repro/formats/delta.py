"""Delta overlays: mutate sparse matrices without rebuilding the world.

The six containers are immutable — a property every cache in the stack
leans on — so matrix evolution (streaming graphs, time-stepping
simulations, incremental assembly) is expressed as *deltas* layered over
a base container:

* :class:`MatrixDelta` is the frozen wire format: parallel coordinate /
  value / op arrays where each op is ``SET`` (store a value, inserting
  if absent), ``ADD`` (accumulate onto the stored value, inserting if
  absent) or ``DEL`` (remove the stored entry, a no-op if absent).
  :meth:`MatrixDelta.canonical` folds repeated ops on one coordinate
  into a single op with sequential semantics, so appliers only ever see
  one op per coordinate.
* :class:`DeltaOverlay` is the mutable builder clients append to —
  scalar and vectorised add/set/delete — and compose over any base
  container; :meth:`DeltaOverlay.compact` folds the buffered ops into a
  freshly converted base format via
  :meth:`~repro.formats.base.SparseMatrix.with_updates`, producing an
  epoch-stamped successor.
* :func:`apply_delta` is the sorted-merge core: canonical COO in,
  canonical COO out, in ``O(nnz + k)`` without re-canonicalising, plus
  a :class:`DeltaEffect` describing exactly which rows and diagonals
  changed — the input the runtime layer's incremental statistics feed
  on (:mod:`repro.runtime.epoch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.formats.coo import COOMatrix
from repro.utils.validation import as_index_array, as_value_array

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.formats.base import SparseMatrix

__all__ = [
    "OP_SET",
    "OP_ADD",
    "OP_DEL",
    "DeltaEffect",
    "DeltaOverlay",
    "MatrixDelta",
    "apply_delta",
    "merge_keyed",
]

#: Op codes of one delta entry (stored in a uint8 array).
OP_SET, OP_ADD, OP_DEL = 0, 1, 2

_OP_NAMES = {OP_SET: "set", OP_ADD: "add", OP_DEL: "del"}


def _compiled_delta():
    """The Numba delta kernels, or ``None`` on the NumPy-only path.

    Resolved per call (cheap once warm) so masking the numba backend —
    :func:`repro.kernels.set_enabled_backends` or the
    ``REPRO_KERNEL_BACKENDS`` allowlist — immediately reroutes delta
    folding to the reference implementation.  Both paths are bitwise
    identical: the compiled twins replay the same arithmetic in the
    same order (see :mod:`repro.kernels.numba.delta`).
    """
    from repro.kernels import delta_kernels

    return delta_kernels()


@dataclass(frozen=True)
class MatrixDelta:
    """A frozen batch of coordinate updates against some base matrix.

    ``row`` / ``col`` / ``value`` / ``op`` are parallel arrays; ops are
    applied in array order, so a non-canonical delta may touch one
    coordinate several times.  ``canonical`` asserts one op per
    coordinate, row-major sorted — the form :func:`apply_delta`
    consumes.
    """

    row: np.ndarray
    col: np.ndarray
    value: np.ndarray
    op: np.ndarray
    is_canonical: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "row", as_index_array(self.row, name="row"))
        object.__setattr__(self, "col", as_index_array(self.col, name="col"))
        object.__setattr__(
            self, "value", as_value_array(self.value, name="value")
        )
        op = np.ascontiguousarray(self.op, dtype=np.uint8)
        if not (
            self.row.shape == self.col.shape == self.value.shape == op.shape
        ):
            raise ValidationError(
                "delta row, col, value and op must have equal length, got "
                f"{self.row.shape[0]}, {self.col.shape[0]}, "
                f"{self.value.shape[0]}, {op.shape[0]}"
            )
        if op.size and int(op.max(initial=0)) > OP_DEL:
            raise ValidationError(
                f"unknown delta op code {int(op.max())}; expected one of "
                f"{sorted(_OP_NAMES)}"
            )
        if np.any(self.row < 0) or np.any(self.col < 0):
            raise ValidationError("delta coordinates must be non-negative")
        object.__setattr__(self, "op", op)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.row.shape[0])

    def check_bounds(self, nrows: int, ncols: int) -> None:
        """Raise unless every coordinate fits an ``nrows x ncols`` matrix."""
        if len(self) == 0:
            return
        if int(self.row.max()) >= nrows or int(self.col.max()) >= ncols:
            raise ValidationError(
                f"delta coordinate ({int(self.row.max())}, "
                f"{int(self.col.max())}) out of bounds for a "
                f"{nrows}x{ncols} matrix"
            )

    # ------------------------------------------------------------------
    def canonical(self, ncols_hint: Optional[int] = None) -> "MatrixDelta":
        """One op per coordinate, row-major sorted, sequential semantics.

        Repeated ops on a coordinate fold in order: a later ``SET``/
        ``DEL`` supersedes what came before, ``ADD`` accumulates onto a
        prior ``SET``/``ADD`` and re-creates the entry after a ``DEL``.
        """
        if self.is_canonical or len(self) == 0:
            return self if self.is_canonical else MatrixDelta(
                self.row, self.col, self.value, self.op, is_canonical=True
            )
        span = np.int64(
            max(int(self.col.max()) + 1, ncols_hint or 0)
        )
        key = self.row * span + self.col
        order = np.argsort(key, kind="stable")
        key = key[order]
        uniq = np.empty(key.shape, dtype=bool)
        uniq[0] = True
        np.not_equal(key[1:], key[:-1], out=uniq[1:])
        if uniq.all():
            return MatrixDelta(
                self.row[order],
                self.col[order],
                self.value[order],
                self.op[order],
                is_canonical=True,
            )
        # fold duplicate-coordinate runs sequentially (duplicates are
        # rare, so a Python loop over just those runs is fine)
        row = self.row[order]
        col = self.col[order]
        value = self.value[order].copy()
        op = self.op[order].copy()
        starts = np.flatnonzero(uniq)
        ends = np.append(starts[1:], key.shape[0])
        keep = uniq.copy()
        compiled = _compiled_delta()
        if compiled is not None:
            compiled.fold_duplicate_runs(op, value, starts, ends)
        else:
            for s, e in zip(starts, ends):
                if e - s == 1:
                    continue
                mode, val = int(op[s]), float(value[s])
                for i in range(s + 1, e):
                    o, v = int(op[i]), float(value[i])
                    if o == OP_SET or o == OP_DEL:
                        mode, val = o, v
                    elif mode == OP_DEL:  # deleted then re-added
                        mode, val = OP_SET, v
                    else:  # ADD onto SET/ADD keeps the mode, accumulates
                        val = val + v
                op[s], value[s] = mode, val
        return MatrixDelta(
            row[keep], col[keep], value[keep], op[keep], is_canonical=True
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_ops(
        cls,
        rows: Sequence[int],
        cols: Sequence[int],
        values: Sequence[float],
        ops: Sequence[int],
    ) -> "MatrixDelta":
        """Build from parallel sequences (values ignored for deletes)."""
        return cls(
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
            np.asarray(ops, dtype=np.uint8),
        )

    @classmethod
    def sets(cls, rows, cols, values) -> "MatrixDelta":
        """A delta of pure ``SET`` ops."""
        rows = np.asarray(rows, dtype=np.int64)
        return cls(rows, cols, values, np.full(rows.shape, OP_SET, np.uint8))

    @classmethod
    def adds(cls, rows, cols, values) -> "MatrixDelta":
        """A delta of pure ``ADD`` ops."""
        rows = np.asarray(rows, dtype=np.int64)
        return cls(rows, cols, values, np.full(rows.shape, OP_ADD, np.uint8))

    @classmethod
    def deletes(cls, rows, cols) -> "MatrixDelta":
        """A delta of pure ``DEL`` ops."""
        rows = np.asarray(rows, dtype=np.int64)
        return cls(
            rows,
            cols,
            np.zeros(rows.shape, dtype=np.float64),
            np.full(rows.shape, OP_DEL, np.uint8),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = {
            name: int((self.op == code).sum())
            for code, name in _OP_NAMES.items()
        }
        return f"<MatrixDelta {len(self)} ops {counts}>"


@dataclass(frozen=True)
class DeltaEffect:
    """Structural consequences of applying one canonical delta.

    Only *structure* is described — entries inserted and removed, per
    row and per occupied diagonal — because value-in-place changes do
    not move any statistic the runtime maintains incrementally.
    Offsets follow the ``col - row`` convention of
    :meth:`~repro.formats.coo.COOMatrix.diagonal_offsets`.
    """

    inserted_rows: np.ndarray
    inserted_offsets: np.ndarray
    removed_rows: np.ndarray
    removed_offsets: np.ndarray
    values_changed: int = 0
    noop_deletes: int = 0

    @property
    def nnz_change(self) -> int:
        """Net stored-entry count change."""
        return int(self.inserted_rows.shape[0] - self.removed_rows.shape[0])

    @property
    def structural(self) -> bool:
        """Did the sparsity pattern change at all?"""
        return bool(self.inserted_rows.size or self.removed_rows.size)


def merge_keyed(
    nrows: int,
    ncols: int,
    key: np.ndarray,
    col: np.ndarray,
    data: np.ndarray,
    delta: MatrixDelta,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, DeltaEffect]:
    """Sorted-merge core on linearised content: ``O(nnz + k)``, no sort.

    *key* is the row-major linear coordinate (``row * ncols + col``,
    strictly increasing — canonical order), *col* / *data* the parallel
    column and value arrays.  This is the streaming hot path: it never
    materialises a row array (rows live implicitly in the keys and in
    the incrementally maintained row histogram) and never re-validates
    ``O(nnz)`` container invariants — both merge inputs are already
    canonical, so the output is canonical by construction.  Returns the
    merged ``(key, col, data)`` plus the :class:`DeltaEffect`; for a
    value-only delta the key and column arrays are returned unchanged
    (shared, not copied).
    """
    d = delta.canonical(ncols_hint=ncols)
    d.check_bounds(nrows, ncols)
    empty = np.zeros(0, dtype=np.int64)
    if len(d) == 0:
        return key, col, data, DeltaEffect(empty, empty, empty, empty)
    span = np.int64(ncols)
    d_key = d.row * span + d.col
    pos = np.searchsorted(key, d_key)
    clamped = np.minimum(pos, max(key.shape[0] - 1, 0))
    matched = (
        (pos < key.shape[0]) & (key[clamped] == d_key)
        if key.size
        else np.zeros(d_key.shape, dtype=bool)
    )
    m_set = matched & (d.op == OP_SET)
    m_add = matched & (d.op == OP_ADD)
    m_del = matched & (d.op == OP_DEL)
    inserts = ~matched & (d.op != OP_DEL)
    noop_deletes = int((~matched & (d.op == OP_DEL)).sum())
    n_del = int(m_del.sum())
    n_ins = int(inserts.sum())
    effect = DeltaEffect(
        inserted_rows=d.row[inserts],
        inserted_offsets=(d.col[inserts] - d.row[inserts]),
        removed_rows=d.row[m_del],
        removed_offsets=(d.col[m_del] - d.row[m_del]),
        values_changed=int(m_set.sum() + m_add.sum()),
        noop_deletes=noop_deletes,
    )
    out_data = data.copy()
    out_data[pos[m_set]] = d.value[m_set]
    out_data[pos[m_add]] += d.value[m_add]
    if n_del == 0 and n_ins == 0:
        # value-only delta: one value copy, structure arrays shared
        return key, col, out_data, effect
    compiled = _compiled_delta()
    if compiled is not None:
        new_key, new_col, new_data = compiled.merge_rebuild(
            key,
            col,
            out_data,
            pos[m_del],
            d_key[inserts],
            d.col[inserts],
            d.value[inserts],
        )
        return new_key, new_col, new_data, effect
    if n_del:
        keep = np.ones(key.shape[0], dtype=bool)
        keep[pos[m_del]] = False
        kept_key = key[keep]
        kept_col = col[keep]
        kept_data = out_data[keep]
    else:
        kept_key, kept_col, kept_data = key, col, out_data
    if n_ins == 0:
        return kept_key, kept_col, kept_data, effect
    # one allocation per array, two scatters: kept entries land in their
    # slots, inserted entries in theirs — canonical order preserved
    out_size = kept_key.shape[0] + n_ins
    ins_at = np.searchsorted(kept_key, d_key[inserts])
    ins_slots = ins_at + np.arange(n_ins, dtype=np.int64)
    base_slots = np.ones(out_size, dtype=bool)
    base_slots[ins_slots] = False
    new_key = np.empty(out_size, dtype=np.int64)
    new_col = np.empty(out_size, dtype=np.int64)
    new_data = np.empty(out_size, dtype=np.float64)
    new_key[base_slots] = kept_key
    new_col[base_slots] = kept_col
    new_data[base_slots] = kept_data
    new_key[ins_slots] = d_key[inserts]
    new_col[ins_slots] = d.col[inserts]
    new_data[ins_slots] = d.value[inserts]
    return new_key, new_col, new_data, effect


def apply_delta(
    base: COOMatrix, delta: MatrixDelta
) -> tuple[COOMatrix, DeltaEffect]:
    """Merge a delta into canonical COO: ``O(nnz + k)``, no re-sort.

    Both sides are sorted — the base is canonical COO, the delta is
    canonicalised here — so the merge is a single ``searchsorted`` plus
    one pass of copies (see :func:`merge_keyed`, the array-level core).
    The result is canonical by construction, which is what lets the
    streaming engine hand it straight to ``from_coo`` conversions and
    stay bitwise-identical to a from-scratch rebuild of the same
    content.
    """
    span = np.int64(base.ncols) if base.ncols else np.int64(1)
    key, col, data, effect = merge_keyed(
        base.nrows,
        base.ncols,
        base.row * span + base.col,
        base.col,
        base.data,
        delta,
    )
    if col is base.col and data is base.data:  # empty delta
        return base, effect
    merged = COOMatrix(
        base.nrows, base.ncols, key // span, col, data, canonical=True
    )
    return merged, effect


class DeltaOverlay:
    """Mutable COO-style add/set/delete buffer composing over any base.

    The overlay accumulates ops (scalar or vectorised) in append order
    and freezes them into a :class:`MatrixDelta` with :meth:`to_delta`.
    :meth:`compact` folds the buffer into a freshly converted base
    format, returning an epoch-stamped successor of the base container.
    """

    def __init__(self) -> None:
        self._rows: list = []
        self._cols: list = []
        self._values: list = []
        self._ops: list = []

    def __len__(self) -> int:
        return int(sum(r.shape[0] for r in self._rows))

    # ------------------------------------------------------------------
    def set(self, row: int, col: int, value: float) -> "DeltaOverlay":
        """Store *value* at ``(row, col)``, inserting the entry if absent."""
        return self._push([row], [col], [value], OP_SET)

    def add(self, row: int, col: int, value: float) -> "DeltaOverlay":
        """Accumulate *value* onto ``(row, col)``, inserting if absent."""
        return self._push([row], [col], [value], OP_ADD)

    def delete(self, row: int, col: int) -> "DeltaOverlay":
        """Remove the entry at ``(row, col)`` (no-op when absent)."""
        return self._push([row], [col], [0.0], OP_DEL)

    def set_many(self, rows, cols, values) -> "DeltaOverlay":
        """Vectorised :meth:`set`."""
        return self._push(rows, cols, values, OP_SET)

    def add_many(self, rows, cols, values) -> "DeltaOverlay":
        """Vectorised :meth:`add`."""
        return self._push(rows, cols, values, OP_ADD)

    def delete_many(self, rows, cols) -> "DeltaOverlay":
        """Vectorised :meth:`delete`."""
        rows = np.asarray(rows, dtype=np.int64)
        return self._push(
            rows, cols, np.zeros(rows.shape, dtype=np.float64), OP_DEL
        )

    def _push(self, rows, cols, values, op: int) -> "DeltaOverlay":
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (rows.shape == cols.shape == values.shape):
            raise ValidationError(
                "overlay rows, cols and values must have equal length"
            )
        self._rows.append(rows)
        self._cols.append(cols)
        self._values.append(values)
        self._ops.append(np.full(rows.shape, op, dtype=np.uint8))
        return self

    def extend(self, delta: MatrixDelta) -> "DeltaOverlay":
        """Append every op of an existing delta (in its order)."""
        self._rows.append(delta.row)
        self._cols.append(delta.col)
        self._values.append(delta.value)
        self._ops.append(delta.op)
        return self

    def clear(self) -> None:
        """Drop every buffered op."""
        self._rows.clear()
        self._cols.clear()
        self._values.clear()
        self._ops.clear()

    # ------------------------------------------------------------------
    def to_delta(self) -> MatrixDelta:
        """Freeze the buffer into a canonical :class:`MatrixDelta`."""
        if not self._rows:
            empty = np.zeros(0, dtype=np.int64)
            return MatrixDelta(
                empty,
                empty.copy(),
                np.zeros(0, dtype=np.float64),
                np.zeros(0, dtype=np.uint8),
                is_canonical=True,
            )
        return MatrixDelta(
            np.concatenate(self._rows),
            np.concatenate(self._cols),
            np.concatenate(self._values),
            np.concatenate(self._ops),
        ).canonical()

    def apply(self, base: "SparseMatrix") -> tuple[COOMatrix, DeltaEffect]:
        """Merge the buffer into *base*'s canonical COO view."""
        return apply_delta(base.to_coo(), self.to_delta())

    def compact(
        self, base: "SparseMatrix", *, format: Optional[str] = None
    ) -> "SparseMatrix":
        """Fold the buffer into a fresh container: the epoch successor.

        The result is *base* with every buffered op applied, converted
        to *format* (default: the base's own format) and stamped with
        ``base.epoch + 1`` under the same stable id — see
        :meth:`~repro.formats.base.SparseMatrix.with_updates`.
        """
        return base.with_updates(self.to_delta(), format=format)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DeltaOverlay {len(self)} buffered ops>"
