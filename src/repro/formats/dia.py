"""Diagonal (DIA) storage format.

DIA stores every occupied diagonal as one row of a dense 2-D array plus an
integer offset per diagonal (paper Section II-B: suited to banded / regular
patterns on vector hardware, but suffers excessive padding when many sparse
diagonals are occupied).

Layout convention (matches ``scipy.sparse.dia_matrix``): the element at
``(i, j)`` with ``j - i == offsets[k]`` is stored at ``data[k, j]`` — i.e.
diagonals are *column aligned*, so ``data`` has shape
``(ndiags, ncols)`` and the leading ``max(0, offsets[k])`` /
trailing entries of each row are padding.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.utils.validation import as_index_array, check_array_2d

__all__ = ["DIAMatrix"]


@register_format
class DIAMatrix(SparseMatrix):
    """DIA sparse matrix with ``offsets`` and column-aligned ``data``.

    Parameters
    ----------
    nrows, ncols:
        Matrix shape.
    offsets:
        Strictly increasing diagonal offsets ``j - i`` in
        ``[-(nrows-1), ncols-1]``.
    data:
        Array of shape ``(len(offsets), ncols)``; entry ``data[k, j]`` holds
        ``A[j - offsets[k], j]`` where that index is in range, else padding.
    """

    format = "DIA"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        offsets: np.ndarray,
        data: np.ndarray,
    ) -> None:
        super().__init__(nrows, ncols)
        offsets = as_index_array(offsets, name="offsets")
        data = check_array_2d(data, name="data", dtype=np.float64)
        if data.shape[0] != offsets.shape[0]:
            raise ValidationError(
                f"data has {data.shape[0]} diagonals but offsets has "
                f"{offsets.shape[0]} entries"
            )
        if data.shape[0] and data.shape[1] != ncols:
            raise ValidationError(
                f"data must have ncols={ncols} columns, got {data.shape[1]}"
            )
        if offsets.size:
            if np.any(np.diff(offsets) <= 0):
                raise ValidationError("offsets must be strictly increasing")
            if offsets[0] < -(nrows - 1) or offsets[-1] > ncols - 1:
                raise ValidationError(
                    f"offsets must lie in [{-(nrows - 1)}, {ncols - 1}], got "
                    f"[{offsets[0]}, {offsets[-1]}]"
                )
        self.offsets = offsets
        self.data = data
        # zero out any value written into out-of-range (padding) positions so
        # nnz and kernels agree on what is stored
        self._mask_padding()
        self.offsets.setflags(write=False)
        self.data.setflags(write=False)

    def _mask_padding(self) -> None:
        # write only where a padding slot actually holds a non-zero, so
        # an already-masked read-only buffer (an mmap view re-attached
        # from the disk tier) passes through without touching a page
        for k, off in enumerate(self.offsets):
            j_lo = max(0, int(off))
            j_hi = min(self.ncols, self.nrows + int(off))
            head = self.data[k, :j_lo]
            if head.size and np.any(head):
                self.data[k, :j_lo] = 0.0
            tail = self.data[k, max(j_lo, j_hi):]
            if tail.size and np.any(tail):
                self.data[k, max(j_lo, j_hi):] = 0.0

    # ------------------------------------------------------------------
    @property
    def ndiags(self) -> int:
        """Number of stored diagonals."""
        return int(self.offsets.shape[0])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    def padded_size(self) -> int:
        """Total stored scalar slots, ``ndiags * ncols`` (incl. padding)."""
        return int(self.data.size)

    def nbytes(self) -> int:
        return int(self.offsets.nbytes + self.data.nbytes)

    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        rows_list = []
        cols_list = []
        vals_list = []
        for k, off in enumerate(self.offsets):
            j_lo = max(0, int(off))
            j_hi = min(self.ncols, self.nrows + int(off))
            if j_hi <= j_lo:
                continue
            cols = np.arange(j_lo, j_hi, dtype=np.int64)
            vals = self.data[k, j_lo:j_hi]
            keep = vals != 0.0
            rows_list.append(cols[keep] - int(off))
            cols_list.append(cols[keep])
            vals_list.append(vals[keep])
        if not rows_list:
            empty = np.zeros(0, dtype=np.int64)
            return COOMatrix(
                self.nrows, self.ncols, empty, empty, np.zeros(0), canonical=True
            )
        return COOMatrix(
            self.nrows,
            self.ncols,
            np.concatenate(rows_list),
            np.concatenate(cols_list),
            np.concatenate(vals_list),
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, **params: object) -> "DIAMatrix":
        offsets = coo.diagonal_offsets()
        data = np.zeros((offsets.shape[0], coo.ncols), dtype=np.float64)
        if coo.nnz:
            diag_of_entry = np.searchsorted(offsets, coo.col - coo.row)
            data[diag_of_entry, coo.col] = coo.data
        return cls(coo.nrows, coo.ncols, offsets, data)

    # ------------------------------------------------------------------
    def row_nnz(self) -> np.ndarray:
        counts = np.zeros(self.nrows, dtype=np.int64)
        for k, off in enumerate(self.offsets):
            j_lo = max(0, int(off))
            j_hi = min(self.ncols, self.nrows + int(off))
            if j_hi <= j_lo:
                continue
            seg = self.data[k, j_lo:j_hi] != 0.0
            counts[j_lo - int(off): j_hi - int(off)] += seg
        return counts

    def diagonal_nnz(self) -> np.ndarray:
        counts = np.count_nonzero(self.data, axis=1).astype(np.int64)
        return counts[counts > 0]
