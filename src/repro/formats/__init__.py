"""Sparse matrix storage formats (the Morpheus substrate).

Six concrete formats — matching the paper's Section II-B — plus the
:class:`~repro.formats.dynamic.DynamicMatrix` runtime-switching container:

======  ==  =============================================================
Format  id  Description
======  ==  =============================================================
COO      0  Coordinate: (row, col, value) triplets.
CSR      1  Compressed Sparse Row: row pointers + column indices + values.
DIA      2  Diagonal: dense bands indexed by offset.
ELL      3  ELLPACK: fixed-width padded rows.
HYB      4  Hybrid ELL + COO with per-row split parameter ``K``.
HDC      5  Hybrid DIA + CSR with true-diagonal threshold ``ND``.
======  ==  =============================================================

The integer ids are the classification targets used throughout the ML
pipeline, in the paper's enumeration order (Eq. 1: ``COO, CSR, ..., HDC``).
"""

from repro.formats.base import (
    FORMAT_IDS,
    FORMAT_NAMES,
    SparseMatrix,
    format_id,
    format_name,
)
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.formats.hdc import HDCMatrix
from repro.formats.convert import convert, convert_cost_weight
from repro.formats.delta import (
    DeltaEffect,
    DeltaOverlay,
    MatrixDelta,
    apply_delta,
)
from repro.formats.dynamic import DynamicMatrix

__all__ = [
    "FORMAT_IDS",
    "FORMAT_NAMES",
    "SparseMatrix",
    "format_id",
    "format_name",
    "COOMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "HDCMatrix",
    "convert",
    "convert_cost_weight",
    "DeltaEffect",
    "DeltaOverlay",
    "DynamicMatrix",
    "MatrixDelta",
    "apply_delta",
]
