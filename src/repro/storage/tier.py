"""The disk tier: a demote/promote store for converted containers.

:class:`StorageTier` is what turns engine-cache eviction from a cliff
into a hierarchy level.  The serving cache demotes a cold engine's
converted containers here instead of dropping them; a later request for
the same matrix promotes the entry back as read-only mmap views — the
conversion cost (the expensive part of a cache miss) is replaced by an
``np.load(..., mmap_mode="r")`` reattach whose round trip is
bitwise-stable (:mod:`repro.storage.persist`).

Entries are keyed by the serving-cache key (the matrix fingerprint) and
live one-per-directory under ``<root>/entries/<blake2b(key)>/``; the
manifest records the original key, the epoch, and the decision metadata
(chosen format/backend) so promotion restores both the container and
the tuner decision it was serving under.  Writes are atomic
(temp-dir + rename), the in-memory index is rebuilt from disk on
construction (the tier survives restarts), and every mutation/lookup is
guarded by one lock — demote/promote latency is file IO, not lock
contention, so a finer sharding is not worth its complexity here.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.storage.persist import (
    MANIFEST_NAME,
    load_container,
    read_manifest,
    save_container,
)

__all__ = ["StorageTier", "TierEntry"]

_ENTRIES_DIR = "entries"


def _key_dir(key: str) -> str:
    """Filesystem-safe directory name for a cache key (keys may hold
    ``/`` — branched stable ids like ``mx0001/b2``)."""
    return hashlib.blake2b(key.encode(), digest_size=16).hexdigest()


@dataclass(frozen=True)
class TierEntry:
    """One resident entry of the disk tier (the ``repro storage`` row)."""

    key: str
    path: str
    format: str
    nrows: int
    ncols: int
    nnz: int
    nbytes: int
    epoch: int
    fingerprint: str
    stored_at: float
    extra: dict


class StorageTier:
    """Disk-resident container store with demote/promote accounting.

    Parameters
    ----------
    directory:
        Tier root; created if absent.  Existing entries are indexed at
        construction, so a tier outlives the process that filled it.
    mmap:
        Whether :meth:`promote` re-attaches arrays as mmap views
        (default) or materialises them in RAM.
    capacity_bytes:
        Optional cap on resident tier bytes; demotions evict the
        oldest entries (by store time) until the new entry fits.
        ``None`` (default) means unbounded.
    """

    def __init__(
        self,
        directory: str,
        *,
        mmap: bool = True,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        self.directory = os.path.abspath(directory)
        self.mmap = bool(mmap)
        self.capacity_bytes = (
            int(capacity_bytes) if capacity_bytes is not None else None
        )
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ValidationError(
                f"capacity_bytes must be positive, got {self.capacity_bytes}"
            )
        self._entries_root = os.path.join(self.directory, _ENTRIES_DIR)
        os.makedirs(self._entries_root, exist_ok=True)
        self._lock = threading.Lock()
        self._index: Dict[str, TierEntry] = {}
        # traffic counters (mirrored into the obs registry by the
        # service's gauge collector; the tier itself stays obs-free)
        self.demotions = 0
        self.promotions = 0
        self.promote_misses = 0
        self.compactions = 0
        self.tier_evictions = 0
        self.demote_seconds = 0.0
        self.promote_seconds = 0.0
        self.bytes_written = 0
        self._rebuild_index()

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------
    def _rebuild_index(self) -> None:
        for name in sorted(os.listdir(self._entries_root)):
            path = os.path.join(self._entries_root, name)
            if name.startswith(".") or not os.path.isdir(path):
                continue
            if not os.path.exists(os.path.join(path, MANIFEST_NAME)):
                continue  # torn entry from a crashed writer: unreachable
            try:
                entry = self._entry_from_manifest(path)
            except (ValidationError, OSError, ValueError):
                continue  # unreadable entry: leave it for inspection
            if entry.key:
                self._index[entry.key] = entry

    def _entry_from_manifest(self, path: str) -> TierEntry:
        manifest = read_manifest(path)
        extra = dict(manifest.get("extra") or {})
        return TierEntry(
            key=str(extra.pop("tier_key", "")),
            path=path,
            format=manifest["format"],
            nrows=int(manifest["nrows"]),
            ncols=int(manifest["ncols"]),
            nnz=int(manifest["nnz"]),
            nbytes=int(manifest["nbytes"]),
            epoch=int(manifest.get("epoch", 0)),
            fingerprint=manifest["fingerprint"],
            stored_at=float(extra.pop("tier_stored_at", 0.0)),
            extra=extra,
        )

    # ------------------------------------------------------------------
    # demote / promote
    # ------------------------------------------------------------------
    def demote(
        self,
        key: str,
        matrix: SparseMatrix,
        *,
        extra: Optional[dict] = None,
    ) -> TierEntry:
        """Spill one converted container to disk under *key*.

        Replaces any previous entry for the key (a newer epoch
        supersedes the demoted one).  Returns the resident entry.
        """
        start = time.perf_counter()
        path = os.path.join(self._entries_root, _key_dir(key))
        stored_extra = dict(extra or {})
        stored_extra["tier_key"] = key
        stored_extra["tier_stored_at"] = time.time()
        save_container(matrix, path, extra=stored_extra)
        entry = self._entry_from_manifest(path)
        with self._lock:
            self._index[key] = entry
            self.demotions += 1
            self.bytes_written += entry.nbytes
            self.demote_seconds += time.perf_counter() - start
            self._enforce_capacity_locked(keep=key)
        return entry

    def _enforce_capacity_locked(self, *, keep: str) -> None:
        if self.capacity_bytes is None:
            return
        total = sum(e.nbytes for e in self._index.values())
        victims = sorted(
            (e for k, e in self._index.items() if k != keep),
            key=lambda e: e.stored_at,
        )
        for victim in victims:
            if total <= self.capacity_bytes:
                break
            self._index.pop(victim.key, None)
            shutil.rmtree(victim.path, ignore_errors=True)
            self.tier_evictions += 1
            total -= victim.nbytes

    def promote(
        self,
        key: str,
        *,
        epoch: Optional[int] = None,
        verify: bool = False,
    ) -> Optional[SparseMatrix]:
        """Re-attach the container demoted under *key*, or ``None``.

        With *epoch*, an entry persisted for a different matrix version
        is treated as a miss (and dropped — it can never be served
        again).  The returned container's arrays are read-only mmap
        views when the tier was built with ``mmap=True``.
        """
        start = time.perf_counter()
        with self._lock:
            entry = self._index.get(key)
            if entry is not None and epoch is not None and entry.epoch != int(epoch):
                self._index.pop(key, None)
                shutil.rmtree(entry.path, ignore_errors=True)
                entry = None
        if entry is None:
            with self._lock:
                self.promote_misses += 1
            return None
        try:
            matrix = load_container(
                entry.path, mmap=self.mmap, verify=verify
            )
        except (OSError, ValidationError, ValueError):
            # torn or vanished entry: drop it and report a miss rather
            # than failing the request — the engine just re-converts
            with self._lock:
                self._index.pop(key, None)
                self.promote_misses += 1
            shutil.rmtree(entry.path, ignore_errors=True)
            return None
        with self._lock:
            self.promotions += 1
            self.promote_seconds += time.perf_counter() - start
        return matrix

    def compact(
        self,
        key: str,
        overlay,
        base: SparseMatrix,
        *,
        format: Optional[str] = None,
        extra: Optional[dict] = None,
    ):
        """Compact a :class:`~repro.formats.delta.DeltaOverlay` to the tier.

        Materialises ``overlay.compact(base, format=format)`` — the
        epoch-stamped successor container — and writes it straight to
        disk under *key*, so the caller can drop the RAM copy and
        :meth:`promote` it back as mmap views on demand.  Returns
        ``(entry, successor)``.
        """
        successor = overlay.compact(base, format=format)
        entry = self.demote(key, successor, extra=extra)
        with self._lock:
            self.compactions += 1
        return entry, successor

    def decision(self, key: str) -> Optional[dict]:
        """The decision metadata stored with *key*'s entry, if resident."""
        with self._lock:
            entry = self._index.get(key)
        return dict(entry.extra) if entry is not None else None

    # ------------------------------------------------------------------
    # maintenance / inspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def remove(self, key: str) -> bool:
        """Drop *key*'s entry from the tier (no-op when absent).

        POSIX note: an already-promoted container keeps serving — its
        mmap views hold the unlinked files open until released.
        """
        with self._lock:
            entry = self._index.pop(key, None)
        if entry is None:
            return False
        shutil.rmtree(entry.path, ignore_errors=True)
        return True

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        with self._lock:
            entries = list(self._index.values())
            self._index.clear()
        for entry in entries:
            shutil.rmtree(entry.path, ignore_errors=True)
        return len(entries)

    def entries(self) -> List[TierEntry]:
        """Resident entries, oldest first (the ``repro storage`` view)."""
        with self._lock:
            return sorted(self._index.values(), key=lambda e: e.stored_at)

    def resident_bytes(self) -> int:
        with self._lock:
            return sum(e.nbytes for e in self._index.values())

    def stats(self) -> Dict[str, object]:
        """Residency + traffic counters (the ``stats()['storage']`` block)."""
        with self._lock:
            entries = list(self._index.values())
            return {
                "directory": self.directory,
                "entries": len(entries),
                "resident_bytes": sum(e.nbytes for e in entries),
                "capacity_bytes": self.capacity_bytes,
                "demotions": self.demotions,
                "promotions": self.promotions,
                "promote_misses": self.promote_misses,
                "compactions": self.compactions,
                "tier_evictions": self.tier_evictions,
                "demote_seconds": self.demote_seconds,
                "promote_seconds": self.promote_seconds,
                "bytes_written": self.bytes_written,
                "formats": sorted({e.format for e in entries}),
            }
