"""Row-block streaming SpMV/SpMM over mmapped CSR arrays.

A matrix larger than RAM cannot be handed to a kernel whole — but CSR
is row-separable, so the iterator here partitions ``row_ptr`` into
cache-sized row panels and drives each panel through the same
``(operation, format, backend)`` kernel registry the in-RAM path uses.
Panels slice the (typically mmap-backed) ``col_idx`` / ``data`` arrays
without copying, so resident memory is bounded by one panel regardless
of matrix size; the OS pages panel data in as the kernel touches it and
drops it under pressure.

Bitwise identity with the in-RAM path is a hard contract:

* the ``native`` and ``numba`` CSR kernels accumulate strictly
  row-locally, so per-panel dispatch reproduces them exactly;
* the ``numpy`` reference kernel is a *global* prefix sum
  (``y[i] = prefix[row_ptr[i+1]] - prefix[row_ptr[i]]``), whose float
  values depend on everything summed before row ``i``.  The streaming
  path replays that arithmetic exactly by seeding each panel's
  ``np.add.accumulate`` with the previous panel's final prefix value —
  sequential accumulation from an identical seed is bit-for-bit the
  tail of the full accumulation.

``tests/storage/`` locks both properties against every available
backend.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.formats.csr import CSRMatrix
from repro.runtime.registry import resolve_kernel
from repro.utils.validation import check_vector_length

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "iter_row_blocks",
    "mmap_backed",
    "plan_block_rows",
    "streaming_spmm",
    "streaming_spmv",
]

#: Default row-panel budget: big enough to amortise per-panel dispatch,
#: small enough that a panel's working set fits comfortably in cache
#: hierarchy + a few pages (8 MiB).
DEFAULT_BLOCK_BYTES = 8 << 20

#: Bytes one stored entry occupies in CSR (int64 col_idx + float64 data).
_ENTRY_BYTES = 16


def mmap_backed(matrix) -> bool:
    """Whether any defining array of *matrix* is a memory-mapped view."""
    from repro.storage.persist import container_arrays

    try:
        arrays = container_arrays(matrix)
    except FormatError:
        return False
    for arr in arrays.values():
        base = arr
        while base is not None:
            if isinstance(base, np.memmap):
                return True
            base = getattr(base, "base", None)
    return False


def plan_block_rows(
    csr: CSRMatrix, block_bytes: Optional[int] = None
) -> int:
    """Rows per streaming panel for a target panel byte budget.

    The heuristic sizes panels by the matrix's own mean row weight
    (``16 * nnz/nrows`` entry bytes plus the ``row_ptr`` slot), so
    short-row matrices stream many rows per panel and heavy rows stream
    few — panel bytes stay near the budget either way.
    """
    budget = int(block_bytes or DEFAULT_BLOCK_BYTES)
    if budget <= 0:
        raise ShapeError(f"block_bytes must be positive, got {budget}")
    nrows = csr.nrows
    if nrows == 0:
        return 1
    mean_row_bytes = 8.0 + _ENTRY_BYTES * (csr.nnz / nrows)
    return int(max(1, min(nrows, budget // max(1.0, mean_row_bytes))))


def iter_row_blocks(
    csr: CSRMatrix, block_rows: Optional[int] = None
) -> Iterator[Tuple[int, int, CSRMatrix]]:
    """Yield ``(row_start, row_end, panel)`` CSR panels of *csr*.

    Each panel is a fully valid :class:`CSRMatrix` over zero-copy
    slices of ``col_idx`` / ``data`` (only the rebased ``row_ptr``
    segment — 8 bytes per row — is copied), so panels of an mmapped
    container stay disk-backed until a kernel touches them.
    """
    if not isinstance(csr, CSRMatrix):
        raise FormatError(
            f"row-block streaming requires a CSR container, got "
            f"{type(csr).__name__}"
        )
    step = int(block_rows) if block_rows else plan_block_rows(csr)
    if step < 1:
        raise ShapeError(f"block_rows must be >= 1, got {step}")
    for i0 in range(0, csr.nrows, step):
        i1 = min(csr.nrows, i0 + step)
        ptr = np.asarray(csr.row_ptr[i0:i1 + 1])
        yield i0, i1, CSRMatrix(
            i1 - i0,
            csr.ncols,
            ptr - ptr[0],
            csr.col_idx[int(ptr[0]):int(ptr[-1])],
            csr.data[int(ptr[0]):int(ptr[-1])],
        )


def _numpy_stream(
    csr: CSRMatrix,
    operand: np.ndarray,
    out: np.ndarray,
    step: int,
) -> np.ndarray:
    """Bitwise replay of the numpy prefix-sum CSR kernels, panel-wise.

    Seeds each panel's sequential accumulation with the previous
    panel's closing prefix value, reproducing the full-matrix
    ``cumsum`` bit-for-bit (see module docstring).
    """
    stacked = operand.ndim == 2
    carry = (
        np.zeros(operand.shape[1], dtype=np.float64) if stacked else 0.0
    )
    for i0 in range(0, csr.nrows, step):
        i1 = min(csr.nrows, i0 + step)
        ptr = np.asarray(csr.row_ptr[i0:i1 + 1])
        lo, hi = int(ptr[0]), int(ptr[-1])
        cols = np.asarray(csr.col_idx[lo:hi])
        if stacked:
            products = np.asarray(csr.data[lo:hi])[:, None] * operand[cols]
            buf = np.empty((hi - lo + 1, operand.shape[1]), dtype=np.float64)
            buf[0] = carry
            buf[1:] = products
            np.add.accumulate(buf, axis=0, out=buf)
            carry = buf[-1].copy()
        else:
            products = np.asarray(csr.data[lo:hi]) * operand[cols]
            buf = np.empty(hi - lo + 1, dtype=np.float64)
            buf[0] = carry
            buf[1:] = products
            np.add.accumulate(buf, out=buf)
            carry = float(buf[-1])
        local = ptr - lo
        out[i0:i1] = buf[local[1:]] - buf[local[:-1]]
    return out


def _stream(
    csr: CSRMatrix,
    operand: np.ndarray,
    *,
    operation: str,
    backend: Optional[str],
    block_rows: Optional[int],
    block_bytes: Optional[int],
    out: Optional[np.ndarray],
) -> Tuple[np.ndarray, str, int]:
    step = (
        int(block_rows)
        if block_rows
        else plan_block_rows(csr, block_bytes)
    )
    if step < 1:
        raise ShapeError(f"block_rows must be >= 1, got {step}")
    shape = (
        (csr.nrows,)
        if operand.ndim == 1
        else (csr.nrows, operand.shape[1])
    )
    if out is None:
        out = np.empty(shape, dtype=np.float64)
    elif out.shape != shape:
        raise ShapeError(
            f"streaming output has shape {out.shape}, expected {shape}"
        )
    kernel, actual = resolve_kernel(operation, "CSR", backend)
    if csr.nnz == 0:
        out[...] = 0.0
        return out, actual, step
    if actual == "numpy":
        return _numpy_stream(csr, operand, out, step), actual, step
    for i0, i1, panel in iter_row_blocks(csr, step):
        out[i0:i1] = kernel(panel, operand)
    return out, actual, step


def streaming_spmv(
    csr: CSRMatrix,
    x: np.ndarray,
    *,
    backend: Optional[str] = None,
    block_rows: Optional[int] = None,
    block_bytes: Optional[int] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``y = A @ x`` over row panels, bitwise-identical to the in-RAM path.

    Resident memory is bounded by one panel plus the dense operand and
    result; *csr*'s arrays may be mmap views far larger than RAM.
    """
    vec = np.ascontiguousarray(x, dtype=np.float64)
    if vec.ndim != 1:
        raise ShapeError(f"SpMV operand must be 1-D, got ndim={vec.ndim}")
    check_vector_length(vec, csr.ncols, name="x")
    result, _, _ = _stream(
        csr,
        vec,
        operation="spmv",
        backend=backend,
        block_rows=block_rows,
        block_bytes=block_bytes,
        out=out,
    )
    return result


def streaming_spmm(
    csr: CSRMatrix,
    X: np.ndarray,
    *,
    backend: Optional[str] = None,
    block_rows: Optional[int] = None,
    block_bytes: Optional[int] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``Y = A @ X`` for an ``(ncols, k)`` block, streamed by row panels."""
    block = np.ascontiguousarray(X, dtype=np.float64)
    if block.ndim != 2:
        raise ShapeError(f"SpMM operand must be 2-D, got ndim={block.ndim}")
    check_vector_length(block, csr.ncols, name="X")
    result, _, _ = _stream(
        csr,
        block,
        operation="spmm",
        backend=backend,
        block_rows=block_rows,
        block_bytes=block_bytes,
        out=out,
    )
    return result
