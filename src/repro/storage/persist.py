"""Container persistence: ``.npy`` layouts, fingerprints, mmap reattach.

A persisted container is one *directory* holding ``manifest.json`` plus
one ``.npy`` file per defining array.  Plain ``.npy`` members (rather
than a zipped ``.npz``) are what make the disk tier a real memory tier:
``np.load(path, mmap_mode="r")`` hands back page-cache-backed views
with zero bytes copied, which a zip archive cannot do.  The layouts:

========  ==========================================================
format    array files
========  ==========================================================
COO       ``row`` / ``col`` / ``data``
CSR       ``row_ptr`` / ``col_idx`` / ``data``
DIA       ``offsets`` / ``data``
ELL       ``col_idx`` / ``data``
HYB       ``ell__col_idx`` / ``ell__data`` / ``coo__row`` / ...
HDC       ``dia__offsets`` / ``dia__data`` / ``csr__row_ptr`` / ...
========  ==========================================================

Publication is atomic: arrays and manifest are written into a hidden
sibling temp directory which is then ``os.rename``d into place, so a
reader can never observe a half-written entry.  The manifest carries a
blake2b content fingerprint over the defining arrays; a round trip is
bitwise-stable by construction (the arrays written are the exact
read-only buffers the frozen container holds, and re-attachment feeds
them back through the normal validating constructors, which never copy
an already-contiguous ``int64``/``float64`` buffer).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from typing import Dict, Optional

import numpy as np

from repro.errors import FormatError, ValidationError
from repro.formats.base import FORMAT_IDS, SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hdc import HDCMatrix
from repro.formats.hyb import HYBMatrix

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "container_arrays",
    "container_fingerprint",
    "load_container",
    "save_container",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Defining attribute arrays per leaf format, in fingerprint order.
_LEAF_ARRAYS = {
    "COO": ("row", "col", "data"),
    "CSR": ("row_ptr", "col_idx", "data"),
    "DIA": ("offsets", "data"),
    "ELL": ("col_idx", "data"),
}

#: Composite formats: (attribute, nested format) pairs, in order.
_COMPOSITES = {
    "HYB": (("ell", "ELL"), ("coo", "COO")),
    "HDC": (("dia", "DIA"), ("csr", "CSR")),
}

#: Separator between a composite prefix and a nested array name.
_SEP = "__"


def container_arrays(matrix: SparseMatrix) -> Dict[str, np.ndarray]:
    """The flattened ``name -> defining array`` map of *matrix*.

    Composite formats contribute their sub-blocks under a prefix
    (``ell__data``, ``csr__row_ptr``, ...).  Iteration order is
    deterministic — it is the fingerprint and file-write order.
    """
    fmt = matrix.format.upper()
    if fmt in _LEAF_ARRAYS:
        return {name: getattr(matrix, name) for name in _LEAF_ARRAYS[fmt]}
    if fmt in _COMPOSITES:
        out: Dict[str, np.ndarray] = {}
        for attr, sub_fmt in _COMPOSITES[fmt]:
            block = getattr(matrix, attr)
            for name in _LEAF_ARRAYS[sub_fmt]:
                out[f"{attr}{_SEP}{name}"] = getattr(block, name)
        return out
    raise FormatError(f"cannot persist unknown format {matrix.format!r}")


def container_fingerprint(matrix: SparseMatrix) -> str:
    """blake2b-128 content fingerprint of a container.

    Covers the format, the shape, and every defining array's dtype,
    shape and raw bytes — two containers share a fingerprint iff they
    are bitwise-identical in layout and content.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(
        f"{matrix.format}:{matrix.nrows}x{matrix.ncols}:".encode()
    )
    for name, arr in container_arrays(matrix).items():
        digest.update(
            f"{name}:{arr.dtype.str}:{arr.shape}:".encode()
        )
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def save_container(
    matrix: SparseMatrix, directory: str, *, extra: Optional[dict] = None
) -> dict:
    """Persist *matrix* into *directory* atomically; returns the manifest.

    The entry is built in a hidden temp sibling and renamed into place
    (same-filesystem rename is atomic), so concurrent readers observe
    either nothing or the complete entry.  If *directory* already
    exists it is replaced.  *extra* is stored verbatim in the manifest
    under ``"extra"`` — the tier uses it for decision metadata.
    """
    fmt = matrix.format.upper()
    if fmt not in FORMAT_IDS:
        raise FormatError(f"cannot persist unknown format {matrix.format!r}")
    arrays = container_arrays(matrix)
    manifest = {
        "version": MANIFEST_VERSION,
        "format": fmt,
        "nrows": matrix.nrows,
        "ncols": matrix.ncols,
        "nnz": int(matrix.nnz),
        "nbytes": int(matrix.nbytes()),
        "epoch": int(matrix.epoch),
        "stable_id": matrix.stable_id if matrix.has_identity else None,
        "fingerprint": container_fingerprint(matrix),
        "arrays": {
            name: {"dtype": arr.dtype.str, "shape": list(arr.shape)}
            for name, arr in arrays.items()
        },
        "extra": dict(extra or {}),
    }
    parent = os.path.dirname(os.path.abspath(directory)) or "."
    os.makedirs(parent, exist_ok=True)
    tmp = tempfile.mkdtemp(prefix=".tier-", dir=parent)
    try:
        for name, arr in arrays.items():
            np.save(
                os.path.join(tmp, f"{name}.npy"),
                np.ascontiguousarray(arr),
                allow_pickle=False,
            )
        with open(os.path.join(tmp, MANIFEST_NAME), "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        if os.path.isdir(directory):
            shutil.rmtree(directory)
        os.rename(tmp, directory)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return manifest


def read_manifest(directory: str) -> dict:
    """Load and sanity-check a persisted entry's manifest."""
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "r") as fh:
        manifest = json.load(fh)
    if manifest.get("version") != MANIFEST_VERSION:
        raise ValidationError(
            f"unsupported tier manifest version {manifest.get('version')!r} "
            f"in {path} (expected {MANIFEST_VERSION})"
        )
    if manifest.get("format") not in FORMAT_IDS:
        raise ValidationError(
            f"tier manifest {path} names unknown format "
            f"{manifest.get('format')!r}"
        )
    return manifest


def _load_arrays(
    directory: str, manifest: dict, *, mmap: bool
) -> Dict[str, np.ndarray]:
    mode = "r" if mmap else None
    arrays: Dict[str, np.ndarray] = {}
    for name, spec in manifest["arrays"].items():
        arr = np.load(
            os.path.join(directory, f"{name}.npy"),
            mmap_mode=mode,
            allow_pickle=False,
        )
        if arr.dtype.str != spec["dtype"] or list(arr.shape) != spec["shape"]:
            raise ValidationError(
                f"tier entry {directory} array {name!r} does not match its "
                f"manifest: {arr.dtype.str}{arr.shape} vs "
                f"{spec['dtype']}{tuple(spec['shape'])}"
            )
        arrays[name] = arr
    return arrays


def _build(fmt: str, nrows: int, ncols: int, arrays: Dict[str, np.ndarray]):
    if fmt == "COO":
        # persisted COO came from a frozen container: already canonical
        return COOMatrix(
            nrows, ncols, arrays["row"], arrays["col"], arrays["data"],
            canonical=True,
        )
    if fmt == "CSR":
        return CSRMatrix(
            nrows, ncols, arrays["row_ptr"], arrays["col_idx"], arrays["data"]
        )
    if fmt == "DIA":
        return DIAMatrix(nrows, ncols, arrays["offsets"], arrays["data"])
    if fmt == "ELL":
        return ELLMatrix(nrows, ncols, arrays["col_idx"], arrays["data"])
    if fmt == "HYB":
        return HYBMatrix(
            _build("ELL", nrows, ncols, _sub(arrays, "ell")),
            _build("COO", nrows, ncols, _sub(arrays, "coo")),
        )
    if fmt == "HDC":
        return HDCMatrix(
            _build("DIA", nrows, ncols, _sub(arrays, "dia")),
            _build("CSR", nrows, ncols, _sub(arrays, "csr")),
        )
    raise FormatError(f"cannot load unknown format {fmt!r}")


def _sub(arrays: Dict[str, np.ndarray], prefix: str) -> Dict[str, np.ndarray]:
    tag = prefix + _SEP
    return {
        name[len(tag):]: arr
        for name, arr in arrays.items()
        if name.startswith(tag)
    }


def load_container(
    directory: str, *, mmap: bool = True, verify: bool = False
) -> SparseMatrix:
    """Re-attach a persisted container from *directory*.

    With ``mmap=True`` (the default) every defining array is a
    read-only ``np.load(..., mmap_mode="r")`` view — nothing is read
    until a kernel touches it, so a promoted container costs pages, not
    resident bytes.  The arrays pass through the normal validating
    constructors, which never copy an already-contiguous buffer of the
    right dtype; the round trip is bitwise-stable.

    ``verify=True`` recomputes the content fingerprint (reads every
    byte) and raises :class:`ValidationError` on mismatch.
    """
    manifest = read_manifest(directory)
    arrays = _load_arrays(directory, manifest, mmap=mmap)
    matrix = _build(
        manifest["format"], manifest["nrows"], manifest["ncols"], arrays
    )
    # restore the epoch identity so (stable_id, epoch) cache keys keep
    # resolving to the same version after a demote/promote round trip
    if manifest.get("stable_id"):
        matrix._stable_id = manifest["stable_id"]
    matrix._epoch = int(manifest.get("epoch", 0))
    if verify:
        actual = container_fingerprint(matrix)
        if actual != manifest["fingerprint"]:
            raise ValidationError(
                f"tier entry {directory} failed fingerprint verification: "
                f"{actual} != {manifest['fingerprint']}"
            )
    return matrix
