"""Memory-tiered matrix storage: the disk tier of the serving stack.

Everything above this package treats RAM as the only home a container
can have; :mod:`repro.storage` turns the filesystem into a second tier
of the memory hierarchy instead of a cliff:

* :mod:`repro.storage.persist` — one-directory-per-container ``.npy``
  persistence with a ``manifest.json``, blake2b content fingerprints,
  atomic publication, and zero-copy re-attachment via
  ``np.load(..., mmap_mode="r")`` (the D-MMVAE ``load_npz`` handoff
  idiom, generalised to all six registered formats including the
  nested HYB/HDC composites).
* :mod:`repro.storage.tier` — the :class:`StorageTier` demote/promote
  store the engine cache spills cold converted containers into; round
  trips are bitwise-stable and the residency/traffic counters feed the
  ``repro.obs`` registry.
* :mod:`repro.storage.stream` — row-block streaming SpMV/SpMM over
  mmapped CSR arrays: cache-sized row panels driven through the same
  ``(operation, format, backend)`` kernel registry as the in-RAM path,
  producing bitwise-identical results for matrices larger than RAM.
"""

from repro.storage.persist import (
    container_arrays,
    container_fingerprint,
    load_container,
    save_container,
)
from repro.storage.stream import (
    iter_row_blocks,
    plan_block_rows,
    streaming_spmm,
    streaming_spmv,
)
from repro.storage.tier import StorageTier, TierEntry

__all__ = [
    "StorageTier",
    "TierEntry",
    "container_arrays",
    "container_fingerprint",
    "iter_row_blocks",
    "load_container",
    "plan_block_rows",
    "save_container",
    "streaming_spmm",
    "streaming_spmv",
]
