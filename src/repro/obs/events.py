"""Structured event ring: diagnosable incidents, not just counters.

The serving tiers used to reduce every incident to a counter bump — an
observer raising emitted ``observer_errors += 1`` and the exception
vanished.  :class:`EventRing` is the shared sink for **structured**
incident records: each event carries a kind, a wall timestamp, a
monotonically increasing ``seq``, and whatever diagnostic fields the
emitter attaches (exception type, fingerprint, batch size, worker
index).  Like the span ring it is bounded and drained incrementally to
``events.jsonl`` by the spiller; per-kind tallies survive ring eviction
so ``counts()`` is always the full history.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List

__all__ = ["EventRing"]


class EventRing:
    """Bounded ring of structured events with per-kind lifetime counts."""

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = int(capacity)
        self._ring: "deque[Dict[str, object]]" = deque(maxlen=self.capacity)
        self._counts: Dict[str, int] = {}
        self._seq = 0
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields) -> Dict[str, object]:
        event: Dict[str, object] = {"kind": kind, "ts": time.time()}
        event.update(fields)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._ring.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
        return event

    def tail(self, n: int = 50) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._ring)[-int(n):]

    def drain_since(self, seq: int) -> List[Dict[str, object]]:
        """Events emitted after *seq*, oldest first (for the spiller)."""
        with self._lock:
            return [e for e in self._ring if e["seq"] > seq]

    def counts(self) -> Dict[str, int]:
        """Lifetime per-kind tallies (survive ring eviction)."""
        with self._lock:
            return dict(self._counts)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
