"""Typed metrics registry: counters, gauges, log-bucket histograms.

The runtime stack's accounting used to live in hand-assembled per-tier
``stats()`` dicts — every tier re-built the same schema by hand and the
only latency aggregates were total/mean/max.  This module is the one
place metrics now live:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — typed,
  thread-safe instruments.  Histograms use **fixed log-scale buckets**
  (factor-2 bounds, microseconds to tens of seconds by default), so
  p50/p99 come out of plain integer bucket counts with no dependency
  and no per-observation allocation;
* :class:`MetricsRegistry` — the named instrument table every layer
  (service, gateway, workers-via-fold, adaptive controller) registers
  into, plus *collector* callbacks that refresh gauges from live
  structures (engine caches, supervisors) at dump time only — render
  cost never rides the request path;
* exposition: :meth:`MetricsRegistry.dump` is the single source dump;
  :func:`render_prometheus` and the JSONL spiller both serialise that
  same dump, so the two formats can never disagree on a value.

Label support is deliberately small: an instrument is keyed by
``(name, labels)`` where *labels* is a frozen item tuple — enough for
per-backend / per-worker attribution without a cardinality footgun.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "bucket_quantile",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "merge_histogram_dumps",
    "MetricsRegistry",
    "render_prometheus",
]

#: Factor-2 log-scale bucket upper bounds: 1 µs .. ~16.8 s (25 buckets
#: plus the implicit overflow bucket).  Wide enough for every latency
#: this stack measures, fixed so histograms merge across processes.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 2**i for i in range(25))

LabelItems = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Dict[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (ints or float seconds)."""

    kind = "counter"

    __slots__ = ("name", "labels", "help", "_value", "_lock")

    def __init__(
        self, name: str, labels: LabelItems = (), help: str = ""
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def dump(self) -> Dict[str, object]:
        return {"value": self.value}


class Gauge:
    """Point-in-time value; :meth:`set_max` keeps a running maximum."""

    kind = "gauge"

    __slots__ = ("name", "labels", "help", "_value", "_lock")

    def __init__(
        self, name: str, labels: LabelItems = (), help: str = ""
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def set_max(self, value) -> None:
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self):
        with self._lock:
            return self._value

    def dump(self) -> Dict[str, object]:
        return {"value": self.value}


class Histogram:
    """Fixed log-scale bucket histogram; quantiles from bucket counts.

    ``bounds`` are *upper* bucket bounds; observations above the last
    bound land in an implicit overflow bucket whose quantile estimate is
    the observed maximum.  :meth:`quantile` interpolates linearly inside
    the winning bucket — with factor-2 bounds the estimate is within 2x
    of the true value, which is what a latency dashboard needs.
    """

    kind = "histogram"

    __slots__ = (
        "name",
        "labels",
        "help",
        "bounds",
        "_counts",
        "_count",
        "_sum",
        "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        help: str = "",
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds = tuple(bounds) if bounds is not None else LATENCY_BUCKETS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram {name} bounds must be sorted")
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max_value(self) -> float:
        with self._lock:
            return self._max

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (``0 < q <= 1``) from the buckets."""
        with self._lock:
            counts = list(self._counts)
            observed_max = self._max
        return bucket_quantile(self.bounds, counts, observed_max, q)

    def dump(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
            observed_max = self._max
        return {
            "count": total,
            "sum": total_sum,
            "max": observed_max,
            "bounds": list(self.bounds),
            "counts": counts,
            "p50": bucket_quantile(self.bounds, counts, observed_max, 0.50),
            "p99": bucket_quantile(self.bounds, counts, observed_max, 0.99),
        }


def bucket_quantile(bounds, counts, observed_max: float, q: float) -> float:
    """The *q*-quantile of a bucketed distribution, interpolated.

    Shared by live :class:`Histogram` instances and the dashboard (which
    re-derives quantiles from spilled dumps) so both report the same
    number for the same buckets.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= target:
            lo = bounds[index - 1] if index > 0 else 0.0
            hi = bounds[index] if index < len(bounds) else observed_max
            fraction = (target - cumulative) / bucket_count
            estimate = lo + fraction * (max(hi, lo) - lo)
            # the winning bucket's upper bound can exceed the largest
            # value actually observed; a quantile must not
            if observed_max > 0:
                estimate = min(estimate, observed_max)
            return estimate
        cumulative += bucket_count
    return observed_max


def merge_histogram_dumps(dumps) -> Dict[str, object]:
    """Merge :meth:`Histogram.dump` dicts into one aggregate dump.

    Because every histogram uses *fixed* bucket bounds, merging is
    exact at the bucket level: counts add element-wise, so quantiles of
    the merged dump are precisely what one histogram observing the
    union of all observations would report.  This is how the
    distributed gateway folds worker-side latency buckets (shipped in
    heartbeat snapshots) into fleet p50/p99 without ever sampling —
    mean-of-means and max-of-p99s are both wrong; merged buckets are
    not.

    Dumps with mismatching bounds raise ``ValueError``; empty or
    falsy dumps are skipped.  Merging nothing returns a zeroed dump
    over :data:`LATENCY_BUCKETS`.
    """
    bounds: Optional[List[float]] = None
    counts: Optional[List[int]] = None
    total = 0
    total_sum = 0.0
    observed_max = 0.0
    for dump in dumps:
        if not dump:
            continue
        dump_bounds = list(dump["bounds"])
        if bounds is None:
            bounds = dump_bounds
            counts = [0] * (len(bounds) + 1)
        elif dump_bounds != bounds:
            raise ValueError(
                "cannot merge histogram dumps with differing bounds"
            )
        dump_counts = list(dump["counts"])
        if len(dump_counts) != len(counts):
            raise ValueError(
                "histogram dump counts length does not match bounds"
            )
        for index, bucket_count in enumerate(dump_counts):
            counts[index] += int(bucket_count)
        total += int(dump["count"])
        total_sum += float(dump["sum"])
        observed_max = max(observed_max, float(dump["max"]))
    if bounds is None:
        bounds = list(LATENCY_BUCKETS)
        counts = [0] * (len(bounds) + 1)
    return {
        "count": total,
        "sum": total_sum,
        "max": observed_max,
        "bounds": bounds,
        "counts": counts,
        "p50": bucket_quantile(bounds, counts, observed_max, 0.50),
        "p99": bucket_quantile(bounds, counts, observed_max, 0.99),
    }


class MetricsRegistry:
    """Named instrument table plus dump-time collectors.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    for an existing ``(name, labels)`` pair returns the existing
    instrument (asking with a different type raises).  Collectors are
    callables invoked with the registry at :meth:`dump` time — the hook
    live structures (engine cache, supervisor, shm pool) use to publish
    gauges without paying anything on the request path.
    """

    def __init__(self, *, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------
    def _get_or_create(self, cls, name, labels, help, **kwargs):
        key = (name, _freeze_labels(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], help=help, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(
        self,
        name: str,
        *,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self,
        name: str,
        *,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        *,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, help, bounds=bounds
        )

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Run *collector(registry)* before every dump (gauge refresh)."""
        with self._lock:
            self._collectors.append(collector)

    # -- exposition ----------------------------------------------------
    def dump(self) -> List[Dict[str, object]]:
        """One JSON-serialisable record per instrument, sorted by name.

        This is the **single** source both exposition formats render
        from: :func:`render_prometheus` and the JSONL spiller serialise
        the same dump, so their values are identical by construction.
        """
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector(self)
            except Exception:
                pass  # a broken collector must not break exposition
        with self._lock:
            metrics = list(self._metrics.values())
        records = [
            {
                "name": metric.name,
                "type": metric.kind,
                "help": metric.help,
                "labels": dict(metric.labels),
                **metric.dump(),
            }
            for metric in metrics
        ]
        records.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return records

    def render_prometheus(self) -> str:
        return render_prometheus(self.dump(), namespace=self.namespace)

    def snapshot_line(self, *, timestamp: float) -> str:
        """One JSONL line carrying the full dump (the spill format)."""
        return json.dumps(
            {"ts": timestamp, "metrics": self.dump()},
            separators=(",", ":"),
            default=str,
        )


def _prom_name(namespace: str, name: str) -> str:
    cleaned = name.replace(".", "_").replace("-", "_")
    if namespace and not cleaned.startswith(namespace + "_"):
        cleaned = f"{namespace}_{cleaned}"
    return cleaned


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(
    records: List[Dict[str, object]], *, namespace: str = "repro"
) -> str:
    """Prometheus text exposition of a :meth:`MetricsRegistry.dump`.

    Rendering from the dump (not the live registry) is what pins the
    text and JSONL formats to identical values: callers dump once and
    feed both serialisers the same records.
    """
    lines: List[str] = []
    seen_headers = set()
    for record in records:
        name = _prom_name(namespace, str(record["name"]))
        kind = record["type"]
        labels = dict(record.get("labels", {}))
        if name not in seen_headers:
            seen_headers.add(name)
            if record.get("help"):
                lines.append(f"# HELP {name} {record['help']}")
            lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            cumulative = 0
            bounds = list(record["bounds"])
            counts = list(record["counts"])
            for bound, count in zip(bounds, counts[:-1]):
                cumulative += count
                le = _prom_labels(labels, f'le="{bound:.6g}"')
                lines.append(f"{name}_bucket{le} {cumulative}")
            cumulative += counts[-1]
            le = _prom_labels(labels, 'le="+Inf"')
            lines.append(f"{name}_bucket{le} {cumulative}")
            lines.append(
                f"{name}_sum{_prom_labels(labels)} {record['sum']:.9g}"
            )
            lines.append(f"{name}_count{_prom_labels(labels)} {cumulative}")
        else:
            suffix = "_total" if kind == "counter" else ""
            value = record["value"]
            rendered = f"{value:.9g}" if isinstance(value, float) else value
            lines.append(
                f"{name}{suffix}{_prom_labels(labels)} {rendered}"
            )
    return "\n".join(lines) + "\n"
