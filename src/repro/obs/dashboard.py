"""``repro top`` — render a serve's spill directory as a live dashboard.

Reads only the files :class:`~repro.obs.spill.MetricsSpiller` writes
(``metrics.jsonl``, ``spans.jsonl``, ``events.jsonl``, ``meta.json``) —
never the serving process itself — so it can watch any running serve,
follow a finished one post-mortem, or run in CI with ``--once``.

Throughput is the requests-served delta between the last two metric
snapshots; p50/p99 are re-derived from the spilled histogram buckets
with the same :func:`~repro.obs.metrics.bucket_quantile` the live
histograms use, so the dashboard and ``stats()`` always agree.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.obs.metrics import bucket_quantile

__all__ = ["read_snapshots", "render_top", "run_top"]

_TAIL_BYTES = 1 << 20  # read at most the last 1 MiB of a jsonl file


def _read_one_jsonl_tail(path: str, limit: int) -> List[Dict[str, object]]:
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            if size > _TAIL_BYTES:
                fh.seek(size - _TAIL_BYTES)
                fh.readline()  # drop the partial first line
            raw = fh.read().decode("utf-8", "replace")
    except OSError:
        return []
    records = []
    for line in raw.splitlines()[-limit:]:
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # a line mid-append; the next tick completes it
    return records


def _read_jsonl_tail(path: str, limit: int) -> List[Dict[str, object]]:
    """Last *limit* records of a spilled jsonl, spanning rotations.

    The spiller rotates ``name`` to ``name.1`` (``.1`` to ``.2``, …)
    when it hits its retention cap; a tail window that lands just after
    a shift would otherwise shrink to the few lines of the fresh active
    file, so the remainder is filled by walking back through the
    numbered segments, newest first.
    """
    records = _read_one_jsonl_tail(path, limit)
    segment = 1
    while len(records) < limit:
        older = _read_one_jsonl_tail(
            f"{path}.{segment}", limit - len(records)
        )
        if not older:
            break
        records = older + records
        segment += 1
    return records


def read_snapshots(directory: str, *, last: int = 2):
    """The spill directory's tail: meta, metric snapshots, spans, events."""
    meta: Dict[str, object] = {}
    try:
        with open(os.path.join(directory, "meta.json")) as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError):
        pass
    return {
        "meta": meta,
        "metrics": _read_jsonl_tail(
            os.path.join(directory, "metrics.jsonl"), last
        ),
        "spans": _read_jsonl_tail(os.path.join(directory, "spans.jsonl"), 12),
        "events": _read_jsonl_tail(
            os.path.join(directory, "events.jsonl"), 6
        ),
    }


def _by_name(records) -> Dict[str, List[Dict[str, object]]]:
    table: Dict[str, List[Dict[str, object]]] = {}
    for record in records:
        table.setdefault(str(record.get("name")), []).append(record)
    return table


def _value(table, name: str, **labels) -> Optional[float]:
    for record in table.get(name, ()):
        record_labels = record.get("labels", {})
        if all(record_labels.get(k) == v for k, v in labels.items()):
            return record.get("value")
    return None


def _sum_values(table, name: str) -> float:
    return sum(
        float(r.get("value", 0) or 0) for r in table.get(name, ())
    )


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def render_top(directory: str, *, now: Optional[float] = None) -> str:
    """One full dashboard frame as text (the ``repro top`` body)."""
    snap = read_snapshots(directory)
    now = time.time() if now is None else now
    lines: List[str] = []
    meta = snap["meta"]
    metric_lines = snap["metrics"]
    if not metric_lines:
        return (
            f"repro top — {directory}\n"
            "  no metrics.jsonl yet (is the serve running with "
            "--metrics-dir?)\n"
        )
    latest = metric_lines[-1]
    table = _by_name(latest["metrics"])
    age = now - float(latest.get("ts", now))
    uptime = now - float(meta.get("started_at", now))
    lines.append(
        f"repro top — {meta.get('tier', '?')} tier, "
        f"pid {meta.get('pid', '?')}, up {uptime:.0f}s, "
        f"snapshot {age:.1f}s old"
    )
    lines.append("")

    # -- throughput + latency per tier ---------------------------------
    previous_table = (
        _by_name(metric_lines[-2]["metrics"])
        if len(metric_lines) > 1
        else None
    )
    lines.append(
        f"{'tier':<14}{'served':>10}{'req/s':>10}{'p50':>10}"
        f"{'p99':>10}{'max':>10}"
    )
    for record in table.get("requests_served", ()):
        tier = record.get("labels", {}).get("tier", "?")
        served = float(record.get("value", 0))
        rate = "-"
        if previous_table is not None:
            prev = _value(previous_table, "requests_served", tier=tier)
            dt = float(latest["ts"]) - float(metric_lines[-2]["ts"])
            if prev is not None and dt > 0:
                rate = f"{(served - float(prev)) / dt:.1f}"
        p50 = p99 = hist_max = None
        for hist in table.get("request_latency_seconds", ()):
            if hist.get("labels", {}).get("tier") == tier:
                counts = list(hist.get("counts", ()))
                bounds = list(hist.get("bounds", ()))
                hist_max = float(hist.get("max", 0.0))
                p50 = bucket_quantile(bounds, counts, hist_max, 0.50)
                p99 = bucket_quantile(bounds, counts, hist_max, 0.99)
        lines.append(
            f"{tier:<14}{served:>10.0f}{rate:>10}"
            f"{_fmt_seconds(p50):>10}{_fmt_seconds(p99):>10}"
            f"{_fmt_seconds(hist_max):>10}"
        )
    lines.append("")

    # -- cache + coalescing --------------------------------------------
    hits = _sum_values(table, "engine_cache_hits")
    misses = _sum_values(table, "engine_cache_misses")
    lookups = hits + misses
    hit_rate = f"{hits / lookups:.1%}" if lookups else "-"
    lines.append(
        "cache          "
        f"hits {hits:.0f}  misses {misses:.0f}  hit-rate {hit_rate}  "
        f"evictions {_sum_values(table, 'engine_cache_evictions'):.0f}"
    )
    lines.append(
        "coalescing     "
        f"batches {_sum_values(table, 'batches'):.0f}  "
        f"coalesced {_sum_values(table, 'coalesced_requests'):.0f} req in "
        f"{_sum_values(table, 'coalesced_batches'):.0f} batches"
    )

    # -- backend attribution -------------------------------------------
    backends = table.get("backend_requests", ())
    if backends:
        parts = []
        for record in sorted(
            backends, key=lambda r: -float(r.get("value", 0))
        ):
            backend = record.get("labels", {}).get("backend", "?")
            parts.append(f"{backend} {float(record.get('value', 0)):.0f}")
        lines.append("backends       " + "  ".join(parts))

    # -- worker liveness (distributed tier only) -----------------------
    alive = _value(table, "workers_alive")
    if alive is not None:
        ages = [
            (
                r.get("labels", {}).get("worker", "?"),
                float(r.get("value", 0)),
            )
            for r in table.get("worker_snapshot_age_seconds", ())
        ]
        age_text = "  ".join(
            f"w{worker}:{age:.1f}s" for worker, age in sorted(ages)
        )
        lines.append(
            f"workers        {alive:.0f} alive  "
            f"respawns {_sum_values(table, 'worker_respawns'):.0f}  "
            f"retried {_sum_values(table, 'retried_requests'):.0f}  "
            f"snapshot-age {age_text or '-'}"
        )

    # -- drift state (adaptive tier only) ------------------------------
    drift = _value(table, "drift_events")
    if drift is not None:
        lines.append(
            f"adaptive       drift-events {drift:.0f}  "
            f"retrains {_sum_values(table, 'retrains'):.0f}  "
            f"promotions {_sum_values(table, 'model_promotions'):.0f}  "
            f"rollbacks {_sum_values(table, 'rollbacks'):.0f}"
        )
    lines.append("")

    # -- recent spans ---------------------------------------------------
    spans = snap["spans"]
    if spans:
        lines.append(
            f"{'trace':<20}{'kind':<8}{'tier':<10}{'batch':>6}"
            f"{'total':>10}  slowest stage"
        )
        for span in spans[-8:]:
            stages = span.get("stages", {}) or {}
            total = sum(float(v) for v in stages.values())
            slowest = (
                max(stages.items(), key=lambda kv: float(kv[1]))
                if stages
                else ("-", 0.0)
            )
            lines.append(
                f"{str(span.get('trace', '?')):<20}"
                f"{str(span.get('kind', '?')):<8}"
                f"{str(span.get('tier', '?')):<10}"
                f"{int(span.get('batch_size', 1)):>6}"
                f"{_fmt_seconds(total):>10}  "
                f"{slowest[0]} {_fmt_seconds(float(slowest[1]))}"
            )
    events = snap["events"]
    if events:
        lines.append("")
        lines.append("recent events")
        for event in events:
            fields = {
                k: v
                for k, v in event.items()
                if k not in ("kind", "ts", "seq")
            }
            summary = "  ".join(f"{k}={v}" for k, v in fields.items())
            lines.append(f"  {event.get('kind', '?'):<18} {summary}")
    return "\n".join(lines) + "\n"


def run_top(
    directory: str,
    *,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    stream=None,
    clear: bool = True,
) -> None:
    """Render the dashboard every *interval* seconds.

    ``iterations=None`` follows forever (Ctrl-C to stop); an explicit
    count renders that many frames and returns — the CI / test mode.
    """
    stream = stream if stream is not None else sys.stdout
    count = 0
    try:
        while iterations is None or count < iterations:
            frame = render_top(directory)
            if clear and iterations is None:
                stream.write("\x1b[2J\x1b[H")
            stream.write(frame)
            stream.flush()
            count += 1
            if iterations is not None and count >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
