"""Periodic spill of the observability state to a directory.

``repro serve --metrics-dir DIR`` attaches a :class:`MetricsSpiller` to
the serving process; every ``interval`` seconds it writes:

* ``metrics.prom`` — Prometheus-style text exposition, written to a
  temp file and atomically replaced, so a scraper (or ``repro top``)
  never reads a torn file;
* ``metrics.jsonl`` — one appended line per tick carrying the **same**
  registry dump the text file was rendered from (identical values by
  construction; the dashboard diffs consecutive lines for throughput);
* ``spans.jsonl`` / ``events.jsonl`` — incremental drains of the span
  and event rings (each record appended exactly once);
* ``meta.json`` — written once: pid, tier, start time, interval.

The spiller is read-only with respect to serving: it runs on its own
daemon thread, touches only the registry/ring snapshots, and a crash in
one tick is swallowed (spilling must never take the service down).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Optional

from repro.obs import Observability
from repro.obs.metrics import render_prometheus

__all__ = ["MetricsSpiller"]


class MetricsSpiller:
    """Spill one :class:`~repro.obs.Observability` bundle to *directory*."""

    def __init__(
        self,
        directory: str,
        obs: Observability,
        *,
        interval: float = 1.0,
    ) -> None:
        self.directory = str(directory)
        self.obs = obs
        self.interval = float(interval)
        self._span_seq = 0
        self._event_seq = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        os.makedirs(self.directory, exist_ok=True)
        self._write_meta()

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def _write_meta(self) -> None:
        meta = {
            "pid": os.getpid(),
            "tier": self.obs.tier,
            "started_at": time.time(),
            "interval_seconds": self.interval,
        }
        with open(self._path("meta.json"), "w") as fh:
            json.dump(meta, fh, indent=2)
            fh.write("\n")

    # -- one tick ------------------------------------------------------
    def write_once(self) -> None:
        """Write one complete spill tick (also the final flush on stop)."""
        records = self.obs.registry.dump()
        now = time.time()
        # prom text and the JSONL line render the SAME dump: the two
        # exposition formats cannot disagree on a value
        text = render_prometheus(
            records, namespace=self.obs.registry.namespace
        )
        tmp = self._path("metrics.prom.tmp")
        with open(tmp, "w") as fh:
            fh.write(text)
        os.replace(tmp, self._path("metrics.prom"))
        line = json.dumps(
            {"ts": now, "metrics": records},
            separators=(",", ":"),
            default=str,
        )
        with open(self._path("metrics.jsonl"), "a") as fh:
            fh.write(line + "\n")
        self._append_ring(
            "spans.jsonl", self.obs.spans.drain_since(self._span_seq)
        )
        self._append_ring(
            "events.jsonl", self.obs.events.drain_since(self._event_seq)
        )

    def _append_ring(self, name: str, records) -> None:
        if not records:
            return
        with open(self._path(name), "a") as fh:
            for record in records:
                fh.write(
                    json.dumps(record, separators=(",", ":"), default=str)
                    + "\n"
                )
        if name == "spans.jsonl":
            self._span_seq = records[-1]["seq"]
        else:
            self._event_seq = records[-1]["seq"]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "MetricsSpiller":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name="repro-metrics-spiller", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.write_once()
            except Exception:
                pass  # spilling must never take the service down

    def stop(self) -> None:
        """Stop the thread and flush one final complete tick."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        try:
            self.write_once()
        except Exception:
            pass

    def __enter__(self) -> "MetricsSpiller":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
