"""Periodic spill of the observability state to a directory.

``repro serve --metrics-dir DIR`` attaches a :class:`MetricsSpiller` to
the serving process; every ``interval`` seconds it writes:

* ``metrics.prom`` — Prometheus-style text exposition, written to a
  temp file and atomically replaced, so a scraper (or ``repro top``)
  never reads a torn file;
* ``metrics.jsonl`` — one appended line per tick carrying the **same**
  registry dump the text file was rendered from (identical values by
  construction; the dashboard diffs consecutive lines for throughput);
* ``spans.jsonl`` / ``events.jsonl`` — incremental drains of the span
  and event rings (each record appended exactly once);
* ``meta.json`` — written once: pid, tier, start time, interval.

The appended jsonl files grow without bound on a long-lived serve, so
the spiller supports logrotate-style retention: when an append would
push a file past ``retention_bytes``, the file is shifted to ``.1``
(``.1`` to ``.2`` and so on, the oldest segment dropped) and the append
lands in a fresh active file.  Readers that want a window spanning the
rotation boundary (``repro top``, ``repro metrics``) read the active
file plus the ``.1`` segment — see
:func:`repro.obs.dashboard.read_snapshots`.

The spiller is read-only with respect to serving: it runs on its own
daemon thread, touches only the registry/ring snapshots, and a crash in
one tick is swallowed (spilling must never take the service down).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Optional

from repro.obs import Observability
from repro.obs.metrics import render_prometheus

__all__ = ["MetricsSpiller"]


class MetricsSpiller:
    """Spill one :class:`~repro.obs.Observability` bundle to *directory*."""

    def __init__(
        self,
        directory: str,
        obs: Observability,
        *,
        interval: float = 1.0,
        retention_bytes: Optional[int] = None,
        retention_segments: int = 4,
    ) -> None:
        self.directory = str(directory)
        self.obs = obs
        self.interval = float(interval)
        self.retention_bytes = (
            int(retention_bytes) if retention_bytes else None
        )
        self.retention_segments = max(1, int(retention_segments))
        self._span_seq = 0
        self._event_seq = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        os.makedirs(self.directory, exist_ok=True)
        self._write_meta()

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def _write_meta(self) -> None:
        meta = {
            "pid": os.getpid(),
            "tier": self.obs.tier,
            "started_at": time.time(),
            "interval_seconds": self.interval,
            "retention_bytes": self.retention_bytes,
            "retention_segments": self.retention_segments,
        }
        with open(self._path("meta.json"), "w") as fh:
            json.dump(meta, fh, indent=2)
            fh.write("\n")

    # -- one tick ------------------------------------------------------
    def write_once(self) -> None:
        """Write one complete spill tick (also the final flush on stop)."""
        records = self.obs.registry.dump()
        now = time.time()
        # prom text and the JSONL line render the SAME dump: the two
        # exposition formats cannot disagree on a value
        text = render_prometheus(
            records, namespace=self.obs.registry.namespace
        )
        tmp = self._path("metrics.prom.tmp")
        with open(tmp, "w") as fh:
            fh.write(text)
        os.replace(tmp, self._path("metrics.prom"))
        line = json.dumps(
            {"ts": now, "metrics": records},
            separators=(",", ":"),
            default=str,
        )
        self._append_lines("metrics.jsonl", [line])
        self._append_ring(
            "spans.jsonl", self.obs.spans.drain_since(self._span_seq)
        )
        self._append_ring(
            "events.jsonl", self.obs.events.drain_since(self._event_seq)
        )

    def _rotate(self, name: str) -> None:
        """Shift ``name`` into numbered segments, dropping the oldest.

        ``name.K-1`` becomes ``name.K`` and so on down to ``name`` itself
        becoming ``name.1`` — the same shift ``logrotate`` performs, so
        total disk use is bounded by roughly
        ``retention_bytes * (retention_segments + 1)`` per file.
        """
        path = self._path(name)
        oldest = f"{path}.{self.retention_segments}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.retention_segments - 1, 0, -1):
            segment = f"{path}.{index}"
            if os.path.exists(segment):
                os.replace(segment, f"{path}.{index + 1}")
        if os.path.exists(path):
            os.replace(path, f"{path}.1")

    def _append_lines(self, name: str, lines) -> None:
        if self.retention_bytes is not None:
            try:
                if os.path.getsize(self._path(name)) >= self.retention_bytes:
                    self._rotate(name)
            except OSError:
                pass  # no active file yet: nothing to rotate
        with open(self._path(name), "a") as fh:
            for line in lines:
                fh.write(line + "\n")

    def _append_ring(self, name: str, records) -> None:
        if not records:
            return
        self._append_lines(
            name,
            (
                json.dumps(record, separators=(",", ":"), default=str)
                for record in records
            ),
        )
        if name == "spans.jsonl":
            self._span_seq = records[-1]["seq"]
        else:
            self._event_seq = records[-1]["seq"]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "MetricsSpiller":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name="repro-metrics-spiller", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.write_once()
            except Exception:
                pass  # spilling must never take the service down

    def stop(self) -> None:
        """Stop the thread and flush one final complete tick."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        try:
            self.write_once()
        except Exception:
            pass

    def __enter__(self) -> "MetricsSpiller":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
