"""The one generator of the service ``stats()`` schema.

Before this module every serving tier hand-assembled its own ``stats()``
dict and a convention test (``test_stats_schema.py``) policed that the
schemas had not drifted apart.  Now the schema exists in exactly one
place: :func:`build_service_stats` renders the common view from a
tier's :class:`~repro.obs.Observability` instruments plus the
engine-accounting blocks the tier folds itself, so in-process,
distributed, and adaptive serving are schema-identical **by
construction** — a tier cannot add, drop, or rename a common key
without every other tier getting the same change.

Tier-specific data (the distributed fleet block) hangs off its own
namespaced key *after* the common view is built, which is the one
extension point the cross-tier parity suite allows.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["build_service_stats"]


def build_service_stats(
    obs,
    *,
    space: str,
    workers: int,
    max_batch: int,
    model_info: Dict[str, object],
    engines_total: Dict[str, object],
    engine_cache: Dict[str, object],
    profiled_matrices: int,
    shadow_probes: Optional[int] = None,
) -> Dict[str, object]:
    """Render the common ``stats()`` view from a tier's instruments.

    *obs* supplies every request-path counter and the latency histogram
    (total/mean/max and the log-bucket p50/p99 all come from the same
    histogram, so they can never disagree); the caller supplies the
    engine-accounting blocks it aggregates (live + retired engines,
    cache counters, profiled-matrix count) and its deployed-model info.
    ``shadow_probes`` overrides the instrument value for tiers whose
    probes run in other processes (the gateway aggregates them from
    worker snapshots instead of counting locally).
    """
    latency = obs.latency.dump()
    served = obs.requests_served.value
    return {
        "space": space,
        "workers": workers,
        "max_batch": max_batch,
        "requests_submitted": obs.requests_submitted.value,
        "requests_served": served,
        "updates_served": obs.updates_served.value,
        "batches": obs.batches.value,
        "coalesced_batches": obs.coalesced_batches.value,
        "coalesced_requests": obs.coalesced_requests.value,
        "shadow_probes": (
            obs.shadow_probes.value
            if shadow_probes is None
            else shadow_probes
        ),
        "observer_errors": obs.observer_errors.value,
        "model": {**model_info, "promotions": obs.promotions.value},
        "latency": {
            "total_seconds": latency["sum"],
            "mean_seconds": latency["sum"] / served if served else 0.0,
            "max_seconds": latency["max"],
            "p50_seconds": latency["p50"],
            "p99_seconds": latency["p99"],
        },
        "profiled_matrices": profiled_matrices,
        "engine_cache": engine_cache,
        "engines": engines_total,
        # per-kernel-backend request counts and modelled seconds across
        # every engine the tier ever owned — the backend-attribution
        # surface dashboards and the CLI report
        "backends": {
            kb: dict(v) for kb, v in engines_total["backends"].items()
        },
        "invalidations": {
            name: engines_total["invalidations"].get(name, 0)
            for name in (
                "epoch_advances",
                "carried_forward",
                "forced_retunes",
            )
        },
        "observability": {
            "spans_recorded": obs.spans.recorded,
            "spans_dropped": obs.spans.dropped,
            "events": obs.events.counts(),
        },
    }
