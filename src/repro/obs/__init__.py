"""repro.obs — the unified observability layer.

One subsystem, three pillars, shared by every serving tier:

* **metrics** (:mod:`repro.obs.metrics`) — a typed registry of
  counters, gauges, and fixed log-bucket histograms that the service,
  gateway, workers (via accounting folds), and adaptive controller
  register into.  The hand-assembled per-tier ``stats()`` dicts are now
  *views* rendered from these instruments by one generator
  (:mod:`repro.obs.views`), and the registry dumps to Prometheus-style
  text and JSONL snapshots with identical values by construction;
* **spans** (:mod:`repro.obs.spans`) — a trace ID minted at
  ``submit()`` and propagated through coalesced batches, pickled
  control messages, shared-memory round-trips, respawn replays, and
  results, with per-stage timings in a bounded ring + JSONL spill;
* **events** (:mod:`repro.obs.events`) — structured incident records
  (observer failures, worker deaths) instead of bare counter bumps.

:class:`Observability` is the per-service facade bundling the three:
the standard request-path instruments every tier shares (so the view
generator can rely on them), the span ring, and the event ring.
``enabled=False`` turns span/event recording into no-ops — the
baseline the ``bench_service.py`` overhead gate compares against —
while the counters and histograms stay live because they *are* the
service's accounting.

The spill side lives in :mod:`repro.obs.spill` (the ``serve
--metrics-dir`` periodic writer) and :mod:`repro.obs.dashboard`
(``repro top`` / ``repro metrics`` read the spill directory back).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.events import EventRing
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    render_prometheus,
)
from repro.obs.spans import SpanRecorder, merge_worker_stages, mint_trace_id

__all__ = [
    "Counter",
    "EventRing",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "Observability",
    "SpanRecorder",
    "bucket_quantile",
    "merge_worker_stages",
    "mint_trace_id",
    "render_prometheus",
]


class Observability:
    """Per-service observability bundle: instruments + spans + events.

    Creates the standard request-path instruments every serving tier
    shares (labelled with the tier name, so a process hosting several
    tiers — a gateway and an adaptive controller, say — exposes them
    side by side in one registry).  Tier-specific instruments are
    created directly on :attr:`registry`.
    """

    def __init__(
        self,
        *,
        tier: str,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
        span_capacity: int = 4096,
        event_capacity: int = 1024,
    ) -> None:
        self.tier = tier
        self.enabled = bool(enabled)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = SpanRecorder(span_capacity)
        self.events = EventRing(event_capacity)
        labels = {"tier": tier}
        r = self.registry
        self.requests_submitted = r.counter(
            "requests_submitted", labels=labels,
            help="Requests accepted by submit()/submit_update()",
        )
        self.requests_served = r.counter(
            "requests_served", labels=labels,
            help="Requests completed (compute + mutation)",
        )
        self.updates_served = r.counter(
            "updates_served", labels=labels,
            help="Mutation (delta) requests completed",
        )
        self.batches = r.counter(
            "batches", labels=labels,
            help="Drains served (one kernel launch each)",
        )
        self.coalesced_batches = r.counter(
            "coalesced_batches", labels=labels,
            help="Batches that coalesced more than one request",
        )
        self.coalesced_requests = r.counter(
            "coalesced_requests", labels=labels,
            help="Requests served inside coalesced batches",
        )
        self.shadow_probes = r.counter(
            "shadow_probes", labels=labels,
            help="Shadow-profiling probes resolved for telemetry",
        )
        self.observer_errors = r.counter(
            "observer_errors", labels=labels,
            help="Telemetry observer callbacks that raised",
        )
        self.promotions = r.counter(
            "model_promotions", labels=labels,
            help="Hot model swaps applied",
        )
        self.latency = r.histogram(
            "request_latency_seconds", labels=labels,
            help="Submit-to-completion wall latency (log-2 buckets)",
        )

    # -- recording (gated by ``enabled``) ------------------------------
    def span(self, trace_id: str, **kwargs) -> None:
        """Record one completed request span (no-op when disabled)."""
        if self.enabled:
            self.spans.record(trace_id, tier=self.tier, **kwargs)

    def event(self, kind: str, **fields) -> None:
        """Emit one structured event (no-op when disabled)."""
        if self.enabled:
            self.events.emit(kind, **fields)

    def mint(self) -> str:
        """A fresh trace ID (minted even when disabled: results carry
        their trace ID either way, only the span record is skipped)."""
        return mint_trace_id()

    # -- convenience for stats views -----------------------------------
    def stats_block(self) -> Dict[str, object]:
        return {
            "spans_recorded": self.spans.recorded,
            "spans_dropped": self.spans.dropped,
            "events": self.events.counts(),
        }
