"""Request spans: one trace ID per request, per-stage timings, a ring.

A **trace ID** is minted in ``submit()`` — in the caller's thread, once
per request — and rides the request everywhere it goes: onto the
:class:`~repro.service.coalesce.PendingRequest`, through coalesced
batches, inside the distributed tier's pickled control messages, across
worker kills and respawn replays (the in-flight entry keeps its batch,
so the re-sent request keeps its ID), and out on the final
``ServiceResult`` / ``UpdateResult`` so callers and the trace recorder
can correlate.

A **span** is the completed request's timing record: the trace ID, the
tier that served it, and a ``stages`` dict of per-stage seconds
(``validate``, ``queue``, ``coalesce``, ``kernel``, ``observer`` on the
in-process tier; the gateway adds ``shm_put`` / ``rpc`` and merges the
worker-side ``shm_attach`` / ``kernel`` / ``shm_write`` timings it got
back in the reply — one span, both sides of the process boundary).

Spans land in a bounded ring (:class:`SpanRecorder`) so a live process
can always answer "what did the last N requests do"; the spiller drains
the ring incrementally to ``spans.jsonl``.  Recording is a deque append
under one lock — cheap enough for the 3% overhead gate in
``bench_service.py``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["SpanRecorder", "merge_worker_stages", "mint_trace_id"]

_trace_counter = itertools.count(1)


def mint_trace_id() -> str:
    """A process-unique trace ID: ``t-<pid hex>-<counter hex>``.

    The PID prefix keeps IDs unique across the gateway and its worker
    processes; the counter (``itertools.count`` — atomic under the GIL)
    keeps them unique and *ordered* within a process, so a span timeline
    sorted by ID is sorted by submission.
    """
    return f"t-{os.getpid():x}-{next(_trace_counter):06x}"


class SpanRecorder:
    """Bounded ring of completed request spans with incremental drain.

    ``record`` stamps each span with a monotonically increasing ``seq``
    and a wall-clock ``ts``; ``drain_since(seq)`` returns the spans the
    spiller has not yet written (spans that fell off the ring before a
    drain are tallied in ``dropped`` rather than silently lost).
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = int(capacity)
        self._ring: "deque[Dict[str, object]]" = deque(maxlen=self.capacity)
        self._seq = 0
        self._drained_seq = 0
        self._dropped = 0
        self._lock = threading.Lock()

    def record(
        self,
        trace_id: str,
        *,
        kind: str,
        tier: str,
        fingerprint: str,
        stages: Dict[str, float],
        batch_size: int = 1,
        status: str = "ok",
        **extra,
    ) -> None:
        span: Dict[str, object] = {
            "trace": trace_id,
            "ts": time.time(),
            "kind": kind,
            "tier": tier,
            "fingerprint": fingerprint,
            "batch_size": int(batch_size),
            "status": status,
            "stages": stages,
        }
        span.update(extra)
        with self._lock:
            self._seq += 1
            span["seq"] = self._seq
            if len(self._ring) == self.capacity:
                displaced = self._ring[0]
                if displaced["seq"] > self._drained_seq:
                    self._dropped += 1
            self._ring.append(span)

    def tail(self, n: int = 50) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._ring)[-int(n):]

    def drain_since(self, seq: int) -> List[Dict[str, object]]:
        """Spans recorded after *seq*, oldest first (for the spiller).

        Also advances the drained cursor: a span handed out here no
        longer counts as dropped when the ring later displaces it.
        """
        with self._lock:
            fresh = [s for s in self._ring if s["seq"] > seq]
            if fresh:
                last = fresh[-1]["seq"]
                if last > self._drained_seq:
                    self._drained_seq = last
            return fresh

    def find(self, trace_id: str) -> List[Dict[str, object]]:
        """Every ring-resident span for one trace ID (gateway + tiers)."""
        with self._lock:
            return [s for s in self._ring if s["trace"] == trace_id]

    @property
    def recorded(self) -> int:
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped


def merge_worker_stages(
    stages: Dict[str, float], worker_stages: Optional[Dict[str, float]]
) -> Dict[str, float]:
    """Fold worker-side stage timings into a gateway span's stages.

    Worker stages are namespaced with a ``worker_`` prefix so the two
    sides of the boundary stay distinguishable inside the one span.
    """
    if worker_stages:
        for name, seconds in worker_stages.items():
            stages[f"worker_{name}"] = float(seconds)
    return stages
