"""Deterministic replay of recorded traces against any service tier.

Trace layer 3.  :func:`replay_trace` re-drives a
:class:`~repro.trace.format.RecordedTrace` against a live service:

* **Deterministic scheduling** — one dispatcher thread submits every
  event asynchronously in recorded global order (``seq``).  The
  services' per-fingerprint queues are FIFO, so per-matrix request
  order, update barriers and epoch attribution replay exactly as
  recorded, while the worker pool still overlaps and coalesces requests
  across fingerprints exactly as live traffic would.
* **Virtual-clock pacing** — at speed ``1x``/``10x``/``100x`` the
  dispatcher sleeps until each event's recorded arrival offset (scaled)
  before submitting; ``max`` submits as fast as the services accept.
  Pacing shifts wall time only: the submission *order* (and therefore
  every result) is identical at every speed.
* **Bitwise verification** — every replayed result is digested with the
  same :func:`~repro.trace.format.array_digest` the recorder used and
  compared against the recorded ``y_digest`` (plus epoch and format);
  mismatches are itemised in the report.
* **Fault re-injection** — recorded ``kill`` events re-kill the worker
  owning the recorded *anchor* key (stable under any fleet size);
  recorded promotions re-stamp the deployed model version.  Both are
  skipped (and counted as skipped) on tiers without the hook.

The :class:`TraceReplayReport`'s :meth:`~TraceReplayReport.deterministic`
block — per-request digests, epochs, formats — is the replay oracle: two
replays of the same trace must produce byte-identical blocks, whatever
the tier, worker count or speed.  Wall timings live outside the block.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import TraceError, ValidationError
from repro.formats.dynamic import DynamicMatrix
from repro.trace.format import RecordedTrace, array_digest, load_trace

__all__ = ["SPEEDS", "TraceReplayReport", "replay_trace"]

#: CLI speed names -> arrival-time scale factor (``None`` = no pacing).
SPEEDS: Dict[str, Optional[float]] = {
    "1x": 1.0,
    "10x": 10.0,
    "100x": 100.0,
    "max": None,
}

#: spmv-result fields compared (and reported) per replayed request.
_SPMV_FIELDS = ("y_digest", "epoch", "format")
_UPDATE_FIELDS = ("epoch", "carried_forward", "retuned", "format", "drift")


@dataclass
class TraceReplayReport:
    """Outcome of one trace replay.

    Everything derived from result *content* lives in
    :meth:`deterministic`; wall-clock numbers (``wall_seconds``,
    latencies, ``service_stats``) sit alongside for reporting and are
    excluded from :attr:`results_digest`.
    """

    trace_name: str
    trace_fingerprint: str
    speed: str
    requests: int = 0
    updates: int = 0
    verified: int = 0
    mismatches: List[Dict[str, object]] = field(default_factory=list)
    lost: int = 0
    kills_injected: int = 0
    kills_skipped: int = 0
    promotions_applied: int = 0
    promotions_skipped: int = 0
    records: List[Dict[str, object]] = field(default_factory=list, repr=False)
    wall_seconds: float = 0.0
    mean_latency_seconds: float = 0.0
    recorded_wall_seconds: float = 0.0
    recorded_mean_latency_seconds: float = 0.0
    service_stats: Dict[str, object] = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        """Did every verified result match and every request complete?"""
        return not self.mismatches and self.lost == 0

    def deterministic(self) -> Dict[str, object]:
        """The content-only view: identical across conforming replays."""
        return {
            "trace_fingerprint": self.trace_fingerprint,
            "requests": self.requests,
            "updates": self.updates,
            "records": self.records,
        }

    @property
    def results_digest(self) -> str:
        """Digest of :meth:`deterministic` — the one-line replay oracle."""
        payload = json.dumps(
            self.deterministic(), sort_keys=True, separators=(",", ":")
        ).encode()
        return hashlib.blake2b(payload, digest_size=16).hexdigest()

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON view (the CLI's ``BENCH_replay.json`` payload)."""
        return {
            "trace": self.trace_name,
            "trace_fingerprint": self.trace_fingerprint,
            "speed": self.speed,
            "requests": self.requests,
            "updates": self.updates,
            "verified": self.verified,
            "mismatches": self.mismatches,
            "lost": self.lost,
            "kills_injected": self.kills_injected,
            "kills_skipped": self.kills_skipped,
            "promotions_applied": self.promotions_applied,
            "promotions_skipped": self.promotions_skipped,
            "ok": self.ok,
            "results_digest": self.results_digest,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "mean_latency_seconds": self.mean_latency_seconds,
            "recorded_wall_seconds": self.recorded_wall_seconds,
            "recorded_mean_latency_seconds": self.recorded_mean_latency_seconds,
        }


def _resolve_speed(speed: Union[str, float, None]) -> Optional[float]:
    if speed is None:
        return None
    if isinstance(speed, str):
        if speed not in SPEEDS:
            raise ValidationError(
                f"unknown replay speed {speed!r}; expected one of "
                f"{sorted(SPEEDS)}"
            )
        return SPEEDS[speed]
    factor = float(speed)
    if factor <= 0:
        raise ValidationError(f"replay speed must be > 0, got {factor}")
    return factor


def replay_trace(
    service,
    trace: Union[RecordedTrace, str],
    *,
    speed: Union[str, float, None] = "max",
    verify: bool = True,
    inject_kills: bool = True,
    apply_promotions: bool = True,
    timeout: float = 300.0,
) -> TraceReplayReport:
    """Re-drive *trace* against *service*; verify results bitwise.

    *service* may be any tier exposing the session/submit surface
    (:class:`~repro.service.service.TuningService`,
    :class:`~repro.distributed.gateway.DistributedService`, or an
    adaptive-wrapped service).  Matrices are rebuilt fresh from the
    trace, so the service starts from the recorded epoch-0 state.
    """
    if isinstance(trace, (str, bytes)) or hasattr(trace, "__fspath__"):
        trace = load_trace(trace)
    factor = _resolve_speed(speed)
    speed_label = speed if isinstance(speed, str) else f"{factor}x"

    matrices = {
        key: DynamicMatrix(coo) for key, coo in trace.matrices().items()
    }
    events = sorted(trace.events, key=lambda e: e["seq"])
    sessions: Dict[str, object] = {}
    pending: List[tuple] = []

    report = TraceReplayReport(
        trace_name=trace.name,
        trace_fingerprint=trace.fingerprint,
        speed=str(speed_label),
    )
    recorded = trace.header.get("recorded", {})
    report.recorded_wall_seconds = float(recorded.get("wall_seconds", 0.0))
    report.recorded_mean_latency_seconds = float(
        recorded.get("mean_latency_seconds", 0.0)
    )

    t_base = float(events[0]["t"]) if events else 0.0
    t0 = time.perf_counter()
    for event in events:
        if factor is not None:
            target = (float(event["t"]) - t_base) / factor
            delay = target - (time.perf_counter() - t0)
            if delay > 1e-4:
                time.sleep(delay)
        kind = event["kind"]
        if kind == "spmv":
            name = str(event.get("session", ""))
            session = sessions.get(name)
            if session is None:
                session = sessions[name] = service.session(name)
            key = str(event["key"])
            future = session.submit(
                matrices[key],
                trace.operand(event),
                key=key,
                repetitions=int(event.get("repetitions", 1)),
            )
            pending.append((event, future))
        elif kind == "update":
            key = str(event["key"])
            future = service.submit_update(
                matrices[key], trace.delta(event), key=key
            )
            pending.append((event, future))
        elif kind == "kill":
            anchor = event.get("anchor")
            if (
                inject_kills
                and anchor
                and hasattr(service, "kill_worker")
                and hasattr(service, "worker_of")
            ):
                service.kill_worker(service.worker_of(str(anchor)))
                report.kills_injected += 1
            else:
                report.kills_skipped += 1
        elif kind == "promote":
            if apply_promotions and hasattr(service, "set_model_info"):
                # A promotion is a barrier, like an update: the live swap
                # reset every engine's stream drift anchor after earlier
                # events had drained (update barriers serialise the
                # driver), so replay must quiesce before re-stamping —
                # otherwise queued pre-promote events re-anchor streams
                # after the reset and later updates see phantom drift.
                for _evt, in_flight in pending:
                    try:
                        in_flight.result(timeout=timeout)
                    except Exception:
                        pass  # counted as lost when results are collected
                service.set_model_info(
                    version=str(event.get("version", "")),
                    algorithm=str(event.get("algorithm", "")),
                )
                report.promotions_applied += 1
            else:
                report.promotions_skipped += 1
        else:  # pragma: no cover - load_trace already rejects these
            raise TraceError(f"unknown event kind {kind!r}")

    deadline = time.monotonic() + timeout
    latencies: List[float] = []
    for event, future in pending:
        kind = event["kind"]
        remaining = max(0.0, deadline - time.monotonic())
        record: Dict[str, object] = {
            "seq": int(event["seq"]),
            "kind": kind,
            "key": str(event["key"]),
        }
        try:
            result = future.result(timeout=remaining)
        except Exception as exc:
            report.lost += 1
            record["error"] = f"{type(exc).__name__}: {exc}"
            report.records.append(record)
            continue
        if kind == "spmv":
            report.requests += 1
            latencies.append(float(result.latency_seconds))
            record["y_digest"] = array_digest(result.y)
            record["epoch"] = int(result.epoch)
            record["format"] = result.format
        else:
            report.updates += 1
            record["epoch"] = int(result.epoch)
            record["carried_forward"] = bool(result.carried_forward)
            record["retuned"] = bool(result.retuned)
            record["format"] = result.format
            record["drift"] = float(result.drift)
        report.records.append(record)
        if verify and event.get("ok"):
            fields = _SPMV_FIELDS if kind == "spmv" else _UPDATE_FIELDS
            compared = False
            for field_name in fields:
                if field_name not in event:
                    continue
                compared = True
                if record.get(field_name) != event[field_name]:
                    report.mismatches.append({
                        "seq": int(event["seq"]),
                        "key": str(event["key"]),
                        "field": field_name,
                        "recorded": event[field_name],
                        "replayed": record.get(field_name),
                    })
            if compared:
                report.verified += 1
    report.wall_seconds = time.perf_counter() - t0
    report.mean_latency_seconds = (
        sum(latencies) / len(latencies) if latencies else 0.0
    )
    report.service_stats = service.stats()
    return report
