"""Capture live service traffic into a replayable trace.

Trace layer 2.  :class:`TraceRecorder` attaches to a running
:class:`~repro.service.service.TuningService` or
:class:`~repro.distributed.gateway.DistributedService` and records every
request, update barrier, model promotion and injected worker kill into a
:class:`~repro.trace.format.TraceWriter`:

* **Requests and updates** are captured at submission time through
  :class:`RecordingSession` (a drop-in for
  :class:`~repro.service.service.Session`): the operand content, arrival
  timestamp and global submission order are recorded under the
  recorder's lock *around* the underlying submit, so the recorded
  ``seq`` order is exactly the order the service observed — the property
  deterministic replay depends on.  Result digests (``y``), epochs and
  formats are filled in asynchronously by future callbacks.
* **Batch telemetry** rides the service's observer hook: the recorder
  chains in front of any installed observer (and keeps forwarding to
  it), counting served batches/observations into the header.
* **Model promotions** are captured by wrapping
  ``service.promote_model`` for the recorder's lifetime.
* **Worker kills** arrive through the distributed gateway's
  ``set_kill_listener`` hook; each kill is recorded with an *anchor*
  key (a recorded matrix the killed worker owns) so replay can re-aim
  the kill at the same worker under any fleet size.

Call :meth:`TraceRecorder.finish` to wait for in-flight results, detach
every hook and write the trace directory.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import wait
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TraceError
from repro.formats.delta import MatrixDelta
from repro.formats.dynamic import DynamicMatrix
from repro.runtime.engine import request_key
from repro.trace.format import RecordedTrace, TraceWriter, array_digest

__all__ = ["TraceRecorder", "RecordingSession"]


class TraceRecorder:
    """Records a live service run into a replayable trace directory.

    Parameters
    ----------
    service:
        The service to record — in-process or distributed; the recorder
        keys on the common session/observer/promote surface and uses the
        kill-listener hook only where the service offers one.
    name / source:
        Stamped into the trace header (reporting + provenance only).
    seed:
        The workload generator's seed, if any — recorded so a replay
        report can name the traffic's origin.
    """

    def __init__(
        self,
        service,
        *,
        name: str = "trace",
        source: str = "live",
        seed: int = 0,
    ) -> None:
        self.service = service
        space = getattr(service, "space", None)
        kind = "distributed" if hasattr(service, "worker_of") else "inproc"
        self._writer = TraceWriter(
            name=name,
            source=source,
            space={
                "system": space.system.name if space is not None else "",
                "backend": space.backend if space is not None else "",
            },
            tuner=type(service.tuner).__name__ if service.tuner else "",
            service={
                "kind": kind,
                "workers": int(getattr(service, "workers", 0)),
            },
            seed=seed,
        )
        self._lock = threading.RLock()
        self._t0 = time.perf_counter()
        self._seq = 0
        self._futures: List = []
        self._finished = False
        self.observed_batches = 0
        self.observed_requests = 0
        self._attach()

    # ------------------------------------------------------------------
    # hook management
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        self._prev_observer = self.service._observer
        # keep the installed bound-method objects: attribute access mints
        # a fresh bound method per lookup, so detach must compare against
        # the exact instances that were installed
        self._observe_hook = self._observe
        self.service.set_observer(self._observe_hook)
        self._orig_promote = self.service.promote_model
        self.service.promote_model = self._promote_and_record
        if hasattr(self.service, "set_kill_listener"):
            self.service.set_kill_listener(self._on_kill)

    def detach(self) -> None:
        """Restore every hook; the service keeps serving unrecorded."""
        if self.service._observer is self._observe_hook:
            self.service.set_observer(self._prev_observer)
        if self.service.promote_model == self._promote_and_record:
            # remove the instance attribute to re-expose the bound method
            del self.service.promote_model
        if hasattr(self.service, "set_kill_listener"):
            self.service.set_kill_listener(None)

    # ------------------------------------------------------------------
    def session(self, name: str = "") -> "RecordingSession":
        """A recording client session (drop-in for ``service.session``)."""
        with self._lock:
            self._writer.add_session(name)
        return RecordingSession(self, self.service.session(name), name)

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _next(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _ensure_matrix(self, key: str, matrix) -> None:
        if self._writer.has_matrix(key):
            return
        concrete = (
            matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        )
        self._writer.add_matrix(key, concrete.to_coo())

    # ------------------------------------------------------------------
    # capture: requests and updates
    # ------------------------------------------------------------------
    def record_submit(
        self,
        session,
        session_name: str,
        matrix,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        repetitions: int = 1,
    ):
        """Record one request and submit it; returns the service future.

        The lock is held across seq assignment *and* the underlying
        submit, so recorded order == the service's per-fingerprint FIFO
        order (epochs and barriers replay identically).
        """
        operand = np.ascontiguousarray(x, dtype=np.float64)
        with self._lock:
            if self._finished:
                raise TraceError("recorder already finished")
            fp = key if key is not None else request_key(matrix)
            self._ensure_matrix(fp, matrix)
            seq = self._next()
            event = self._writer.add_event({
                "seq": seq,
                "t": self._now(),
                "kind": "spmv",
                "session": session_name,
                "key": fp,
                "x": self._writer.add_operand(seq, operand),
                "x_digest": array_digest(operand),
                "shape": [int(n) for n in operand.shape],
                "repetitions": int(repetitions),
                "ok": False,
            })
            future = session.submit(
                matrix, operand, key=fp, repetitions=repetitions
            )
            self._futures.append((event, future, "spmv"))
        return future

    def record_update(
        self,
        session,
        session_name: str,
        matrix,
        delta: MatrixDelta,
        *,
        key: Optional[str] = None,
    ):
        """Record one update barrier and submit it; returns the future."""
        with self._lock:
            if self._finished:
                raise TraceError("recorder already finished")
            fp = key if key is not None else request_key(matrix)
            self._ensure_matrix(fp, matrix)
            seq = self._next()
            event = self._writer.add_event({
                "seq": seq,
                "t": self._now(),
                "kind": "update",
                "session": session_name,
                "key": fp,
                "delta": self._writer.add_delta(seq, delta),
                "ops": int(len(delta)),
                "ok": False,
            })
            session.updates += 1
            future = self.service.submit_update(matrix, delta, key=fp)
            self._futures.append((event, future, "update"))
        return future

    def _complete_spmv(self, event: Dict[str, object], future) -> None:
        exc = future.exception()
        if exc is not None:
            event["ok"] = False
            event["error"] = f"{type(exc).__name__}: {exc}"
            return
        result = future.result()
        event["ok"] = True
        event["y_digest"] = array_digest(result.y)
        event["epoch"] = int(result.epoch)
        event["format"] = result.format
        event["backend"] = result.backend
        event["batch_size"] = int(result.batch_size)
        event["latency_seconds"] = float(result.latency_seconds)
        event["model_version"] = result.model_version
        if result.trace_id:
            # observability span ID — correlates a replayed event with
            # the original run's span timeline (optional field, absent
            # on traces captured before spans existed)
            event["trace_id"] = result.trace_id

    def _complete_update(self, event: Dict[str, object], future) -> None:
        exc = future.exception()
        if exc is not None:
            event["ok"] = False
            event["error"] = f"{type(exc).__name__}: {exc}"
            return
        result = future.result()
        event["ok"] = True
        event["epoch"] = int(result.epoch)
        event["carried_forward"] = bool(result.carried_forward)
        event["retuned"] = bool(result.retuned)
        event["format"] = result.format
        event["drift"] = float(result.drift)
        event["nnz"] = int(result.nnz)
        event["latency_seconds"] = float(result.latency_seconds)
        if result.trace_id:
            event["trace_id"] = result.trace_id

    # ------------------------------------------------------------------
    # capture: promotions, kills, batch telemetry
    # ------------------------------------------------------------------
    def _promote_and_record(
        self, tuner, *, version: str, source: str = "", algorithm: str = ""
    ):
        with self._lock:
            self._writer.add_event({
                "seq": self._next(),
                "t": self._now(),
                "kind": "promote",
                "session": "",
                "version": str(version),
                "algorithm": algorithm or type(tuner).__name__,
                "tuner": type(tuner).__name__,
            })
        # outside the lock: a distributed promotion blocks on worker acks
        # whose receiver threads may be feeding the observer hook
        return self._orig_promote(
            tuner, version=version, source=source, algorithm=algorithm
        )

    def _on_kill(self, index: int, pid: Optional[int]) -> None:
        with self._lock:
            anchor = None
            worker_of = getattr(self.service, "worker_of", None)
            if worker_of is not None:
                for key in self._writer.matrix_keys():
                    if worker_of(key) == index:
                        anchor = key
                        break
            self._writer.add_event({
                "seq": self._next(),
                "t": self._now(),
                "kind": "kill",
                "session": "",
                "worker": int(index),
                "anchor": anchor,
            })

    def _observe(self, observations: List[dict]) -> None:
        with self._lock:
            self.observed_batches += 1
            self.observed_requests += len(observations)
        if self._prev_observer is not None:
            self._prev_observer(observations)

    # ------------------------------------------------------------------
    def finish(self, path, *, timeout: float = 120.0) -> RecordedTrace:
        """Wait for in-flight results, detach and write the trace."""
        with self._lock:
            self._finished = True
            futures = list(self._futures)
        done, not_done = wait(
            [f for _, f, _ in futures], timeout=timeout
        )
        if not_done:
            raise TraceError(
                f"{len(not_done)} recorded requests still pending after "
                f"{timeout}s; cannot write a complete trace"
            )
        # fill result fields here, synchronously: Future.set_result wakes
        # waiters *before* running done-callbacks, so only an explicit
        # post-wait pass guarantees every event is complete
        for event, future, kind in futures:
            if kind == "spmv":
                self._complete_spmv(event, future)
            else:
                self._complete_update(event, future)
        self.detach()
        with self._lock:
            latencies = [
                float(e["latency_seconds"])
                for e in self._writer.events
                if e["kind"] == "spmv" and e.get("ok")
            ]
            self._writer.recorded = {
                "wall_seconds": self._now(),
                "mean_latency_seconds": (
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
                "observed_batches": self.observed_batches,
                "observed_requests": self.observed_requests,
            }
            self._writer.write(path)
        return RecordedTrace.load(path)


class RecordingSession:
    """A client session whose traffic is captured by a recorder.

    Mirrors the :class:`~repro.service.service.Session` API (submit /
    spmv / spmm / update / submit_update) and keeps the underlying
    session's per-client tallies; the wrapped session is available as
    ``.session``.
    """

    def __init__(
        self, recorder: TraceRecorder, session, name: str = ""
    ) -> None:
        self._recorder = recorder
        self.session = session
        self.name = name

    def submit(self, matrix, x, *, key=None, repetitions: int = 1):
        """Asynchronous recorded request; returns the service future."""
        return self._recorder.record_submit(
            self.session, self.name, matrix, x,
            key=key, repetitions=repetitions,
        )

    def spmv(self, matrix, x, *, key=None, repetitions: int = 1):
        """Blocking recorded SpMV."""
        result = self.submit(
            matrix, x, key=key, repetitions=repetitions
        ).result()
        self.session.completed += 1
        self.session.latency_total += result.latency_seconds
        return result

    def spmm(self, matrix, X, *, key=None, repetitions: int = 1):
        """Blocking recorded block SpMV (``X`` is an ``(ncols, k)`` block)."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise TraceError(f"spmm operand must be 2-D, got ndim={X.ndim}")
        return self.spmv(matrix, X, key=key, repetitions=repetitions)

    def submit_update(self, matrix, delta, *, key=None):
        """Asynchronous recorded update barrier; returns the future."""
        return self._recorder.record_update(
            self.session, self.name, matrix, delta, key=key
        )

    def update(self, matrix, delta, *, key=None):
        """Blocking recorded update barrier."""
        return self.submit_update(matrix, delta, key=key).result()

    @property
    def requests(self) -> int:
        return self.session.requests

    @property
    def updates(self) -> int:
        return self.session.updates
