"""Versioned on-disk trace format: JSONL events + npz arrays + fingerprint.

Trace layer 1.  A recorded trace is a directory of three files:

``trace.json``
    The header: format version, where the trace came from (space, tuner,
    serving tier, seed), the matrix key table, event counts, the
    recorded run's wall/latency summary, and the content
    :func:`fingerprint` over the other two files.
``events.jsonl``
    One JSON object per line, one line per event, in global submission
    order (``seq``).  Event kinds: ``spmv`` (one request, operand +
    recorded result digest), ``update`` (a :class:`MatrixDelta`
    barrier), ``kill`` (an injected worker kill), ``promote`` (a model
    promotion/rollback).
``arrays.npz``
    Every array the events reference, compressed: matrix content
    (``m<i>_row/col/data/shape``, indexed by position in the header's
    ``matrices`` table), request operands (``x<seq>``) and delta arrays
    (``d<seq>_row/col/value/op``).

The fingerprint is a blake2b digest over the raw ``events.jsonl`` bytes
plus every npz array's dtype/shape/bytes (sorted by name), so it is
stable across re-compression and independent of the header file itself.
Bump :data:`TRACE_VERSION` whenever the schema changes shape; readers
reject traces from a different major version rather than guessing.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.errors import TraceError
from repro.formats.coo import COOMatrix
from repro.formats.delta import MatrixDelta

__all__ = [
    "TRACE_VERSION",
    "HEADER_FILE",
    "EVENTS_FILE",
    "ARRAYS_FILE",
    "EVENT_KINDS",
    "array_digest",
    "trace_fingerprint",
    "TraceWriter",
    "RecordedTrace",
    "load_trace",
    "validate_trace",
]

#: On-disk schema version.  Readers refuse other versions.
TRACE_VERSION = 1

HEADER_FILE = "trace.json"
EVENTS_FILE = "events.jsonl"
ARRAYS_FILE = "arrays.npz"

EVENT_KINDS = ("spmv", "update", "kill", "promote")

_FINGERPRINT_SALT = b"repro-trace-v1"


def array_digest(arr: np.ndarray) -> str:
    """Content digest of one array: dtype + shape + raw bytes (blake2b)."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=16)
    h.update(arr.dtype.str.encode())
    h.update(repr(tuple(arr.shape)).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def trace_fingerprint(
    events_bytes: bytes, arrays: Mapping[str, np.ndarray]
) -> str:
    """Content fingerprint over the event log and every referenced array.

    Computed from decoded array content (not zip bytes), so the same
    trace re-saved under a different compression level keeps its
    fingerprint.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(_FINGERPRINT_SALT)
    h.update(events_bytes)
    for name in sorted(arrays):
        h.update(name.encode())
        h.update(b"\0")
        h.update(array_digest(arrays[name]).encode())
    return h.hexdigest()


def _dump_event(event: Mapping[str, object]) -> str:
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class TraceWriter:
    """Accumulates events + arrays and writes a trace directory.

    The writer is not thread-safe; the recorder serialises access.
    Events may be appended as mutable dicts and filled in later (result
    digests arrive from future callbacks) — they are serialised only at
    :meth:`write` time.
    """

    def __init__(
        self,
        *,
        name: str = "trace",
        source: str = "live",
        space: Optional[Dict[str, str]] = None,
        tuner: str = "",
        service: Optional[Dict[str, object]] = None,
        seed: int = 0,
    ) -> None:
        self.name = str(name)
        self.source = str(source)
        self.space = dict(space or {})
        self.tuner = str(tuner)
        self.service = dict(service or {})
        self.seed = int(seed)
        self.events: List[Dict[str, object]] = []
        self.arrays: Dict[str, np.ndarray] = {}
        self.sessions: List[str] = []
        self.recorded: Dict[str, float] = {}
        self._matrix_index: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def matrix_keys(self) -> List[str]:
        """Matrix keys in registration order (the header table order)."""
        return sorted(self._matrix_index, key=self._matrix_index.get)

    def has_matrix(self, key: str) -> bool:
        return key in self._matrix_index

    def add_matrix(self, key: str, coo: COOMatrix) -> int:
        """Register a matrix's epoch-0 content; idempotent per key."""
        if key in self._matrix_index:
            return self._matrix_index[key]
        index = len(self._matrix_index)
        self._matrix_index[key] = index
        self.arrays[f"m{index}_row"] = np.asarray(coo.row)
        self.arrays[f"m{index}_col"] = np.asarray(coo.col)
        self.arrays[f"m{index}_data"] = np.asarray(coo.data)
        self.arrays[f"m{index}_shape"] = np.asarray(
            [coo.nrows, coo.ncols], dtype=np.int64
        )
        return index

    def add_operand(self, seq: int, x: np.ndarray) -> str:
        ref = f"x{seq}"
        self.arrays[ref] = np.ascontiguousarray(x, dtype=np.float64)
        return ref

    def add_delta(self, seq: int, delta: MatrixDelta) -> str:
        ref = f"d{seq}"
        self.arrays[f"{ref}_row"] = np.asarray(delta.row)
        self.arrays[f"{ref}_col"] = np.asarray(delta.col)
        self.arrays[f"{ref}_value"] = np.asarray(delta.value)
        self.arrays[f"{ref}_op"] = np.asarray(delta.op)
        return ref

    def add_event(self, event: Dict[str, object]) -> Dict[str, object]:
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            raise TraceError(
                f"unknown trace event kind {kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )
        self.events.append(event)
        return event

    def add_session(self, name: str) -> None:
        if name not in self.sessions:
            self.sessions.append(name)

    # ------------------------------------------------------------------
    def write(self, path) -> str:
        """Write ``trace.json`` / ``events.jsonl`` / ``arrays.npz``."""
        path = os.fspath(path)
        os.makedirs(path, exist_ok=True)
        events = sorted(self.events, key=lambda e: e["seq"])
        events_bytes = (
            "".join(_dump_event(e) + "\n" for e in events)
        ).encode()
        with open(os.path.join(path, EVENTS_FILE), "wb") as fh:
            fh.write(events_bytes)
        with open(os.path.join(path, ARRAYS_FILE), "wb") as fh:
            np.savez_compressed(fh, **self.arrays)
        counts = {
            "events": len(events),
            "requests": sum(1 for e in events if e["kind"] == "spmv"),
            "updates": sum(1 for e in events if e["kind"] == "update"),
            "kills": sum(1 for e in events if e["kind"] == "kill"),
            "promotions": sum(1 for e in events if e["kind"] == "promote"),
        }
        header = {
            "version": TRACE_VERSION,
            "name": self.name,
            "source": self.source,
            "space": self.space,
            "tuner": self.tuner,
            "service": self.service,
            "seed": self.seed,
            "sessions": list(self.sessions),
            "matrices": self.matrix_keys(),
            "counts": counts,
            "recorded": dict(self.recorded),
            "fingerprint": trace_fingerprint(events_bytes, self.arrays),
        }
        with open(os.path.join(path, HEADER_FILE), "w") as fh:
            json.dump(header, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


@dataclass
class RecordedTrace:
    """A loaded trace directory: header + events + arrays."""

    path: str
    header: Dict[str, object]
    events: List[Dict[str, object]] = field(repr=False)
    arrays: Dict[str, np.ndarray] = field(repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path) -> "RecordedTrace":
        path = os.fspath(path)
        header_path = os.path.join(path, HEADER_FILE)
        if not os.path.isfile(header_path):
            raise TraceError(f"not a trace directory (no {HEADER_FILE}): {path}")
        with open(header_path) as fh:
            header = json.load(fh)
        version = header.get("version")
        if version != TRACE_VERSION:
            raise TraceError(
                f"trace {path} has format version {version!r}; this reader "
                f"understands version {TRACE_VERSION}"
            )
        with open(os.path.join(path, EVENTS_FILE)) as fh:
            events = [json.loads(line) for line in fh if line.strip()]
        with np.load(os.path.join(path, ARRAYS_FILE)) as npz:
            arrays = {name: npz[name] for name in npz.files}
        return cls(path=path, header=header, events=events, arrays=arrays)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return str(self.header.get("name", ""))

    @property
    def seed(self) -> int:
        return int(self.header.get("seed", 0))

    @property
    def fingerprint(self) -> str:
        return str(self.header.get("fingerprint", ""))

    @property
    def space(self) -> Dict[str, str]:
        return dict(self.header.get("space", {}))

    @property
    def counts(self) -> Dict[str, int]:
        return {k: int(v) for k, v in self.header.get("counts", {}).items()}

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def matrix_keys(self) -> List[str]:
        return [str(k) for k in self.header.get("matrices", [])]

    def matrix(self, key: str) -> COOMatrix:
        """Rebuild one matrix's epoch-0 content as a fresh COOMatrix."""
        keys = self.matrix_keys()
        if key not in keys:
            raise TraceError(f"trace {self.name!r} has no matrix {key!r}")
        index = keys.index(key)
        shape = self.arrays[f"m{index}_shape"]
        return COOMatrix(
            int(shape[0]),
            int(shape[1]),
            self.arrays[f"m{index}_row"].copy(),
            self.arrays[f"m{index}_col"].copy(),
            self.arrays[f"m{index}_data"].copy(),
        )

    def matrices(self) -> Dict[str, COOMatrix]:
        """All matrices, freshly rebuilt (safe to mutate per replay)."""
        return {key: self.matrix(key) for key in self.matrix_keys()}

    def operand(self, event: Mapping[str, object]) -> np.ndarray:
        """The recorded operand of one ``spmv`` event (a fresh copy)."""
        ref = str(event["x"])
        if ref not in self.arrays:
            raise TraceError(
                f"trace {self.name!r} event seq={event.get('seq')} "
                f"references missing operand array {ref!r}"
            )
        return self.arrays[ref].copy()

    def delta(self, event: Mapping[str, object]) -> MatrixDelta:
        """The recorded :class:`MatrixDelta` of one ``update`` event."""
        ref = str(event["delta"])
        try:
            return MatrixDelta(
                self.arrays[f"{ref}_row"].copy(),
                self.arrays[f"{ref}_col"].copy(),
                self.arrays[f"{ref}_value"].copy(),
                self.arrays[f"{ref}_op"].copy(),
            )
        except KeyError as exc:
            raise TraceError(
                f"trace {self.name!r} event seq={event.get('seq')} "
                f"references missing delta arrays {ref!r}"
            ) from exc


def load_trace(path) -> RecordedTrace:
    """Load a trace directory (see :class:`RecordedTrace.load`)."""
    return RecordedTrace.load(path)


# ----------------------------------------------------------------------
# validation (tools/check_trace.py and the replay CLI both call this)
# ----------------------------------------------------------------------
_HEADER_REQUIRED = (
    "version", "name", "source", "space", "seed", "matrices", "counts",
    "fingerprint",
)

_EVENT_REQUIRED: Dict[str, tuple] = {
    "spmv": ("session", "key", "x", "x_digest", "shape", "repetitions"),
    "update": ("session", "key", "delta", "ops"),
    "kill": ("worker",),
    "promote": ("version",),
}


def validate_trace(path) -> List[str]:
    """Schema + fingerprint check of a trace directory.

    Returns a list of problems (empty = valid).  Unlike
    :class:`RecordedTrace.load`, this never raises on malformed content —
    every defect becomes a message, so a CI validator can report all of
    them at once.
    """
    problems: List[str] = []
    path = os.fspath(path)
    for fname in (HEADER_FILE, EVENTS_FILE, ARRAYS_FILE):
        if not os.path.isfile(os.path.join(path, fname)):
            problems.append(f"missing file: {fname}")
    if problems:
        return problems

    try:
        with open(os.path.join(path, HEADER_FILE)) as fh:
            header = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{HEADER_FILE}: unreadable ({exc})"]
    if not isinstance(header, dict):
        return [f"{HEADER_FILE}: expected a JSON object"]
    for key in _HEADER_REQUIRED:
        if key not in header:
            problems.append(f"{HEADER_FILE}: missing field {key!r}")
    if header.get("version") != TRACE_VERSION:
        problems.append(
            f"{HEADER_FILE}: version {header.get('version')!r} != "
            f"supported {TRACE_VERSION}"
        )

    try:
        with open(os.path.join(path, EVENTS_FILE), "rb") as fh:
            events_bytes = fh.read()
        events = [
            json.loads(line)
            for line in events_bytes.decode().splitlines()
            if line.strip()
        ]
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        return problems + [f"{EVENTS_FILE}: unreadable ({exc})"]

    try:
        with np.load(os.path.join(path, ARRAYS_FILE)) as npz:
            arrays = {name: npz[name] for name in npz.files}
    except Exception as exc:  # zipfile/npy corruption surfaces many ways
        return problems + [f"{ARRAYS_FILE}: unreadable ({exc})"]

    # fingerprint before anything else: a tampered trace fails fast
    expected = trace_fingerprint(events_bytes, arrays)
    if header.get("fingerprint") != expected:
        problems.append(
            f"fingerprint mismatch: header says "
            f"{header.get('fingerprint')!r}, content is {expected!r}"
        )

    matrices = [str(k) for k in header.get("matrices", [])]
    for index, key in enumerate(matrices):
        missing = [
            f"m{index}_{part}"
            for part in ("row", "col", "data", "shape")
            if f"m{index}_{part}" not in arrays
        ]
        if missing:
            problems.append(f"matrix {key!r}: missing arrays {missing}")

    referenced = set()
    for index in range(len(matrices)):
        referenced.update(
            f"m{index}_{part}" for part in ("row", "col", "data", "shape")
        )
    counts = {kind: 0 for kind in EVENT_KINDS}
    last_seq = -1
    last_t = -1.0
    for lineno, event in enumerate(events, start=1):
        where = f"{EVENTS_FILE}:{lineno}"
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        counts[kind] += 1
        seq = event.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            problems.append(
                f"{where}: seq {seq!r} not strictly increasing "
                f"(previous {last_seq})"
            )
        else:
            last_seq = seq
        t = event.get("t")
        if not isinstance(t, (int, float)) or t < last_t:
            problems.append(
                f"{where}: t {t!r} not non-decreasing (previous {last_t})"
            )
        else:
            last_t = float(t)
        for field_name in _EVENT_REQUIRED[kind]:
            if field_name not in event:
                problems.append(
                    f"{where}: {kind} event missing field {field_name!r}"
                )
        key = event.get("key")
        if kind in ("spmv", "update") and key not in matrices:
            problems.append(
                f"{where}: key {key!r} not in the header matrix table"
            )
        if kind == "spmv" and "x" in event:
            ref = str(event["x"])
            referenced.add(ref)
            if ref not in arrays:
                problems.append(f"{where}: operand array {ref!r} missing")
            elif event.get("x_digest") != array_digest(arrays[ref]):
                problems.append(
                    f"{where}: operand digest mismatch for {ref!r}"
                )
        if kind == "update" and "delta" in event:
            ref = str(event["delta"])
            parts = [f"{ref}_{p}" for p in ("row", "col", "value", "op")]
            referenced.update(parts)
            missing = [p for p in parts if p not in arrays]
            if missing:
                problems.append(f"{where}: delta arrays missing {missing}")
            elif "ops" in event and int(event["ops"]) != int(
                arrays[f"{ref}_row"].shape[0]
            ):
                problems.append(
                    f"{where}: ops={event['ops']} but delta has "
                    f"{int(arrays[f'{ref}_row'].shape[0])} entries"
                )
    orphans = sorted(set(arrays) - referenced)
    if orphans:
        problems.append(f"{ARRAYS_FILE}: unreferenced arrays {orphans}")

    declared = header.get("counts", {})
    for kind, label in (
        ("spmv", "requests"), ("update", "updates"),
        ("kill", "kills"), ("promote", "promotions"),
    ):
        if label in declared and int(declared[label]) != counts[kind]:
            problems.append(
                f"{HEADER_FILE}: counts[{label!r}]={declared[label]} but "
                f"{EVENTS_FILE} has {counts[kind]}"
            )
    if "events" in declared and int(declared["events"]) != len(events):
        problems.append(
            f"{HEADER_FILE}: counts['events']={declared['events']} but "
            f"{EVENTS_FILE} has {len(events)} lines"
        )
    return problems
