"""Trace capture + deterministic replay: traffic as a regression corpus.

Recorded traffic is the only ground truth a serving system has.  This
package turns a live run of the tuning service — any tier — into a
versioned on-disk *trace* (JSONL events + npz arrays + content
fingerprint) and re-drives it deterministically against any other
configuration, verifying every result bitwise against the recording:

* :mod:`~repro.trace.format` — the on-disk schema
  (:data:`~repro.trace.format.TRACE_VERSION`), reader/writer and the
  :func:`~repro.trace.format.validate_trace` checker behind
  ``tools/check_trace.py``;
* :mod:`~repro.trace.recorder` — :class:`TraceRecorder` /
  :class:`RecordingSession`, capture hooks over the live service
  (observer chain, promote wrap, distributed kill listener);
* :mod:`~repro.trace.replay` — :func:`replay_trace` and
  :class:`TraceReplayReport`, the virtual-clock replay engine with
  bitwise verification;
* :mod:`~repro.trace.drivers` — :func:`record_workload` (the canonical
  seeded workload behind ``repro record`` and the golden corpus) and
  :func:`service_for_trace`.

See ``docs/replay.md`` for the format spec and CLI walkthrough;
``tests/trace/golden/`` holds the committed regression corpus.
"""

from repro.trace.drivers import record_workload, service_for_trace
from repro.trace.format import (
    TRACE_VERSION,
    RecordedTrace,
    TraceWriter,
    array_digest,
    load_trace,
    trace_fingerprint,
    validate_trace,
)
from repro.trace.recorder import RecordingSession, TraceRecorder
from repro.trace.replay import SPEEDS, TraceReplayReport, replay_trace

__all__ = [
    "TRACE_VERSION",
    "SPEEDS",
    "RecordedTrace",
    "RecordingSession",
    "TraceRecorder",
    "TraceReplayReport",
    "TraceWriter",
    "array_digest",
    "load_trace",
    "record_workload",
    "replay_trace",
    "service_for_trace",
    "trace_fingerprint",
    "validate_trace",
]
