"""Canonical recorded workloads: the traffic generators behind capture.

Trace layer 0 (the traffic side).  :func:`record_workload` drives a live
service with a seeded, mixed-session workload — a
:class:`~repro.datasets.collection.MatrixCollection` corpus with
hot/cold reuse, optionally an evolving matrix from one of the
:data:`~repro.datasets.evolving.EVOLVING_FAMILIES` whose deltas are
interleaved as update barriers, optionally a mid-run model promotion
and/or an injected worker kill — while a
:class:`~repro.trace.recorder.TraceRecorder` captures everything.  The
CLI ``record`` subcommand, the golden-trace generator
(``tools/make_golden_traces.py``) and the property tests all call this
one function, so "a recorded trace" means the same thing everywhere.

:func:`service_for_trace` is the inverse helper: build a service
matching a trace header's space/tuner for replay.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.tuners.run_first import RunFirstTuner
from repro.datasets.collection import MatrixCollection
from repro.datasets.evolving import generate_evolving
from repro.errors import ValidationError
from repro.formats.dynamic import DynamicMatrix
from repro.trace.format import RecordedTrace
from repro.trace.recorder import TraceRecorder

__all__ = ["record_workload", "service_for_trace"]

#: Compact evolving-family parameters for recorded traces (the stock
#: defaults build matrices too large to commit as golden fixtures).
_FAMILY_PARAMS: Dict[str, Dict[str, object]] = {
    "growing_rmat": {"scale": 6, "edges_per_epoch": 48},
    "widening_band": {"n": 96},
    "decaying_stencil": {"nx": 10},
}

#: The ``compact=True`` corpus: small fixed generator calls spanning the
#: structural spectrum (banded / stencil / power-law / uniform), a few
#: hundred rows each, so a committed golden trace stays tens of KiB.
_COMPACT_CORPUS = (
    ("banded", {"n": 192, "half_bandwidth": 3}),
    ("stencil_2d", {"nx": 14, "points": 5}),
    ("powerlaw", {"n": 160, "avg_row_nnz": 6.0}),
    ("uniform_random", {"n": 128, "avg_row_nnz": 8.0}),
    ("block_diagonal", {"n": 144, "block": 12}),
    ("hypersparse", {"n": 200, "density": 0.15}),
)


def _compact_matrices(n_matrices: int, seed: int) -> Dict[str, DynamicMatrix]:
    from repro.datasets.generators import generate_family

    matrices: Dict[str, DynamicMatrix] = {}
    for i in range(n_matrices):
        family, params = _COMPACT_CORPUS[i % len(_COMPACT_CORPUS)]
        name = f"{family}_{i}"
        matrices[name] = DynamicMatrix(
            generate_family(family, seed=seed + i, **params)
        )
    return matrices


def record_workload(
    service,
    out,
    *,
    name: str = "trace",
    source: str = "synthetic",
    requests: int = 32,
    sessions: int = 2,
    n_matrices: int = 4,
    seed: int = 42,
    family: Optional[str] = None,
    updates: int = 0,
    spmm_every: int = 0,
    promote_at: int = 0,
    kill_at: int = 0,
    kill_with_update: bool = False,
    compact: bool = False,
    timeout: float = 120.0,
) -> RecordedTrace:
    """Drive *service* with a seeded mixed workload and record it to *out*.

    Parameters
    ----------
    requests:
        SpMV/SpMM requests to issue (updates/kills/promotions are extra
        events on top).
    sessions:
        Client sessions the requests round-robin across.
    n_matrices:
        Corpus size; traffic is hot/cold skewed across it.
    family / updates:
        With a *family*, one evolving matrix joins the corpus and its
        first *updates* deltas are interleaved as update barriers,
        evenly spaced through the request stream.
    spmm_every:
        Every ``spmm_every``-th request is a 4-column block SpMM
        (``0`` = vectors only).
    promote_at:
        After that many requests, promote a fresh tuner under version
        ``"v2-replay"`` (captured as a ``promote`` event).
    kill_at / kill_with_update:
        After ``kill_at`` requests, kill the worker owning the evolving
        (or first) matrix — immediately after submitting an update
        barrier for it when *kill_with_update* is set, so the kill lands
        while the barrier is in flight.  Ignored on services without
        ``kill_worker``.
    compact:
        Draw the corpus from a fixed set of small generator calls
        (hundreds of rows) instead of a sampled
        :class:`MatrixCollection` — committed golden traces use this so
        the on-disk corpus stays tens of KiB.
    """
    if requests < 1:
        raise ValidationError(f"requests must be >= 1, got {requests}")
    if sessions < 1:
        raise ValidationError(f"sessions must be >= 1, got {sessions}")
    if updates and not family:
        raise ValidationError("updates need an evolving family")

    if compact:
        matrices = _compact_matrices(n_matrices, seed)
    else:
        collection = MatrixCollection(n_matrices=n_matrices, seed=seed)
        matrices = {
            s.name: DynamicMatrix(collection.generate(s))
            for s in collection.subset(n_matrices)
        }
    names = list(matrices)

    deltas = []
    evolving_key = None
    if family is not None:
        params = dict(_FAMILY_PARAMS.get(family, {}))
        params["epochs"] = max(updates, 1)
        workload = generate_evolving(family, seed=seed, **params)
        evolving_key = f"evolving:{workload.name}"
        matrices[evolving_key] = DynamicMatrix(workload.initial)
        names.append(evolving_key)
        deltas = list(workload.deltas[:updates])

    recorder = TraceRecorder(service, name=name, source=source, seed=seed)
    clients = [recorder.session(f"s{i}") for i in range(sessions)]
    rng = np.random.default_rng(seed)
    hot = names[: max(1, len(names) // 2)]
    update_every = requests // (len(deltas) + 1) if deltas else 0
    kill_key = evolving_key or names[0]
    can_kill = hasattr(service, "kill_worker") and hasattr(
        service, "worker_of"
    )

    issued = 0
    next_delta = 0
    killed = False
    for i in range(requests):
        if (
            update_every
            and next_delta < len(deltas)
            and i > 0
            and i % update_every == 0
        ):
            fut = clients[i % sessions].submit_update(
                matrices[evolving_key], deltas[next_delta], key=evolving_key
            )
            next_delta += 1
            if kill_with_update and can_kill and not killed:
                service.kill_worker(service.worker_of(evolving_key))
                killed = True
            fut.result()  # keep the barrier a barrier for the driver too
        pool = hot if rng.random() < 0.8 else names
        key = pool[int(rng.integers(0, len(pool)))]
        session = clients[i % sessions]
        ncols = matrices[key].ncols
        if spmm_every and (i + 1) % spmm_every == 0:
            operand = rng.standard_normal((ncols, 4))
        else:
            operand = rng.standard_normal(ncols)
        session.submit(matrices[key], operand, key=key)
        issued += 1
        if promote_at and issued == promote_at:
            service.promote_model(
                RunFirstTuner(), version="v2-replay", source="record_workload"
            )
        if kill_at and issued == kill_at and can_kill and not killed:
            service.kill_worker(service.worker_of(kill_key))
            killed = True
    # drain any deltas the spacing left over, as trailing barriers
    while next_delta < len(deltas):
        clients[0].update(
            matrices[evolving_key], deltas[next_delta], key=evolving_key
        )
        next_delta += 1
    return recorder.finish(out, timeout=timeout)


def service_for_trace(
    trace: RecordedTrace,
    kind: str = "inproc",
    *,
    workers: Optional[int] = None,
    tuner=None,
    **kwargs,
):
    """A service matching *trace*'s recorded space, ready for replay.

    *trace* may be a :class:`RecordedTrace` or a trace directory path.
    ``kind`` selects the tier: ``"inproc"`` builds a
    :class:`~repro.service.service.TuningService`, ``"distributed"`` a
    :class:`~repro.distributed.gateway.DistributedService` (default 4
    workers).  The tuner defaults to a fresh
    :class:`~repro.core.tuners.run_first.RunFirstTuner` — deterministic
    on the modelled spaces, which is what recorded traces are captured
    with; pass *tuner* to replay under a different model.
    """
    from repro.backends import make_space

    if not isinstance(trace, RecordedTrace):
        trace = RecordedTrace.load(trace)
    space_info = trace.space
    space = make_space(
        space_info.get("system", "cirrus"),
        space_info.get("backend", "serial"),
    )
    if tuner is None:
        tuner = RunFirstTuner()
    if kind == "inproc":
        from repro.service.service import TuningService

        return TuningService(
            space, tuner, workers=workers or 2, **kwargs
        )
    if kind == "distributed":
        from repro.distributed.gateway import DistributedService

        return DistributedService(
            space, tuner, workers=workers or 4, **kwargs
        )
    raise ValidationError(
        f"unknown service kind {kind!r}; expected 'inproc' or 'distributed'"
    )
