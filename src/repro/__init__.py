"""repro — reproduction of *Optimizing Sparse Linear Algebra Through
Automatic Format Selection and Machine Learning* (Stylianou & Weiland,
IPDPS 2023, arXiv:2303.05098).

The package re-creates the paper's full stack in pure Python/NumPy:

* :mod:`repro.formats` — the six sparse storage formats (COO, CSR, DIA,
  ELL, HYB, HDC) and the runtime-switching :class:`DynamicMatrix`
  (the Morpheus substrate).
* :mod:`repro.spmv` — SpMV kernels and dispatch.
* :mod:`repro.machine` / :mod:`repro.backends` — simulated HPC systems
  (Table II) and Serial/OpenMP/CUDA/HIP execution spaces with a
  roofline-style timing model.
* :mod:`repro.datasets` — a deterministic 2200-matrix corpus standing in
  for SuiteSparse, plus Matrix Market I/O.
* :mod:`repro.ml` — from-scratch decision trees, random forests,
  stratified CV, grid search and metrics (the scikit-learn substitute).
* :mod:`repro.core` — Morpheus-Oracle itself: Table-I feature extraction,
  the three tuners, ``TuneMultiply``, model files and the Sparse.Tree
  offline pipeline.
* :mod:`repro.runtime` — the serving runtime: the kernel registry every
  dispatch resolves through, batched multi-vector execution, and the
  cached :class:`~repro.runtime.engine.WorkloadEngine`.
* :mod:`repro.experiments` — declarative scenario suites
  (:class:`ExperimentSpec`), the on-disk :class:`ArtifactStore`, and the
  resumable :class:`ExperimentOrchestrator` running the offline pipeline
  with parallel profiling (``repro run`` / ``repro resume``).
* :mod:`repro.service` — the concurrent online service
  (:class:`TuningService` / :class:`Session`): a sharded LRU of cached
  workload engines, coalescing of concurrent same-matrix requests into
  batched kernels, and a worker pool behind ``repro serve``.
* :mod:`repro.adaptive` — the adaptive tuning loop closing the offline →
  online gap: per-request telemetry with shadow timings
  (:class:`TelemetryLog`), drift detection against the training suite's
  fingerprinted baseline (:class:`DriftMonitor`), background retraining
  through the experiment stages, and a versioned :class:`ModelRegistry`
  from which the live service hot-swaps models (``repro adapt`` /
  ``repro serve --adaptive``).

Quickstart
----------
>>> import numpy as np
>>> from repro import DynamicMatrix, make_space, RunFirstTuner, tune_multiply
>>> from repro.datasets import stencil_2d
>>> A = DynamicMatrix(stencil_2d(32, points=5))
>>> space = make_space("cirrus", "cuda")
>>> result = tune_multiply(A, RunFirstTuner(), space, np.ones(A.ncols))
>>> result.report.format_name in ("COO", "CSR", "DIA", "ELL", "HYB", "HDC")
True
"""

from repro._version import __version__
from repro.formats import (
    COOMatrix,
    CSRMatrix,
    DIAMatrix,
    DynamicMatrix,
    ELLMatrix,
    FORMAT_IDS,
    FORMAT_NAMES,
    HDCMatrix,
    HYBMatrix,
    convert,
)
from repro.backends import ExecutionSpace, available_spaces, make_space
from repro.machine import CostModel, MatrixStats, get_system
from repro.core import (
    DecisionTreeTuner,
    ModelDatabase,
    OracleModel,
    RandomForestTuner,
    RunFirstTuner,
    extract_features,
    load_model,
    save_model,
    tune_multiply,
)
from repro.datasets import MatrixCollection
from repro.runtime import WorkloadEngine, batched_spmv
from repro.experiments import (
    ArtifactStore,
    CorpusSpec,
    ExperimentOrchestrator,
    ExperimentSpec,
    TargetSpec,
)
from repro.service import Session, TuningService
from repro.adaptive import (
    AdaptiveController,
    DriftMonitor,
    ModelRegistry,
    TelemetryLog,
)

__all__ = [
    "AdaptiveController",
    "DriftMonitor",
    "ModelRegistry",
    "TelemetryLog",
    "__version__",
    "COOMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "HDCMatrix",
    "DynamicMatrix",
    "FORMAT_IDS",
    "FORMAT_NAMES",
    "convert",
    "ExecutionSpace",
    "available_spaces",
    "make_space",
    "CostModel",
    "MatrixStats",
    "get_system",
    "DecisionTreeTuner",
    "RandomForestTuner",
    "RunFirstTuner",
    "OracleModel",
    "ModelDatabase",
    "extract_features",
    "load_model",
    "save_model",
    "tune_multiply",
    "MatrixCollection",
    "WorkloadEngine",
    "batched_spmv",
    "ArtifactStore",
    "CorpusSpec",
    "ExperimentOrchestrator",
    "ExperimentSpec",
    "TargetSpec",
    "Session",
    "TuningService",
]
