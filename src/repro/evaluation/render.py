"""Fixed-width text rendering for the experiment harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table.

    Column widths adapt to content; floats use *float_format*; the first
    column is left-aligned, the rest right-aligned (numeric convention).
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]

    def line(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
        return "  ".join(parts)

    out = []
    if title:
        out.append(title)
        out.append("")
    out.append(line(list(headers)))
    out.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out) + "\n"
