"""Statistical reductions behind the paper's tables and figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.backends.base import ExecutionSpace
from repro.core.pipeline import ProfilingResult
from repro.core.tune import tune_multiply
from repro.core.tuners.base import Tuner
from repro.datasets.collection import MatrixCollection, MatrixSpec
from repro.formats.base import FORMAT_NAMES
from repro.formats.dynamic import DynamicMatrix

__all__ = [
    "format_distribution_table",
    "speedup_summary",
    "SpeedupSummary",
    "tuner_cost_statistics",
    "TunerCostStats",
    "tuned_speedup_series",
]


def format_distribution_table(
    profiling: ProfilingResult, space_names: Sequence[str]
) -> Dict[str, Dict[str, float]]:
    """Figure 2: per-space fraction of matrices optimal in each format."""
    return {
        name: profiling.format_distribution(name) for name in space_names
    }


@dataclass(frozen=True)
class SpeedupSummary:
    """Distribution statistics of optimal-vs-CSR speedups (Figs. 3/4)."""

    n: int
    mean: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def from_array(cls, speedups: np.ndarray) -> "SpeedupSummary":
        if speedups.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            n=int(speedups.size),
            mean=float(speedups.mean()),
            median=float(np.median(speedups)),
            q3=float(np.quantile(speedups, 0.75)),
            maximum=float(speedups.max()),
        )


def speedup_summary(
    profiling: ProfilingResult,
    space_name: str,
    *,
    omit_csr_optimal: bool = True,
) -> SpeedupSummary:
    """Figures 3/4: summary of ``T_CSR / T_optimal`` for one space."""
    return SpeedupSummary.from_array(
        profiling.speedup_vs_csr(space_name, omit_csr_optimal=omit_csr_optimal)
    )


@dataclass(frozen=True)
class TunerCostStats:
    """Table IV row: tuner cost in CSR-SpMV equivalents."""

    mean: float
    std: float
    minimum: float
    q1: float
    q2: float
    q3: float
    maximum: float

    @classmethod
    def from_array(cls, costs: np.ndarray) -> "TunerCostStats":
        return cls(
            mean=float(costs.mean()),
            std=float(costs.std()),
            minimum=float(costs.min()),
            q1=float(np.quantile(costs, 0.25)),
            q2=float(np.quantile(costs, 0.5)),
            q3=float(np.quantile(costs, 0.75)),
            maximum=float(costs.max()),
        )


def tuner_cost_statistics(
    tuner: Tuner,
    collection: MatrixCollection,
    specs: Sequence[MatrixSpec],
    space: ExecutionSpace,
) -> TunerCostStats:
    """Table IV: ``(T_FE + T_PRED) / T_CSR`` statistics over *specs*."""
    costs: List[float] = []
    for spec in specs:
        stats = collection.stats(spec)
        report = tuner.tune(
            DynamicMatrix(collection.generate(spec)),
            space,
            stats=stats,
            matrix_key=spec.name,
        )
        t_csr = space.time_spmv(stats, "CSR", matrix_key=spec.name)
        costs.append(report.overhead_seconds / t_csr)
    return TunerCostStats.from_array(np.asarray(costs))


def tuned_speedup_series(
    tuner: Tuner,
    collection: MatrixCollection,
    specs: Sequence[MatrixSpec],
    space: ExecutionSpace,
    *,
    repetitions: int = 1000,
) -> Dict[str, np.ndarray]:
    """Figure 5: per-matrix tuned and oracle-optimal speedups (Eq. 2).

    Returns arrays keyed ``"tuned"`` (auto-tuner end-to-end, including
    T_FE and T_PRED) and ``"optimal"`` (hindsight-best format, no tuner
    overhead).
    """
    tuned: List[float] = []
    optimal: List[float] = []
    for spec in specs:
        stats = collection.stats(spec)
        res = tune_multiply(
            DynamicMatrix(collection.generate(spec)),
            tuner,
            space,
            stats=stats,
            matrix_key=spec.name,
            repetitions=repetitions,
        )
        tuned.append(res.speedup_vs_csr)
        times = space.time_all_formats(stats, matrix_key=spec.name)
        optimal.append(times["CSR"] / min(times.values()))
    return {
        "tuned": np.asarray(tuned),
        "optimal": np.asarray(optimal),
    }


def backend_flip_analysis(
    profiling: ProfilingResult,
    space_a: str,
    space_b: str,
) -> Dict[str, object]:
    """Section VII-B's observation, quantified: optima flip between two
    backends *of the same node* (e.g. serial vs OpenMP on ARCHER2).

    Returns the fraction of matrices whose optimal format differs between
    the two spaces and the most common (a-format -> b-format) transitions.
    """
    table_a = profiling.optimal[space_a]
    table_b = profiling.optimal[space_b]
    names = sorted(set(table_a) & set(table_b))
    if not names:
        return {"n": 0, "flip_fraction": 0.0, "transitions": {}}
    transitions: Dict[str, int] = {}
    flips = 0
    for name in names:
        a, b = table_a[name], table_b[name]
        if a != b:
            flips += 1
            key = f"{FORMAT_NAMES[a]}->{FORMAT_NAMES[b]}"
            transitions[key] = transitions.get(key, 0) + 1
    ordered = dict(
        sorted(transitions.items(), key=lambda kv: -kv[1])
    )
    return {
        "n": len(names),
        "flip_fraction": flips / len(names),
        "transitions": ordered,
    }


def confusion_by_format(
    y_true: np.ndarray, y_pred: np.ndarray
) -> Dict[str, Dict[str, int]]:
    """Readable confusion counts keyed by format name (diagnostics)."""
    out: Dict[str, Dict[str, int]] = {}
    for t, p in zip(y_true, y_pred):
        row = out.setdefault(FORMAT_NAMES[int(t)], {})
        pred = FORMAT_NAMES[int(p)]
        row[pred] = row.get(pred, 0) + 1
    return out
