"""Evaluation helpers: the paper's tables and figures as library calls.

The benchmark files under ``benchmarks/`` are thin wrappers around these
functions, so the analysis that regenerates each table/figure is itself
unit-tested API:

* :func:`format_distribution_table` — Figure 2 rows.
* :func:`speedup_summary` — Figures 3 and 4 statistics.
* :func:`tuner_cost_statistics` — Table IV statistics.
* :func:`tuned_speedup_series` — Figure 5 per-matrix series (Eq. 2).
* :func:`render_table` — fixed-width text rendering used by the harness.
"""

from repro.evaluation.analysis import (
    SpeedupSummary,
    TunerCostStats,
    backend_flip_analysis,
    format_distribution_table,
    speedup_summary,
    tuned_speedup_series,
    tuner_cost_statistics,
)
from repro.evaluation.render import render_table

__all__ = [
    "SpeedupSummary",
    "TunerCostStats",
    "backend_flip_analysis",
    "format_distribution_table",
    "speedup_summary",
    "tuned_speedup_series",
    "tuner_cost_statistics",
    "render_table",
]
