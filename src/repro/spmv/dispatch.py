"""Format-agnostic SpMV entry points."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix

__all__ = ["spmv", "spmv_iterations"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


def spmv(matrix: MatrixLike, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` using the matrix's active format kernel."""
    return matrix.spmv(x)


def spmv_iterations(
    matrix: MatrixLike, x: np.ndarray, *, iterations: int
) -> np.ndarray:
    """Repeated application ``y = A^iterations x`` (power-iteration style).

    Requires a square matrix; this is the access pattern of the iterative
    solvers that motivate amortising the tuner cost over thousands of
    SpMV calls (Section VII-E).
    """
    if iterations < 1:
        raise ValidationError(f"iterations must be >= 1, got {iterations}")
    nrows, ncols = matrix.shape
    if nrows != ncols:
        raise ValidationError(
            f"spmv_iterations needs a square matrix, got {nrows}x{ncols}"
        )
    y = np.ascontiguousarray(x, dtype=np.float64)
    for _ in range(iterations):
        y = matrix.spmv(y)
    return y
