"""Format-agnostic SpMV entry points.

Both entry points resolve their kernels through the runtime layer:
:func:`spmv` via the container's registry-backed ``spmv`` method, and
:func:`spmv_iterations` via the batched executor
(:mod:`repro.runtime.batch`), which serves repeated applications through a
cached compiled operator when scipy is available.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix

__all__ = ["spmv", "spmv_iterations"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


def spmv(matrix: MatrixLike, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` using the matrix's active format kernel."""
    return matrix.spmv(x)


def spmv_iterations(
    matrix: MatrixLike, x: np.ndarray, *, iterations: int
) -> np.ndarray:
    """Repeated application ``y = A^iterations x`` (power-iteration style).

    Requires a square matrix; this is the access pattern of the iterative
    solvers that motivate amortising the tuner cost over thousands of
    SpMV calls (Section VII-E).  Delegates to
    :func:`repro.runtime.batch.spmv_iterations`, so ``x`` may also be an
    ``(ncols, k)`` block.
    """
    from repro.runtime.batch import spmv_iterations as _run

    return _run(matrix, x, iterations=iterations)
