"""Sparse matrix × dense matrix (SpMM) entry point.

Section VI-B: TuneMultiply is defined for SpMV but "any additional
operations will follow the same principle".  SpMM (block SpMV over ``k``
right-hand sides) is the natural second operation: it reuses the format's
sparsity traversal while amortising the matrix traffic over ``k`` vectors.

The per-format block kernels live in :mod:`repro.spmv.kernels` and are
resolved through the runtime kernel registry
(:mod:`repro.runtime.registry`) under the ``"spmm"`` operation; composite
formats (HYB, HDC) compose their block kernels there.  For the cached,
scipy-accelerated batch path see :mod:`repro.runtime.batch`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ShapeError
from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix

__all__ = ["spmm", "check_block", "spmm_time_factor", "MATRIX_TRAFFIC_FRACTION"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]

#: Fraction of SpMV time attributable to matrix (not vector) traffic; used
#: by the cost model's SpMM scaling ``t_spmm ~= t_spmv * (a + (1-a) k)``.
MATRIX_TRAFFIC_FRACTION = 0.35


def check_block(matrix: SparseMatrix, X: np.ndarray) -> np.ndarray:
    """Validate and coerce an ``(ncols, k)`` dense right-hand-side block."""
    X = np.ascontiguousarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ShapeError(f"SpMM operand must be 2-D, got ndim={X.ndim}")
    if X.shape[0] != matrix.ncols:
        raise ShapeError(
            f"operand has {X.shape[0]} rows, expected ncols={matrix.ncols}"
        )
    return X


def spmm(matrix: MatrixLike, X: np.ndarray) -> np.ndarray:
    """``Y = A @ X`` for a dense block ``X`` of shape ``(ncols, k)``.

    Dispatches to the registered block kernel; containers without one
    (third-party formats that only implement ``spmv``) fall back to a
    per-column loop through their own SpMV.
    """
    from repro.runtime.registry import REGISTRY

    concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
    X = check_block(concrete, X)
    if REGISTRY.has("spmm", concrete.format):
        return REGISTRY.get("spmm", concrete.format)(concrete, X)
    # unknown container: per-column fallback through its own SpMV
    return np.column_stack(
        [concrete.spmv(X[:, j]) for j in range(X.shape[1])]
    )


def spmm_time_factor(n_vectors: int) -> float:
    """Modelled SpMM/SpMV time ratio for ``n_vectors`` right-hand sides.

    Matrix traffic is paid once; vector traffic and flops scale with k:
    ``factor = a + (1 - a) * k`` with ``a = MATRIX_TRAFFIC_FRACTION``.
    """
    if n_vectors < 1:
        raise ShapeError(f"n_vectors must be >= 1, got {n_vectors}")
    a = MATRIX_TRAFFIC_FRACTION
    return a + (1.0 - a) * n_vectors
