"""Sparse matrix × dense matrix (SpMM) kernels.

Section VI-B: TuneMultiply is defined for SpMV but "any additional
operations will follow the same principle".  SpMM (block SpMV over ``k``
right-hand sides) is the natural second operation: it reuses the format's
sparsity traversal while amortising the matrix traffic over ``k`` vectors.

Each kernel takes the format container and an ``(ncols, k)`` dense block,
returning ``(nrows, k)``.  The generic fallback applies the format's SpMV
column by column; COO/CSR/DIA/ELL have fully vectorised versions.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ShapeError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.dynamic import DynamicMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hdc import HDCMatrix
from repro.formats.hyb import HYBMatrix

__all__ = ["spmm"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]

#: Fraction of SpMV time attributable to matrix (not vector) traffic; used
#: by the cost model's SpMM scaling ``t_spmm ~= t_spmv * (a + (1-a) k)``.
MATRIX_TRAFFIC_FRACTION = 0.35


def _check_block(matrix: SparseMatrix, X: np.ndarray) -> np.ndarray:
    X = np.ascontiguousarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ShapeError(f"SpMM operand must be 2-D, got ndim={X.ndim}")
    if X.shape[0] != matrix.ncols:
        raise ShapeError(
            f"operand has {X.shape[0]} rows, expected ncols={matrix.ncols}"
        )
    return X


def _coo_spmm(m: COOMatrix, X: np.ndarray) -> np.ndarray:
    out = np.zeros((m.nrows, X.shape[1]), dtype=np.float64)
    contrib = m.data[:, None] * X[m.col]
    # one bincount per column keeps everything vectorised without add.at
    for j in range(X.shape[1]):
        out[:, j] = np.bincount(m.row, weights=contrib[:, j], minlength=m.nrows)
    return out


def _csr_spmm(m: CSRMatrix, X: np.ndarray) -> np.ndarray:
    if m.nnz == 0:
        return np.zeros((m.nrows, X.shape[1]), dtype=np.float64)
    products = m.data[:, None] * X[m.col_idx]
    prefix = np.zeros((m.nnz + 1, X.shape[1]), dtype=np.float64)
    np.cumsum(products, axis=0, out=prefix[1:])
    return prefix[m.row_ptr[1:]] - prefix[m.row_ptr[:-1]]


def _dia_spmm(m: DIAMatrix, X: np.ndarray) -> np.ndarray:
    out = np.zeros((m.nrows, X.shape[1]), dtype=np.float64)
    for kdx, off in enumerate(m.offsets):
        j_lo = max(0, int(off))
        j_hi = min(m.ncols, m.nrows + int(off))
        if j_hi <= j_lo:
            continue
        out[j_lo - int(off): j_hi - int(off)] += (
            m.data[kdx, j_lo:j_hi, None] * X[j_lo:j_hi]
        )
    return out


def _ell_spmm(m: ELLMatrix, X: np.ndarray) -> np.ndarray:
    if m.width == 0:
        return np.zeros((m.nrows, X.shape[1]), dtype=np.float64)
    valid = m.col_idx >= 0
    gathered = X[np.where(valid, m.col_idx, 0)]          # (m, w, k)
    gathered *= np.where(valid, m.data, 0.0)[:, :, None]
    return gathered.sum(axis=1)


def spmm(matrix: MatrixLike, X: np.ndarray) -> np.ndarray:
    """``Y = A @ X`` for a dense block ``X`` of shape ``(ncols, k)``."""
    concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
    X = _check_block(concrete, X)
    if isinstance(concrete, COOMatrix):
        return _coo_spmm(concrete, X)
    if isinstance(concrete, CSRMatrix):
        return _csr_spmm(concrete, X)
    if isinstance(concrete, DIAMatrix):
        return _dia_spmm(concrete, X)
    if isinstance(concrete, ELLMatrix):
        return _ell_spmm(concrete, X)
    if isinstance(concrete, HYBMatrix):
        return _ell_spmm(concrete.ell, X) + _coo_spmm(concrete.coo, X)
    if isinstance(concrete, HDCMatrix):
        return _dia_spmm(concrete.dia, X) + _csr_spmm(concrete.csr, X)
    # unknown container: per-column fallback through its own SpMV
    return np.column_stack(
        [concrete.spmv(X[:, j]) for j in range(X.shape[1])]
    )


def spmm_time_factor(n_vectors: int) -> float:
    """Modelled SpMM/SpMV time ratio for ``n_vectors`` right-hand sides.

    Matrix traffic is paid once; vector traffic and flops scale with k:
    ``factor = a + (1 - a) * k`` with ``a = MATRIX_TRAFFIC_FRACTION``.
    """
    if n_vectors < 1:
        raise ShapeError(f"n_vectors must be >= 1, got {n_vectors}")
    a = MATRIX_TRAFFIC_FRACTION
    return a + (1.0 - a) * n_vectors
