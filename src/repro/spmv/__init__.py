"""SpMV kernels and dispatch.

The container classes own their reference kernels; this subpackage exposes

* :func:`spmv` — format-agnostic dispatch (works on any container or a
  :class:`~repro.formats.dynamic.DynamicMatrix`);
* raw-array kernels (:mod:`repro.spmv.kernels`) operating directly on the
  format arrays, used by the kernel micro-benchmarks and as independent
  cross-checks of the container methods;
* :func:`spmv_iterations` — repeated application ``y = A^k x`` used by the
  iterative-solver style workloads in the examples.
"""

from repro.spmv.dispatch import spmv, spmv_iterations
from repro.spmv.spmm import spmm, spmm_time_factor
from repro.spmv import kernels

__all__ = ["spmv", "spmv_iterations", "spmm", "spmm_time_factor", "kernels"]
