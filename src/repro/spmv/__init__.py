"""SpMV kernels and dispatch.

The raw-array kernels (:mod:`repro.spmv.kernels`) are the single kernel
implementation layer; the runtime registry
(:mod:`repro.runtime.registry`) maps ``(operation, format)`` onto them and
every container / entry-point dispatch resolves there.  This subpackage
exposes

* :func:`spmv` — format-agnostic dispatch (works on any container or a
  :class:`~repro.formats.dynamic.DynamicMatrix`);
* :func:`spmm` — the block operation ``Y = A @ X`` (see
  :mod:`repro.runtime.batch` for the cached, accelerated batch path);
* :func:`spmv_iterations` — repeated application ``y = A^k x`` used by the
  iterative-solver style workloads in the examples.
"""

from repro.spmv.dispatch import spmv, spmv_iterations
from repro.spmv.spmm import spmm, spmm_time_factor
from repro.spmv import kernels

__all__ = ["spmv", "spmv_iterations", "spmm", "spmm_time_factor", "kernels"]
