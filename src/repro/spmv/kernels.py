"""Compatibility shim — the raw kernels moved to :mod:`repro.kernels.numpy`.

The single kernel implementation layer became the *reference generation*
of the multi-backend kernel package when compiled tiers
(:mod:`repro.kernels.numba`, :mod:`repro.kernels.native`) were added.
This module re-exports the NumPy kernels under their historical import
path; new code should import from :mod:`repro.kernels.numpy.kernels`.
"""

from __future__ import annotations

from repro.kernels.numpy.kernels import (  # noqa: F401
    coo_spmm,
    coo_spmv,
    csr_spmm,
    csr_spmv,
    dia_spmm,
    dia_spmv,
    ell_spmm,
    ell_spmv,
    hdc_spmv,
    hyb_spmv,
)

__all__ = [
    "coo_spmv",
    "csr_spmv",
    "dia_spmv",
    "ell_spmv",
    "hyb_spmv",
    "hdc_spmv",
    "coo_spmm",
    "csr_spmm",
    "dia_spmm",
    "ell_spmm",
]
