"""Raw-array SpMV kernels, one per storage format.

These free functions mirror the container methods but take the format's
bare arrays, the way a C kernel library would.  They exist for two reasons:
the kernel micro-benchmarks time them without container overhead, and the
test suite uses them as an independent implementation to cross-check the
container kernels (both must agree with scipy).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "coo_spmv",
    "csr_spmv",
    "dia_spmv",
    "ell_spmv",
    "hyb_spmv",
    "hdc_spmv",
]


def coo_spmv(
    nrows: int,
    row: np.ndarray,
    col: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """COO kernel: scatter-add of per-entry products."""
    return np.bincount(row, weights=data * x[col], minlength=nrows)


def csr_spmv(
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """CSR kernel via per-row segments (explicit row loop reference).

    Deliberately the straightforward loop formulation — the containers use
    the vectorised prefix-sum trick; tests assert both agree.
    """
    nrows = row_ptr.shape[0] - 1
    y = np.zeros(nrows, dtype=np.float64)
    for i in range(nrows):
        lo, hi = row_ptr[i], row_ptr[i + 1]
        if hi > lo:
            y[i] = data[lo:hi] @ x[col_idx[lo:hi]]
    return y


def dia_spmv(
    nrows: int,
    ncols: int,
    offsets: np.ndarray,
    dia_data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """DIA kernel: one vectorised pass per diagonal."""
    y = np.zeros(nrows, dtype=np.float64)
    for k, off in enumerate(offsets):
        j_lo = max(0, int(off))
        j_hi = min(ncols, nrows + int(off))
        if j_hi <= j_lo:
            continue
        y[j_lo - int(off): j_hi - int(off)] += dia_data[k, j_lo:j_hi] * x[j_lo:j_hi]
    return y


def ell_spmv(
    col_idx: np.ndarray,
    ell_data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """ELL kernel: masked gather over the fixed-width slots."""
    valid = col_idx >= 0
    gathered = x[np.where(valid, col_idx, 0)]
    return (ell_data * np.where(valid, gathered, 0.0)).sum(axis=1)


def hyb_spmv(
    nrows: int,
    ell_col_idx: np.ndarray,
    ell_data: np.ndarray,
    coo_row: np.ndarray,
    coo_col: np.ndarray,
    coo_data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """HYB kernel: ELL block plus COO overflow block."""
    y = ell_spmv(ell_col_idx, ell_data, x)
    if coo_row.shape[0]:
        y += coo_spmv(nrows, coo_row, coo_col, coo_data, x)
    return y


def hdc_spmv(
    nrows: int,
    ncols: int,
    offsets: np.ndarray,
    dia_data: np.ndarray,
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    csr_data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """HDC kernel: true-diagonal DIA block plus CSR remainder."""
    y = dia_spmv(nrows, ncols, offsets, dia_data, x)
    y += csr_spmv(row_ptr, col_idx, csr_data, x)
    return y
