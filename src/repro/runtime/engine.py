"""Cached workload engine: serve many SpMV requests against one space.

Runtime layer 3.  The paper's economics — pay the tuning cost once,
amortise it over thousands of SpMV calls — only materialise if the serving
path actually reuses the expensive artefacts.  :class:`WorkloadEngine`
binds an :class:`~repro.backends.base.ExecutionSpace` (and optionally a
:class:`~repro.core.tuners.base.Tuner`) and memoises, per matrix
fingerprint:

* the :class:`~repro.machine.stats.MatrixStats` structural summary,
* the Table-I feature vector,
* the tuner's format decision (paying ``T_FE + T_PRED`` exactly once),
* the format-converted container serving the requests,
* the per-format profiling timings (:meth:`WorkloadEngine.profile_formats`),
  which the offline pipeline's profiling stage dispatches through.

Every cache records hits and misses (:class:`CacheCounters`) and every
modelled second is accounted per category (tuning / conversion / spmv), so
experiments can assert "the second request for a fingerprint recomputes
nothing" rather than hope for it.  Requests can be served one at a time
(:meth:`WorkloadEngine.execute`) or queued with
:meth:`~WorkloadEngine.submit` and served by :meth:`~WorkloadEngine.flush`,
which groups queued vectors by fingerprint and runs each group as one
batched multi-vector SpMV through :mod:`repro.runtime.batch`.
"""

from __future__ import annotations

import copy
import hashlib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.convert import convert
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.delta import MatrixDelta
from repro.formats.dia import DIAMatrix
from repro.formats.dynamic import DynamicMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hdc import HDCMatrix
from repro.formats.hyb import HYBMatrix
from repro.kernels import check_kernel_backend, default_backend
from repro.machine.stats import MatrixStats
from repro.runtime.batch import batched_spmv, have_accelerator, matvec
from repro.runtime.registry import REGISTRY
from repro.runtime.epoch import (
    RedecisionPolicy,
    StreamState,
    StreamUpdate,
    matrix_epoch,
)
from repro.spmv.spmm import check_block, spmm_time_factor
from repro.utils.validation import check_vector_length

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import ExecutionSpace
    from repro.core.tuners.base import Tuner, TuningReport

__all__ = [
    "CacheCounters",
    "EngineResult",
    "InvalidationCounters",
    "STREAM_THRESHOLD_BYTES",
    "WorkloadEngine",
    "matrix_fingerprint",
    "request_key",
    "validate_operand",
]

MatrixLike = Union[SparseMatrix, DynamicMatrix]

#: Default size above which an mmap-backed CSR container is served by
#: row-block streaming instead of a whole-matrix kernel call (64 MiB —
#: below it a promoted container fits comfortably in page cache and the
#: single-call path is cheaper).
STREAM_THRESHOLD_BYTES = 64 << 20


def validate_operand(matrix: MatrixLike, x: np.ndarray) -> np.ndarray:
    """Validate and coerce a request operand against *matrix*.

    Accepts a length-``ncols`` vector or an ``(ncols, k)`` block and
    returns it as a contiguous float64 array; anything else raises
    :class:`ValidationError`.  Shared by every request front end (the
    engine's queue, the tuning service) so submission-time validation
    cannot diverge between them.
    """
    concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
    operand = np.ascontiguousarray(x, dtype=np.float64)
    if operand.ndim == 1:
        check_vector_length(operand, concrete.ncols, name="x")
    elif operand.ndim == 2:
        operand = check_block(concrete, operand)
    else:
        raise ValidationError(
            f"operand must be 1-D or 2-D, got ndim={operand.ndim}"
        )
    return operand


def _defining_arrays(m: SparseMatrix) -> Tuple[np.ndarray, ...]:
    """The arrays that, with shape and format, fully determine *m*."""
    if isinstance(m, COOMatrix):
        return (m.row, m.col, m.data)
    if isinstance(m, CSRMatrix):
        return (m.row_ptr, m.col_idx, m.data)
    if isinstance(m, DIAMatrix):
        return (m.offsets, m.data)
    if isinstance(m, ELLMatrix):
        return (m.col_idx, m.data)
    if isinstance(m, HYBMatrix):
        return _defining_arrays(m.ell) + _defining_arrays(m.coo)
    if isinstance(m, HDCMatrix):
        return _defining_arrays(m.dia) + _defining_arrays(m.csr)
    raise ValidationError(
        f"cannot fingerprint unknown container type {type(m).__name__}"
    )


def matrix_fingerprint(matrix: MatrixLike) -> str:
    """Stable content hash of a matrix in its active format.

    Hashes format name, shape and the defining arrays, so two containers
    holding identical arrays share a fingerprint while any structural or
    numerical difference separates them.  The same logical matrix stored
    in two *different* formats hashes differently — callers that want
    cross-format identity pass their own ``key`` to the engine instead.
    """
    m = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
    h = hashlib.blake2b(digest_size=16)
    h.update(f"{m.format}:{m.nrows}x{m.ncols}:".encode())
    for arr in _defining_arrays(m):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def request_key(matrix: MatrixLike) -> str:
    """Default cache key for a request: epoch identity, else content hash.

    Epoch-stamped matrices are keyed by ``stable_id@epoch`` — version
    identity, no ``O(nnz)`` hashing — while plain containers fall back
    to :func:`matrix_fingerprint`.  Shared by the engine and the tuning
    service so a key derived in one layer always matches the other.
    """
    identity = matrix_epoch(matrix)
    if identity is not None:
        return identity.key
    return matrix_fingerprint(matrix)


@dataclass
class CacheCounters:
    """Hit/miss tallies for every memoised artefact of the engine."""

    stats_hits: int = 0
    stats_misses: int = 0
    feature_hits: int = 0
    feature_misses: int = 0
    decision_hits: int = 0
    decision_misses: int = 0
    conversion_hits: int = 0
    conversion_misses: int = 0
    profile_hits: int = 0
    profile_misses: int = 0

    @property
    def hits(self) -> int:
        """Total cache hits across all categories."""
        return (
            self.stats_hits
            + self.feature_hits
            + self.decision_hits
            + self.conversion_hits
            + self.profile_hits
        )

    @property
    def misses(self) -> int:
        """Total cache misses across all categories."""
        return (
            self.stats_misses
            + self.feature_misses
            + self.decision_misses
            + self.conversion_misses
            + self.profile_misses
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 with no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for reports / serialisation)."""
        return {
            "stats_hits": self.stats_hits,
            "stats_misses": self.stats_misses,
            "feature_hits": self.feature_hits,
            "feature_misses": self.feature_misses,
            "decision_hits": self.decision_hits,
            "decision_misses": self.decision_misses,
            "conversion_hits": self.conversion_hits,
            "conversion_misses": self.conversion_misses,
            "profile_hits": self.profile_hits,
            "profile_misses": self.profile_misses,
        }


@dataclass
class InvalidationCounters:
    """Epoch bookkeeping: what did matrix mutations cost (and save)?

    ``epoch_advances`` counts successful :meth:`WorkloadEngine.update`
    calls; each one either *carried forward* the prior format decision
    (and its converted container) or *forced a re-tune* because the
    incrementally maintained statistics drifted past the re-decision
    threshold.  Surfaced through ``WorkloadEngine.stats()`` and
    aggregated by ``TuningService.stats()``.
    """

    epoch_advances: int = 0
    carried_forward: int = 0
    forced_retunes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for reports / serialisation)."""
        return {
            "epoch_advances": self.epoch_advances,
            "carried_forward": self.carried_forward,
            "forced_retunes": self.forced_retunes,
        }


@dataclass(frozen=True)
class EngineResult:
    """Outcome of one served request.

    ``seconds`` is the modelled device time of the SpMV itself;
    ``overhead_seconds`` carries the tuning + conversion cost paid by this
    request (zero whenever the decision came from cache).  ``epoch`` is
    the matrix version that served the request — 0 for matrices that
    never mutated.  ``backend`` is the kernel backend that actually ran
    the request (after any fallback), so per-backend latency can be
    attributed downstream.
    """

    y: np.ndarray
    seconds: float
    overhead_seconds: float
    format: str
    fingerprint: str
    from_cache: bool
    epoch: int = 0
    backend: str = "numpy"


@dataclass
class _Pending:
    """One queued request awaiting :meth:`WorkloadEngine.flush`."""

    matrix: MatrixLike
    operand: np.ndarray
    fingerprint: str
    repetitions: int


class WorkloadEngine:
    """Serve ``(matrix, x)`` SpMV requests with full artefact reuse.

    Parameters
    ----------
    space:
        The execution space requests are priced against.
    tuner:
        Optional format tuner; when absent every matrix is served in its
        active format (decision overhead zero).
    accelerate:
        Route kernels through the compiled batch path when available.
    kernel_backend:
        Kernel-backend policy for serving.  ``None`` (default) follows
        the decision chain — the tuner's per-matrix ``report.backend``
        stamp, which itself defaults to the space's configured backend.
        An explicit :mod:`repro.kernels` name pins every request to that
        backend (with clean fallback when unavailable); ``"auto"``
        re-resolves the best available tier per request.
    stream_threshold_bytes:
        Size above which an mmap-backed CSR serving container is served
        by row-block streaming (:mod:`repro.storage.stream`) instead of
        one whole-matrix kernel call — the out-of-core path.  ``0``
        streams every mmap-backed CSR container; ``None`` disables
        streaming.  Streamed results are bitwise-identical to the
        non-streamed path on every backend.
    stream_block_bytes:
        Row-panel byte budget for the streaming path (``None`` uses
        :data:`repro.storage.stream.DEFAULT_BLOCK_BYTES`).
    """

    def __init__(
        self,
        space: "ExecutionSpace",
        tuner: Optional["Tuner"] = None,
        *,
        accelerate: bool = True,
        redecision: Optional[RedecisionPolicy] = None,
        kernel_backend: Optional[str] = None,
        stream_threshold_bytes: Optional[int] = STREAM_THRESHOLD_BYTES,
        stream_block_bytes: Optional[int] = None,
    ) -> None:
        self.space = space
        self.tuner = tuner
        self.accelerate = accelerate
        if kernel_backend is not None:
            kernel_backend = str(kernel_backend).strip().lower()
            if kernel_backend != "auto":
                kernel_backend = check_kernel_backend(kernel_backend)
        #: Engine-level kernel-backend pin (``None`` follows the tuner).
        self.kernel_backend = kernel_backend
        #: Policy deciding when an epoch advance forces a re-tune
        #: (:meth:`update`); below its threshold the prior decision is
        #: carried forward.
        self.redecision = redecision if redecision is not None else RedecisionPolicy()
        #: Version stamp of the deployed model driving decisions ("-"
        #: when untracked); kept in lock-step with the tuner by
        #: :meth:`set_tuner` so results can attribute themselves to the
        #: exact model that decided their format.
        self.model_version = "-"
        self.counters = CacheCounters()
        #: Modelled seconds spent on this space, by category.  ``warmup``
        #: is real wall time: the per-process first-touch compilation /
        #: load cost of compiled kernel backends (:meth:`KernelRegistry
        #: .warmup`), paid at most once per (operation, format, backend).
        self.seconds: Dict[str, float] = {
            "tuning": 0.0,
            "conversion": 0.0,
            "spmv": 0.0,
            "warmup": 0.0,
        }
        self.requests_served = 0
        #: Number of first-touch kernel warm-ups this engine triggered.
        self.warmups = 0
        #: Out-of-core serving policy (see the constructor parameters).
        self.stream_threshold_bytes = (
            int(stream_threshold_bytes)
            if stream_threshold_bytes is not None
            else None
        )
        self.stream_block_bytes = (
            int(stream_block_bytes) if stream_block_bytes is not None else None
        )
        #: Row-block streaming tallies: requests served by streaming,
        #: panels dispatched, and real wall seconds spent streaming.
        self.streaming: Dict[str, float] = {
            "requests": 0,
            "blocks": 0,
            "seconds": 0.0,
        }
        #: Per-kernel-backend request counts and modelled SpMV seconds.
        self.backend_seconds: Dict[str, Dict[str, float]] = {}
        self._stats: Dict[str, MatrixStats] = {}
        self._features: Dict[str, np.ndarray] = {}
        self._reports: Dict[str, "TuningReport"] = {}
        self._prepared: Dict[str, SparseMatrix] = {}
        self._format_times: Dict[str, Dict[str, float]] = {}
        self._backend_times: Dict[str, Dict[str, Dict[str, float]]] = {}
        self._queue: List[_Pending] = []
        self._streams: Dict[str, StreamState] = {}
        self.invalidations = InvalidationCounters()

    # ------------------------------------------------------------------
    # memoised artefacts
    # ------------------------------------------------------------------
    def fingerprint(self, matrix: MatrixLike, *, key: Optional[str] = None) -> str:
        """Cache key for *matrix*: caller ``key``, epoch identity, or hash.

        Epoch-stamped matrices (anything that went through
        :meth:`~repro.formats.base.SparseMatrix.with_updates`, or whose
        :attr:`~repro.formats.base.SparseMatrix.stable_id` was touched)
        are keyed by their :class:`~repro.runtime.epoch.MatrixEpoch` —
        ``stable_id@epoch`` — instead of hashing the defining arrays:
        version identity replaces content identity, so a mutation is a
        new key without an ``O(nnz)`` hash, and two epochs of one matrix
        can never collide in the cache.
        """
        return key if key is not None else request_key(matrix)

    def stats_for(
        self, matrix: MatrixLike, *, key: Optional[str] = None
    ) -> MatrixStats:
        """Memoised :class:`MatrixStats` for *matrix*."""
        fp = self.fingerprint(matrix, key=key)
        if fp in self._stats:
            self.counters.stats_hits += 1
            return self._stats[fp]
        self.counters.stats_misses += 1
        matrix = self._resolve(matrix, fp)
        concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        stats = MatrixStats.from_matrix(concrete)
        self._stats[fp] = stats
        return stats

    def features_for(
        self, matrix: MatrixLike, *, key: Optional[str] = None
    ) -> np.ndarray:
        """Memoised Table-I feature vector for *matrix*."""
        from repro.core.features import extract_features_from_stats

        fp = self.fingerprint(matrix, key=key)
        if fp in self._features:
            self.counters.feature_hits += 1
            return self._features[fp]
        self.counters.feature_misses += 1
        vec = extract_features_from_stats(self.stats_for(matrix, key=fp))
        self._features[fp] = vec
        return vec

    def set_tuner(
        self, tuner: Optional["Tuner"], *, version: Optional[str] = None
    ) -> None:
        """Hot-swap the tuner; future requests re-decide, artefacts stay warm.

        Replaces the format tuner (and its :attr:`model_version` stamp)
        and invalidates the artefacts that depend on it — the memoised
        decisions and the format-converted containers — while keeping
        everything model-independent (stats, features, per-format
        profile timings) cached.  The caller is responsible for
        serialising the swap against concurrent serving (the tuning
        service swaps under its engine-cache shard locks, so an
        in-flight batch always finishes under one model and is stamped
        with that model's version).
        """
        self.tuner = tuner
        if version is not None:
            self.model_version = str(version)
        self._reports.clear()
        self._prepared.clear()
        # stream drift anchors pointed at old-model decisions; clearing
        # them re-anchors each stream at the new model's first decision
        # (the next update adopts the then-current stats snapshot)
        for state in self._streams.values():
            state.decided_stats = None

    def profile_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Copy of every memoised per-format timing table, keyed by matrix.

        The adaptive telemetry layer treats these timings as the
        shadow-profiling baseline; the service folds this snapshot into
        its totals when an engine is evicted so the baseline survives
        the engine itself.
        """
        return {fp: dict(times) for fp, times in self._format_times.items()}

    def prime_stats(self, key: str, stats: MatrixStats) -> None:
        """Adopt externally computed *stats* under cache key *key*.

        Lets orchestrators that resolved stats elsewhere (a collection
        cache, a worker pool, an artifact store) share them with the
        engine without re-deriving them from a materialised matrix.
        """
        self._stats.setdefault(key, stats)

    def profile_formats(
        self,
        matrix: Optional[MatrixLike] = None,
        *,
        key: Optional[str] = None,
        stats: Optional[MatrixStats] = None,
    ) -> Dict[str, float]:
        """Memoised per-format single-SpMV timings (the profiling probe).

        The offline pipeline's profiling stage asks this once per
        (matrix, space); re-profiling the same fingerprint — a resumed
        run, a second suite sharing matrices — is a cache hit.  Accepts
        either a *matrix*, or ``key`` + ``stats`` when the caller already
        holds the structural summary (no materialisation needed).
        """
        if matrix is None and key is None:
            raise ValidationError(
                "profile_formats needs a matrix or an explicit key"
            )
        fp = key if matrix is None else self.fingerprint(matrix, key=key)
        if fp in self._format_times:
            self.counters.profile_hits += 1
            return dict(self._format_times[fp])
        self.counters.profile_misses += 1
        if stats is not None:
            self.prime_stats(fp, stats)
        elif matrix is None:
            raise ValidationError(
                "profile_formats with a bare key also needs stats"
            )
        times = self.space.time_all_formats(
            self.stats_for(matrix, key=fp) if stats is None else stats,
            matrix_key=fp,
        )
        self._format_times[fp] = dict(times)
        return dict(times)

    def profile_backends(
        self,
        matrix: Optional[MatrixLike] = None,
        *,
        key: Optional[str] = None,
        stats: Optional[MatrixStats] = None,
    ) -> Dict[str, Dict[str, float]]:
        """Memoised ``{kernel_backend: {format: seconds}}`` timing surface.

        The backend-aware sibling of :meth:`profile_formats`: one probe
        per (matrix, space) covering every kernel backend this space
        would trial (:meth:`~repro.backends.base.ExecutionSpace
        .kernel_backend_candidates`).  Shares the profile hit/miss
        counters with the per-format probe.
        """
        if matrix is None and key is None:
            raise ValidationError(
                "profile_backends needs a matrix or an explicit key"
            )
        fp = key if matrix is None else self.fingerprint(matrix, key=key)
        if fp in self._backend_times:
            self.counters.profile_hits += 1
            return {kb: dict(t) for kb, t in self._backend_times[fp].items()}
        self.counters.profile_misses += 1
        if stats is not None:
            self.prime_stats(fp, stats)
        elif matrix is None:
            raise ValidationError(
                "profile_backends with a bare key also needs stats"
            )
        grid = self.space.time_format_backends(
            self.stats_for(matrix, key=fp) if stats is None else stats,
            matrix_key=fp,
        )
        self._backend_times[fp] = {kb: dict(t) for kb, t in grid.items()}
        return {kb: dict(t) for kb, t in grid.items()}

    def decision_for(
        self, matrix: MatrixLike, *, key: Optional[str] = None
    ) -> "TuningReport":
        """Memoised tuner decision; pays ``T_FE + T_PRED`` once per matrix."""
        fp = self.fingerprint(matrix, key=key)
        if fp in self._reports:
            self.counters.decision_hits += 1
            return self._reports[fp]
        matrix = self._resolve(matrix, fp)
        return self._decide(matrix, fp, self.stats_for(matrix, key=fp))

    def _decide(
        self, matrix: MatrixLike, fp: str, stats: MatrixStats
    ) -> "TuningReport":
        """Decision lookup with *stats* already resolved (one count each)."""
        from repro.core.tuners.base import TuningReport

        if fp in self._reports:
            self.counters.decision_hits += 1
            return self._reports[fp]
        self.counters.decision_misses += 1
        if self.tuner is None:
            concrete = (
                matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
            )
            report = TuningReport(
                format_id=concrete.format_id,
                backend=self.space.kernel_backend,
            )
        else:
            report = self.tuner.tune(matrix, self.space, stats=stats, matrix_key=fp)
        self.seconds["tuning"] += report.overhead_seconds
        self._reports[fp] = report
        return report

    def _prepared_for(
        self,
        matrix: MatrixLike,
        fp: str,
        report: "TuningReport",
        stats: MatrixStats,
    ) -> SparseMatrix:
        """Memoised container converted to the decided serving format."""
        if fp in self._prepared:
            self.counters.conversion_hits += 1
            return self._prepared[fp]
        self.counters.conversion_misses += 1
        concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        target = report.format_name
        if concrete.format != target:
            self.seconds["conversion"] += self.space.time_conversion(
                stats, concrete.format, target
            )
            concrete = convert(concrete, target)
        self._prepared[fp] = concrete
        return concrete

    def demote_payload(
        self, key: str
    ) -> Optional[Tuple[SparseMatrix, Dict[str, object]]]:
        """The serving container + decision metadata a tier demotion needs.

        Returns ``(prepared, meta)`` for a key holding a converted
        serving container, or ``None`` when there is nothing worth
        spilling (no conversion paid yet).  ``meta`` carries the decided
        format, the serving backend, and the matrix statistics — enough
        for :meth:`adopt_prepared` on a fresh engine to restore the full
        first-request artefact chain without recomputing anything.
        """
        prepared = self._prepared.get(key)
        if prepared is None:
            return None
        report = self._reports.get(key)
        meta: Dict[str, object] = {
            "format": prepared.format,
            "backend": (
                report.backend if report is not None else self.space.kernel_backend
            ),
        }
        stats = self._stats.get(key)
        if stats is not None:
            meta["stats"] = stats.to_dict()
        return prepared, meta

    def adopt_prepared(
        self,
        key: str,
        container: SparseMatrix,
        *,
        backend: Optional[str] = None,
        stats: Optional[MatrixStats] = None,
    ) -> None:
        """Pre-seed the serving artefacts for *key* from a promoted container.

        The disk tier's promotion path: *container* (typically read-only
        mmap views re-attached by :meth:`repro.storage.tier.StorageTier
        .promote`) becomes the memoised serving container, and a
        decision pinning its format (and *backend*) is installed so the
        next request is a full cache hit — no stats pass, no tuner, no
        conversion.  *stats* (persisted with the demoted entry) restores
        the pricing statistics without an ``O(nnz)`` recompute over the
        mmapped arrays.  Existing decisions are never overwritten.
        """
        from repro.core.tuners.base import TuningReport

        if stats is not None:
            self.prime_stats(key, stats)
        self._prepared[key] = container
        if key not in self._reports:
            self._reports[key] = TuningReport(
                format_id=container.format_id,
                backend=(
                    str(backend) if backend else self.space.kernel_backend
                ),
            )

    def prepare(self, matrix: MatrixLike, *, key: Optional[str] = None) -> SparseMatrix:
        """Resolve the serving container for *matrix*: decide + convert.

        Pays the full first-request artefact chain — fingerprint, stats,
        features, tuner decision, format conversion — and memoises every
        step, so a subsequent :meth:`execute` only runs the kernel.  The
        warm-up entry point for latency-sensitive callers (and the
        from-scratch baseline the streaming benchmark times).
        """
        fp = self.fingerprint(matrix, key=key)
        stats = self.stats_for(matrix, key=fp)
        report = self._decide(matrix, fp, stats)
        return self._prepared_for(matrix, fp, report, stats)

    # ------------------------------------------------------------------
    # streaming: epoch advances without rebuilding the world
    # ------------------------------------------------------------------
    def track(self, matrix: MatrixLike, *, key: Optional[str] = None) -> str:
        """Register *matrix* as a mutable stream; returns its cache key.

        Tracking seeds the incremental statistics (row histogram +
        diagonal census) from the matrix's canonical COO view and pins
        that view as the authoritative content — every subsequent
        :meth:`update` merges its delta into it.  Idempotent per key.
        """
        concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        fp = key if key is not None else concrete.stable_id
        if fp in self._streams:
            return fp
        state = StreamState(fp, concrete.epoch, concrete.to_coo())
        self._streams[fp] = state
        self._stats.setdefault(fp, state.inc.to_stats())
        return fp

    def epoch_of(self, key: str) -> int:
        """Current epoch of a tracked stream (0 for untracked keys)."""
        state = self._streams.get(key)
        return state.epoch if state is not None else 0

    def has_decision(self, key: str) -> bool:
        """True when a memoised tuner decision exists for *key*."""
        return key in self._reports

    def prime_decision(
        self, key: str, matrix: Optional[MatrixLike] = None
    ) -> None:
        """Recreate the tuner decision for *key*, with no accounting effect.

        The distributed tier's respawn path uses this while replaying a
        matrix's acknowledged mutation log: a delta that was applied
        while a serving decision existed must replay against one too,
        otherwise the rebuilt stream skips the drift bookkeeping (the
        no-decision early path in :meth:`update`) and its anchors
        diverge from the state the dead worker acknowledged.  The tuner
        is deterministic on the modelled spaces, so re-deriving the
        decision reproduces it.  No-op when a decision already exists;
        *matrix* is only needed for keys not yet tracked as streams.
        """
        if key in self._reports:
            return
        counters = copy.copy(self.counters)
        seconds = dict(self.seconds)
        invalidations = copy.copy(self.invalidations)
        try:
            state = self._streams.get(key)
            if state is not None:
                content = state.content()
                stats = self._stats.get(key)
                if stats is None:
                    stats = state.inc.to_stats()
            elif matrix is not None:
                content = (
                    matrix.concrete
                    if isinstance(matrix, DynamicMatrix)
                    else matrix
                )
                stats = self.stats_for(content, key=key)
            else:
                raise ValidationError(
                    f"unknown stream {key!r}: pass matrix= to prime a "
                    "decision for an untracked key"
                )
            self._decide(content, key, stats)
        finally:
            self.counters = counters
            self.seconds = seconds
            self.invalidations = invalidations

    def has_mutated_streams(self) -> bool:
        """True when any tracked stream has absorbed updates.

        Merged stream content exists nowhere but this engine — the
        caller's matrix is still the pre-update epoch — so an engine
        with mutated streams cannot be dropped and rebuilt without
        silently losing acknowledged mutations.  Engine caches use this
        to exempt such engines from eviction.
        """
        return any(state.updates > 0 for state in self._streams.values())

    def update(
        self,
        key: str,
        delta: MatrixDelta,
        *,
        matrix: Optional[MatrixLike] = None,
        replay: bool = False,
    ) -> StreamUpdate:
        """Advance a tracked matrix one epoch; keep the caches warm.

        The delta is merged into the stream's canonical base in
        ``O(nnz + k)`` (no re-canonicalisation, no content re-hash) and
        the incremental statistics absorb its structural effect in
        ``O(k)``.  The :attr:`redecision` policy then measures how far
        the refreshed statistics drifted from those the live decision
        was made against:

        * **below threshold** — the decision is *carried forward*: no
          features, no tuner, no modelled tuning/conversion charge; the
          serving container is re-materialised from the merged base in
          the already-decided format, and the per-format profile
          timings survive (they remain the shadow baseline);
        * **above threshold** — a *forced re-tune*: the decision,
          serving container and profile timings are invalidated and the
          tuner re-runs against the incrementally maintained stats
          (still no ``O(nnz)`` recompute).

        ``matrix`` is only needed on the first update of an untracked
        key (it starts the stream).  Callers must serialise updates with
        concurrent serving per key — the tuning service does so under
        its engine-cache shard lock.

        ``replay=True`` applies the delta with full state effect but
        **no accounting effect**: cache counters, modelled seconds, and
        invalidation tallies are restored afterwards.  The distributed
        tier's respawn path replays a matrix's acknowledged mutation log
        through this flag — the dead incarnation already counted those
        applications (and its last-heartbeat snapshot folded them into
        the retired totals), so counting them again on the rebuilt
        engine would over-count fleet stats after every respawn.
        """
        if replay:
            counters = copy.copy(self.counters)
            seconds = dict(self.seconds)
            invalidations = copy.copy(self.invalidations)
            try:
                return self.update(key, delta, matrix=matrix)
            finally:
                self.counters = counters
                self.seconds = seconds
                self.invalidations = invalidations
        state = self._streams.get(key)
        if state is None:
            if matrix is None:
                raise ValidationError(
                    f"unknown stream {key!r}: pass matrix= on the first "
                    "update to start tracking"
                )
            self.track(matrix, key=key)
            state = self._streams[key]
        prev_stats = self._stats.get(key)
        state.merge(delta)
        self.invalidations.epoch_advances += 1
        new_stats = state.inc.to_stats()
        self._stats[key] = new_stats
        # features derive from stats in O(1): drop the stale vector and
        # let the next request rebuild it from the maintained stats
        self._features.pop(key, None)
        report = self._reports.get(key)
        if report is None:
            # no decision yet: the next request pays the usual first-time
            # cost against the (incrementally maintained) stats
            self._prepared.pop(key, None)
            return StreamUpdate(
                key=key,
                epoch=state.epoch,
                carried_forward=False,
                retuned=False,
                format=None,
                drift=0.0,
                nnz=state.inc.nnz,
                delta_size=len(delta),
                bandwidth=state.inc.bandwidth,
            )
        if state.decided_stats is None:
            # the live decision predates stream bookkeeping: its
            # reference population is the last pre-update snapshot
            state.decided_stats = prev_stats
        drift = self.redecision.drift(state.decided_stats, new_stats)
        retuned = self.redecision.should_retune(drift)
        if retuned:
            self._reports.pop(key, None)
            self._prepared.pop(key, None)
            self._format_times.pop(key, None)
            self._backend_times.pop(key, None)
            self.invalidations.forced_retunes += 1
            content = state.content()
            report = self._decide(content, key, new_stats)
            state.decided_stats = new_stats
            prepared = self._prepared_for(content, key, report, new_stats)
        else:
            self.invalidations.carried_forward += 1
            # decision, profile timings and modelled charges all carry
            # forward; only the serving container re-materialises so it
            # reflects the merged content — CSR straight from the keyed
            # arrays, other formats through the COO view
            target = report.format_name
            if target == "CSR":
                prepared = state.prepared_csr()
            elif target == "COO":
                prepared = state.content()
            else:
                prepared = convert(state.content(), target)
            self._prepared[key] = prepared
        return StreamUpdate(
            key=key,
            epoch=state.epoch,
            carried_forward=not retuned,
            retuned=retuned,
            format=prepared.format,
            drift=drift,
            nnz=state.inc.nnz,
            delta_size=len(delta),
            bandwidth=state.inc.bandwidth,
        )

    def stream_base(self, key: str) -> Optional[COOMatrix]:
        """The authoritative canonical-COO content of a tracked stream."""
        state = self._streams.get(key)
        return state.content() if state is not None else None

    def _resolve(self, matrix: MatrixLike, fp: str) -> MatrixLike:
        """Swap a request's matrix for the stream content when tracked.

        Once a key has been mutated, the caller's container is a stale
        epoch; every artefact rebuild must come from the stream's merged
        base or a post-update cache miss would silently serve old data.
        """
        state = self._streams.get(fp)
        return state.content() if state is not None else matrix

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _serving_backend(self, report: "TuningReport", fmt: str) -> str:
        """The kernel backend that will serve a request in format *fmt*.

        Precedence: the engine-level pin, then the tuner's per-matrix
        decision stamp.  ``"auto"`` re-resolves the best available tier;
        compiled requests resolve through the registry (clean fallback
        when masked or unavailable) and charge their per-process
        first-touch warm-up to ``seconds["warmup"]`` as real wall time.
        """
        requested = (
            self.kernel_backend
            if self.kernel_backend is not None
            else report.backend
        )
        if requested == "auto":
            requested = default_backend()
        if requested == "numpy":
            return "numpy"
        _, actual = REGISTRY.resolve("spmv", fmt, requested)
        if actual != "numpy" and not REGISTRY.is_warm("spmv", fmt, actual):
            self.seconds["warmup"] += REGISTRY.warmup("spmv", fmt, actual)
            self.warmups += 1
        return actual

    def _account_backend(self, backend: str, seconds: float) -> None:
        """Fold one served request into the per-backend attribution."""
        entry = self.backend_seconds.setdefault(
            backend, {"requests": 0, "seconds": 0.0}
        )
        entry["requests"] += 1
        entry["seconds"] += seconds

    def _should_stream(self, prepared: SparseMatrix) -> bool:
        """Whether *prepared* is served out-of-core by row-block streaming.

        Streaming applies to mmap-backed CSR containers at or above the
        :attr:`stream_threshold_bytes` floor — in-RAM containers and
        other formats keep the whole-matrix call path.
        """
        if self.stream_threshold_bytes is None:
            return False
        if not isinstance(prepared, CSRMatrix):
            return False
        if prepared.nbytes() < self.stream_threshold_bytes:
            return False
        from repro.storage.stream import mmap_backed

        return mmap_backed(prepared)

    def _run_kernel(
        self,
        prepared: SparseMatrix,
        operand: np.ndarray,
        kb: Optional[str],
    ) -> np.ndarray:
        """One kernel call; mmap-backed CSR above threshold streams."""
        if self._should_stream(prepared):
            return self._stream_kernel(prepared, operand, kb)
        if operand.ndim == 2:
            return batched_spmv(
                prepared, operand, accelerate=self.accelerate, backend=kb
            )
        return matvec(prepared, operand, accelerate=self.accelerate, backend=kb)

    def _stream_kernel(
        self,
        prepared: CSRMatrix,
        operand: np.ndarray,
        kb: Optional[str],
    ) -> np.ndarray:
        """Serve one request by row panels, bitwise-identical per path.

        Each configuration streams through the *same arithmetic* its
        whole-matrix counterpart uses, so results match bit for bit:

        * compiled (scipy) path — per-panel operators; the compiled CSR
          kernel accumulates each row locally, so panel rows are exactly
          the rows of the full-matrix call;
        * registry backends — per-panel dispatch (row-local kernels) or
          the carry-seeded prefix-sum replay for the ``numpy`` reference
          kernel (see :mod:`repro.storage.stream`).
        """
        from repro.storage.stream import (
            iter_row_blocks,
            plan_block_rows,
            streaming_spmm,
            streaming_spmv,
        )

        started = time.perf_counter()
        step = plan_block_rows(prepared, self.stream_block_bytes)
        if kb is None and self.accelerate and have_accelerator():
            shape = (
                (prepared.nrows,)
                if operand.ndim == 1
                else (prepared.nrows, operand.shape[1])
            )
            y = np.empty(shape, dtype=np.float64)
            for i0, i1, panel in iter_row_blocks(prepared, step):
                y[i0:i1] = matvec(panel, operand, accelerate=True)
        elif operand.ndim == 2:
            y = streaming_spmm(
                prepared, operand, backend=kb or "numpy", block_rows=step
            )
        else:
            y = streaming_spmv(
                prepared, operand, backend=kb or "numpy", block_rows=step
            )
        self.streaming["requests"] += 1
        self.streaming["blocks"] += -(-prepared.nrows // step)
        self.streaming["seconds"] += time.perf_counter() - started
        return y

    def execute(
        self,
        matrix: MatrixLike,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        repetitions: int = 1,
    ) -> EngineResult:
        """Serve one request: tune (cached), convert (cached), run, account.

        ``x`` may be a length-``ncols`` vector or an ``(ncols, k)`` block;
        ``repetitions`` scales the modelled SpMV seconds (iterative
        workloads run the same product many times).
        """
        fp = self.fingerprint(matrix, key=key)
        matrix = self._resolve(matrix, fp)
        cached = fp in self._reports
        overhead_before = self.seconds["tuning"] + self.seconds["conversion"]
        stats = self.stats_for(matrix, key=fp)
        report = self._decide(matrix, fp, stats)
        prepared = self._prepared_for(matrix, fp, report, stats)
        overhead = (self.seconds["tuning"] + self.seconds["conversion"]) - overhead_before
        backend = self._serving_backend(report, prepared.format)
        kb = None if backend == "numpy" else backend
        operand = np.ascontiguousarray(x, dtype=np.float64)
        y = self._run_kernel(prepared, operand, kb)
        n_vectors = operand.shape[1] if operand.ndim == 2 else 1
        seconds = (
            repetitions
            * spmm_time_factor(max(1, n_vectors))
            * self.space.time_spmv(
                stats, prepared.format, matrix_key=fp, kernel_backend=backend
            )
        )
        self.seconds["spmv"] += seconds
        self.requests_served += 1
        self._account_backend(backend, seconds)
        return EngineResult(
            y=y,
            seconds=seconds,
            overhead_seconds=overhead,
            format=prepared.format,
            fingerprint=fp,
            from_cache=cached,
            epoch=self.epoch_of(fp),
            backend=backend,
        )

    # ------------------------------------------------------------------
    # queued serving
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: MatrixLike,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        repetitions: int = 1,
    ) -> int:
        """Queue a request; returns its position in the flush results.

        Operands are fully validated here (shape and length against the
        matrix), so a malformed request is rejected at submission and can
        never abort a later :meth:`flush` with valid requests queued.
        """
        operand = validate_operand(matrix, x)
        fp = self.fingerprint(matrix, key=key)
        self._queue.append(_Pending(matrix, operand, fp, int(repetitions)))
        return len(self._queue) - 1

    @property
    def pending(self) -> int:
        """Number of queued, un-flushed requests."""
        return len(self._queue)

    def flush(self) -> List[EngineResult]:
        """Serve the queue; same-matrix vectors run as one batched SpMV.

        Queued 1-D requests sharing a fingerprint are stacked into a
        single ``(ncols, k)`` block and served by one batched kernel call;
        results come back in submission order.
        """
        queue, self._queue = self._queue, []
        results: List[Optional[EngineResult]] = [None] * len(queue)
        groups: Dict[str, List[int]] = {}
        for idx, pending in enumerate(queue):
            groups.setdefault(pending.fingerprint, []).append(idx)
        for fp, indices in groups.items():
            first = queue[indices[0]]
            first_matrix = self._resolve(first.matrix, fp)
            was_cached = fp in self._reports
            before = self.seconds["tuning"] + self.seconds["conversion"]
            stats = self.stats_for(first_matrix, key=fp)
            report = self._decide(first_matrix, fp, stats)
            prepared = self._prepared_for(first_matrix, fp, report, stats)
            first_overhead = (
                self.seconds["tuning"] + self.seconds["conversion"]
            ) - before
            backend = self._serving_backend(report, prepared.format)
            kb = None if backend == "numpy" else backend
            t_single = self.space.time_spmv(
                stats, prepared.format, matrix_key=fp, kernel_backend=backend
            )
            # one batched kernel call for all stacked single-vector requests
            singles = [i for i in indices if queue[i].operand.ndim == 1]
            col_of = {i: c for c, i in enumerate(singles)}
            if singles:
                X = np.stack([queue[i].operand for i in singles], axis=1)
                Y = self._run_kernel(prepared, X, kb)
            for pos, i in enumerate(indices):
                pending = queue[i]
                if pos > 0:
                    # request-level accounting: later group members resolve
                    # every artefact from the warm caches
                    member_stats = self.stats_for(pending.matrix, key=fp)
                    self._decide(pending.matrix, fp, member_stats)
                    self._prepared_for(pending.matrix, fp, report, member_stats)
                if pending.operand.ndim == 1:
                    y = Y[:, col_of[i]]
                    n_vectors = 1
                else:
                    y = self._run_kernel(prepared, pending.operand, kb)
                    n_vectors = pending.operand.shape[1]
                seconds = (
                    pending.repetitions
                    * spmm_time_factor(max(1, n_vectors))
                    * t_single
                )
                self.seconds["spmv"] += seconds
                self.requests_served += 1
                self._account_backend(backend, seconds)
                results[i] = EngineResult(
                    y=y,
                    seconds=seconds,
                    overhead_seconds=first_overhead if pos == 0 else 0.0,
                    format=prepared.format,
                    fingerprint=fp,
                    from_cache=was_cached or pos > 0,
                    epoch=self.epoch_of(fp),
                    backend=backend,
                )
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Every engine counter in one dict — the metrics surface.

        Callers (the service's metrics endpoint, the CLI, dashboards)
        should consume this rather than poking ``counters`` attributes:

        * ``requests_served`` / ``unique_matrices`` / ``pending`` —
          request-stream tallies;
        * ``counters`` — the per-cache hit/miss breakdown
          (:meth:`CacheCounters.as_dict`);
        * ``hits`` / ``misses`` / ``hit_rate`` — the cross-cache totals;
        * ``seconds`` — modelled time by category
          (tuning / conversion / spmv / warmup, the last being real
          wall time spent on compiled-kernel first-touch);
        * ``backends`` — per-kernel-backend request counts and modelled
          SpMV seconds, plus ``warmups`` (first-touch compilations this
          engine triggered);
        * ``invalidations`` — epoch bookkeeping for mutable matrices
          (epoch advances, carried-forward decisions, forced re-tunes;
          :meth:`InvalidationCounters.as_dict`) plus the number of live
          ``streams``.

        The dict is a snapshot: mutating it never affects the engine.
        """
        return {
            "space": self.space.name,
            "requests_served": self.requests_served,
            "unique_matrices": len(self._reports),
            "pending": len(self._queue),
            "counters": self.counters.as_dict(),
            "hits": self.counters.hits,
            "misses": self.counters.misses,
            "hit_rate": self.counters.hit_rate,
            "seconds": dict(self.seconds),
            "backends": {kb: dict(v) for kb, v in self.backend_seconds.items()},
            "warmups": self.warmups,
            "streaming": dict(self.streaming),
            "invalidations": self.invalidations.as_dict(),
            "streams": len(self._streams),
        }

    def summary(self) -> Dict[str, object]:
        """Legacy serving report; prefer :meth:`stats` (superset keys)."""
        stats = self.stats()
        return {
            "space": stats["space"],
            "requests_served": stats["requests_served"],
            "unique_matrices": stats["unique_matrices"],
            "counters": stats["counters"],
            "cache_hit_rate": stats["hit_rate"],
            "seconds": stats["seconds"],
        }

    def reset_accounting(self) -> None:
        """Zero the counters and time accounting; caches stay warm."""
        self.counters = CacheCounters()
        self.seconds = {
            "tuning": 0.0,
            "conversion": 0.0,
            "spmv": 0.0,
            "warmup": 0.0,
        }
        self.requests_served = 0
        self.warmups = 0
        self.backend_seconds = {}
        self.streaming = {"requests": 0, "blocks": 0, "seconds": 0.0}
