"""Kernel registry: the ``(operation, format, backend) → kernel`` table.

Runtime layer 1.  Every sparse kernel the package executes is dispatched
through :data:`REGISTRY`; the format containers' ``spmv`` methods, the
format-agnostic :func:`repro.spmv.spmm.spmm` entry point and the batched
executor (:mod:`repro.runtime.batch`) all resolve their kernel here.  The
table is three-dimensional: each ``(operation, format)`` pair can carry
one kernel per *kernel backend* — the implementation generations of
:mod:`repro.kernels` (``numpy`` reference, ``numba`` JIT, ``native`` C).

Resolution and fallback
-----------------------
``get(op, fmt)`` with no backend resolves the *best available* backend in
preference order, so existing two-argument callers transparently keep the
reference tier semantics (``numpy`` is the terminal fallback and always
registered).  ``resolve(op, fmt, backend)`` returns both the kernel and
the backend it actually came from: a requested backend that is masked,
unavailable, or missing that particular ``(op, fmt)`` entry falls down the
preference chain instead of raising — compiled tiers degrade cleanly to
NumPy rather than taking the serving path down.

Warm-up
-------
JIT backends compile on first touch.  ``warmup(op, fmt, backend)`` runs
the kernel once on a tiny container and reports the wall seconds the
compile cost, tracked per-process so each key only ever pays once; the
engine folds those seconds into its stats.

Registered kernels take ``(matrix, operand)`` where *matrix* is a concrete
format container and *operand* is a pre-validated dense vector (``spmv``)
or ``(ncols, k)`` block (``spmm``).  Composite formats (HYB, HDC) do not
carry standalone traversal logic: their entries compose their sub-block
kernels within the same backend.

Third-party formats can join the dispatch path with::

    @register_kernel("spmv", "MYFMT")            # numpy tier
    def my_spmv(matrix, x):
        ...

    @register_kernel("spmv", "MYFMT", "numba")   # compiled tier
    def my_spmv_jit(matrix, x):
        ...
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Set, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import FORMAT_IDS
from repro.kernels import (
    PREFERENCE,
    available_backends,
    check_kernel_backend,
    register_default_backends,
)

__all__ = [
    "KernelRegistry",
    "REGISTRY",
    "register_kernel",
    "get_kernel",
    "has_kernel",
    "resolve_kernel",
    "kernel_backends",
    "registered_operations",
    "registered_formats",
    "dispatch",
    "warmup_kernel",
]

#: A kernel takes (concrete container, pre-validated operand) -> ndarray.
Kernel = Callable[[object, np.ndarray], np.ndarray]

#: The backend two-argument callers get: the reference tier.
DEFAULT_BACKEND = "numpy"


class KernelRegistry:
    """Mutable ``(operation, format, backend) → kernel`` lookup table."""

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, str, str], Kernel] = {}
        self._warmed: Set[Tuple[str, str, str]] = set()

    # ------------------------------------------------------------------
    @staticmethod
    def _key(operation: str, fmt: str, backend: str) -> Tuple[str, str, str]:
        return (
            operation.lower(),
            fmt.upper(),
            check_kernel_backend(backend),
        )

    def register(
        self, operation: str, fmt: str, backend: str = DEFAULT_BACKEND
    ) -> Callable[[Kernel], Kernel]:
        """Decorator registering *kernel* under ``(operation, fmt, backend)``.

        Re-registering a triple overwrites the previous kernel, so callers
        can swap in tuned implementations.
        """
        key = self._key(operation, fmt, backend)

        def _decorator(kernel: Kernel) -> Kernel:
            self._table[key] = kernel
            return kernel

        return _decorator

    def get(
        self, operation: str, fmt: str, backend: Optional[str] = None
    ) -> Kernel:
        """The kernel for ``(operation, fmt)`` on *backend*.

        ``backend=None`` keeps the historical two-argument semantics: the
        ``numpy`` reference tier serves the pair (other available
        backends are only consulted for pairs the reference tier does
        not carry, e.g. third-party compiled-only registrations).
        Raises :class:`FormatError` when no backend carries the pair,
        and when an explicitly named backend does not carry it
        (explicit lookups never fall back — use :meth:`resolve` for
        fallback semantics).
        """
        op = operation.lower()
        name = fmt.upper()
        if backend is not None:
            key = (op, name, check_kernel_backend(backend))
            try:
                return self._table[key]
            except KeyError:
                raise FormatError(
                    f"no kernel registered for operation {op!r} on format "
                    f"{name!r} under backend {key[2]!r}; registered "
                    f"backends for the pair: {self.backends(op, name)}"
                ) from None
        candidates = (DEFAULT_BACKEND,) + tuple(
            b for b in available_backends() if b != DEFAULT_BACKEND
        )
        for candidate in candidates:
            kernel = self._table.get((op, name, candidate))
            if kernel is not None:
                return kernel
        raise FormatError(
            f"no kernel registered for operation {op!r} on format {name!r}; "
            f"registered: {sorted(set(self._table))}"
        )

    def resolve(
        self, operation: str, fmt: str, backend: Optional[str] = None
    ) -> Tuple[Kernel, str]:
        """``(kernel, actual_backend)`` with clean fallback.

        The requested backend is tried first; if it is masked,
        unavailable, or has no entry for the pair, resolution falls down
        the preference order over the *available* backends (ending on
        the reference tier).  ``backend=None`` behaves like :meth:`get`:
        the reference tier first.  The second element reports which
        backend actually serves the call — callers stamp it into
        results so degradation is observable, not silent.
        """
        op = operation.lower()
        name = fmt.upper()
        if backend is None:
            candidates = [DEFAULT_BACKEND] + [
                b for b in available_backends() if b != DEFAULT_BACKEND
            ]
        else:
            candidates = list(available_backends())
            # promote the requested backend to the front when usable;
            # masked/unavailable requests fall straight to the others
            requested = check_kernel_backend(backend)
            if requested in candidates:
                candidates.remove(requested)
                candidates.insert(0, requested)
        for candidate in candidates:
            kernel = self._table.get((op, name, candidate))
            if kernel is not None:
                return kernel, candidate
        raise FormatError(
            f"no kernel registered for operation {op!r} on format {name!r} "
            f"under any available backend {tuple(candidates)}"
        )

    def has(
        self, operation: str, fmt: str, backend: Optional[str] = None
    ) -> bool:
        """Whether a kernel is registered for the pair (any/one backend)."""
        op = operation.lower()
        name = fmt.upper()
        if backend is not None:
            return (op, name, check_kernel_backend(backend)) in self._table
        return any((op, name, b) in self._table for b in PREFERENCE)

    def backends(self, operation: str, fmt: str) -> Tuple[str, ...]:
        """Backends registered for the pair, in preference order."""
        op = operation.lower()
        name = fmt.upper()
        return tuple(
            b for b in PREFERENCE if (op, name, b) in self._table
        )

    def operations(self) -> Tuple[str, ...]:
        """Sorted distinct operation names with at least one kernel."""
        return tuple(sorted({op for op, _, _ in self._table}))

    def formats(self, operation: str) -> Tuple[str, ...]:
        """Sorted distinct format names registered for *operation*."""
        op = operation.lower()
        return tuple(sorted({f for o, f, _ in self._table if o == op}))

    # ------------------------------------------------------------------
    def is_warm(self, operation: str, fmt: str, backend: str) -> bool:
        """Whether ``warmup`` already ran for the triple in this process."""
        return self._key(operation, fmt, backend) in self._warmed

    def warmup(self, operation: str, fmt: str, backend: str) -> float:
        """First-touch compile of one kernel; returns the wall seconds.

        Runs the registered kernel once on a tiny container so a JIT
        backend pays its compilation here rather than inside a timed
        request.  Idempotent per process: later calls return ``0.0``.
        Triples without a registered kernel also return ``0.0`` — the
        caller is about to fall back anyway.
        """
        key = self._key(operation, fmt, backend)
        if key in self._warmed:
            return 0.0
        kernel = self._table.get(key)
        self._warmed.add(key)
        if kernel is None:
            return 0.0
        matrix = _tiny_matrix(key[1])
        operand = (
            np.ones(matrix.ncols, dtype=np.float64)
            if key[0] != "spmm"
            else np.ones((matrix.ncols, 2), dtype=np.float64)
        )
        start = time.perf_counter()
        kernel(matrix, operand)
        return time.perf_counter() - start


def _tiny_matrix(fmt: str):
    """A minimal container of *fmt* for warm-up calls (has an empty row)."""
    from repro.formats import COOMatrix, convert

    coo = COOMatrix(
        4,
        4,
        np.array([0, 0, 2, 3], dtype=np.int64),
        np.array([0, 2, 1, 3], dtype=np.int64),
        np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float64),
    )
    return convert(coo, fmt)


#: The process-wide registry all dispatch goes through.
REGISTRY = KernelRegistry()


def register_kernel(
    operation: str, fmt: str, backend: str = DEFAULT_BACKEND
) -> Callable[[Kernel], Kernel]:
    """Register a kernel on the global :data:`REGISTRY` (decorator)."""
    return REGISTRY.register(operation, fmt, backend)


def get_kernel(
    operation: str, fmt: str, backend: Optional[str] = None
) -> Kernel:
    """Look up a kernel on the global :data:`REGISTRY`."""
    return REGISTRY.get(operation, fmt, backend)


def has_kernel(
    operation: str, fmt: str, backend: Optional[str] = None
) -> bool:
    """Whether the global :data:`REGISTRY` has the pair (any/one backend)."""
    return REGISTRY.has(operation, fmt, backend)


def resolve_kernel(
    operation: str, fmt: str, backend: Optional[str] = None
) -> Tuple[Kernel, str]:
    """Fallback-aware lookup on the global :data:`REGISTRY`."""
    return REGISTRY.resolve(operation, fmt, backend)


def kernel_backends(operation: str, fmt: str) -> Tuple[str, ...]:
    """Backends registered for the pair on the global :data:`REGISTRY`."""
    return REGISTRY.backends(operation, fmt)


def registered_operations() -> Tuple[str, ...]:
    """Operations with registered kernels on the global registry."""
    return REGISTRY.operations()


def registered_formats(operation: str) -> Tuple[str, ...]:
    """Formats registered for *operation* on the global registry."""
    return REGISTRY.formats(operation)


def warmup_kernel(operation: str, fmt: str, backend: str) -> float:
    """First-touch warm-up on the global :data:`REGISTRY`."""
    return REGISTRY.warmup(operation, fmt, backend)


def dispatch(
    operation: str,
    matrix: object,
    operand: np.ndarray,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Run the registered kernel for *matrix*'s format on *operand*.

    *operand* must already be validated (dtype, shape) — the container
    entry points and :mod:`repro.runtime.batch` do that before
    dispatching.  With a *backend*, resolution falls back cleanly when
    that backend cannot serve the format.
    """
    if backend is None:
        return REGISTRY.get(operation, matrix.format)(matrix, operand)
    kernel, _ = REGISTRY.resolve(operation, matrix.format, backend)
    return kernel(matrix, operand)


# ----------------------------------------------------------------------
# default registrations: every probe-available generation of
# repro.kernels, container-adapted
# ----------------------------------------------------------------------

register_default_backends(REGISTRY)

# every paper format must be servable for both operations on the
# always-available reference tier
assert all(REGISTRY.has("spmv", f, "numpy") for f in FORMAT_IDS)
assert all(REGISTRY.has("spmm", f, "numpy") for f in FORMAT_IDS)
