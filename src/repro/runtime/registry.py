"""Kernel registry: the single ``(operation, format) → kernel`` table.

Runtime layer 1.  Every sparse kernel the package executes is dispatched
through :data:`REGISTRY`; the format containers' ``spmv`` methods, the
format-agnostic :func:`repro.spmv.spmm.spmm` entry point and the batched
executor (:mod:`repro.runtime.batch`) all resolve their kernel here, so
there is exactly one implementation per (operation, format) pair — the
raw-array kernels of :mod:`repro.spmv.kernels`.

Registered kernels take ``(matrix, operand)`` where *matrix* is a concrete
format container and *operand* is a pre-validated dense vector (``spmv``)
or ``(ncols, k)`` block (``spmm``).  Composite formats (HYB, HDC) do not
carry kernels of their own: their entries compose the registered kernels of
their sub-blocks, so improving e.g. the ELL kernel automatically improves
HYB.

Third-party formats can join the dispatch path with::

    @register_kernel("spmv", "MYFMT")
    def my_spmv(matrix, x):
        ...
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import FORMAT_IDS
from repro.spmv import kernels as _k

__all__ = [
    "KernelRegistry",
    "REGISTRY",
    "register_kernel",
    "get_kernel",
    "has_kernel",
    "registered_operations",
    "registered_formats",
    "dispatch",
]

#: A kernel takes (concrete container, pre-validated operand) -> ndarray.
Kernel = Callable[[object, np.ndarray], np.ndarray]


class KernelRegistry:
    """Mutable ``(operation, format) → kernel`` lookup table."""

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, str], Kernel] = {}

    # ------------------------------------------------------------------
    def register(self, operation: str, fmt: str) -> Callable[[Kernel], Kernel]:
        """Decorator registering *kernel* under ``(operation, fmt)``.

        Re-registering a pair overwrites the previous kernel, so callers
        can swap in tuned implementations.
        """
        op = operation.lower()
        name = fmt.upper()

        def _decorator(kernel: Kernel) -> Kernel:
            self._table[(op, name)] = kernel
            return kernel

        return _decorator

    def get(self, operation: str, fmt: str) -> Kernel:
        """The kernel for ``(operation, fmt)``; raises FormatError if absent."""
        key = (operation.lower(), fmt.upper())
        try:
            return self._table[key]
        except KeyError:
            raise FormatError(
                f"no kernel registered for operation {key[0]!r} on format "
                f"{key[1]!r}; registered: {sorted(self._table)}"
            ) from None

    def has(self, operation: str, fmt: str) -> bool:
        """Whether a kernel is registered for ``(operation, fmt)``."""
        return (operation.lower(), fmt.upper()) in self._table

    def operations(self) -> Tuple[str, ...]:
        """Sorted distinct operation names with at least one kernel."""
        return tuple(sorted({op for op, _ in self._table}))

    def formats(self, operation: str) -> Tuple[str, ...]:
        """Sorted format names registered for *operation*."""
        op = operation.lower()
        return tuple(sorted(f for o, f in self._table if o == op))


#: The process-wide registry all dispatch goes through.
REGISTRY = KernelRegistry()


def register_kernel(operation: str, fmt: str) -> Callable[[Kernel], Kernel]:
    """Register a kernel on the global :data:`REGISTRY` (decorator)."""
    return REGISTRY.register(operation, fmt)


def get_kernel(operation: str, fmt: str) -> Kernel:
    """Look up a kernel on the global :data:`REGISTRY`."""
    return REGISTRY.get(operation, fmt)


def has_kernel(operation: str, fmt: str) -> bool:
    """Whether the global :data:`REGISTRY` has ``(operation, fmt)``."""
    return REGISTRY.has(operation, fmt)


def registered_operations() -> Tuple[str, ...]:
    """Operations with registered kernels on the global registry."""
    return REGISTRY.operations()


def registered_formats(operation: str) -> Tuple[str, ...]:
    """Formats registered for *operation* on the global registry."""
    return REGISTRY.formats(operation)


def dispatch(operation: str, matrix: object, operand: np.ndarray) -> np.ndarray:
    """Run the registered kernel for *matrix*'s format on *operand*.

    *operand* must already be validated (dtype, shape) — the container
    entry points and :mod:`repro.runtime.batch` do that before dispatching.
    """
    return REGISTRY.get(operation, matrix.format)(matrix, operand)


# ----------------------------------------------------------------------
# default registrations: container adapters over repro.spmv.kernels
# ----------------------------------------------------------------------


@register_kernel("spmv", "COO")
def _coo_spmv(m, x: np.ndarray) -> np.ndarray:
    return _k.coo_spmv(m.nrows, m.row, m.col, m.data, x)


@register_kernel("spmv", "CSR")
def _csr_spmv(m, x: np.ndarray) -> np.ndarray:
    return _k.csr_spmv(m.row_ptr, m.col_idx, m.data, x)


@register_kernel("spmv", "DIA")
def _dia_spmv(m, x: np.ndarray) -> np.ndarray:
    return _k.dia_spmv(m.nrows, m.ncols, m.offsets, m.data, x)


@register_kernel("spmv", "ELL")
def _ell_spmv(m, x: np.ndarray) -> np.ndarray:
    return _k.ell_spmv(m.col_idx, m.data, x, valid=m._valid)


@register_kernel("spmv", "HYB")
def _hyb_spmv(m, x: np.ndarray) -> np.ndarray:
    y = get_kernel("spmv", "ELL")(m.ell, x)
    if m.coo.nnz:
        y = y + get_kernel("spmv", "COO")(m.coo, x)
    return y


@register_kernel("spmv", "HDC")
def _hdc_spmv(m, x: np.ndarray) -> np.ndarray:
    return get_kernel("spmv", "DIA")(m.dia, x) + get_kernel("spmv", "CSR")(
        m.csr, x
    )


@register_kernel("spmm", "COO")
def _coo_spmm(m, X: np.ndarray) -> np.ndarray:
    return _k.coo_spmm(m.nrows, m.row, m.col, m.data, X)


@register_kernel("spmm", "CSR")
def _csr_spmm(m, X: np.ndarray) -> np.ndarray:
    return _k.csr_spmm(m.row_ptr, m.col_idx, m.data, X)


@register_kernel("spmm", "DIA")
def _dia_spmm(m, X: np.ndarray) -> np.ndarray:
    return _k.dia_spmm(m.nrows, m.ncols, m.offsets, m.data, X)


@register_kernel("spmm", "ELL")
def _ell_spmm(m, X: np.ndarray) -> np.ndarray:
    return _k.ell_spmm(m.col_idx, m.data, X, valid=m._valid)


@register_kernel("spmm", "HYB")
def _hyb_spmm(m, X: np.ndarray) -> np.ndarray:
    Y = get_kernel("spmm", "ELL")(m.ell, X)
    if m.coo.nnz:
        Y = Y + get_kernel("spmm", "COO")(m.coo, X)
    return Y


@register_kernel("spmm", "HDC")
def _hdc_spmm(m, X: np.ndarray) -> np.ndarray:
    return get_kernel("spmm", "DIA")(m.dia, X) + get_kernel("spmm", "CSR")(
        m.csr, X
    )


# every paper format must be servable for both operations
assert all(REGISTRY.has("spmv", f) for f in FORMAT_IDS)
assert all(REGISTRY.has("spmm", f) for f in FORMAT_IDS)
