"""Unified kernel-dispatch runtime: registry → batch → engine.

The serving layers that turn the per-call reproduction into a workload
system, bottom-up:

* :mod:`~repro.runtime.registry` — the single ``(operation, format) →
  kernel`` table every SpMV/SpMM dispatch resolves through; format
  containers delegate here, composite formats compose registered
  sub-kernels.
* :mod:`~repro.runtime.batch` — batched multi-vector (``Y = A @ X``) and
  multi-matrix execution with cached compiled operators (scipy-backed
  when available, NumPy fallback); the solvers' hot loops route through
  :func:`~repro.runtime.batch.matvec`.
* :mod:`~repro.runtime.engine` — the request-queue
  :class:`~repro.runtime.engine.WorkloadEngine` that serves many
  ``(matrix, x)`` requests against an execution space, memoising stats,
  features, tuner decisions and format conversions per matrix
  fingerprint, with cache counters and per-space time accounting.
* :mod:`~repro.runtime.epoch` — epoch-versioned identity for mutable
  matrices: :class:`~repro.runtime.epoch.MatrixEpoch` ``(stable_id,
  epoch)`` cache keys, :class:`~repro.runtime.epoch.IncrementalStats`
  maintained from deltas, and the
  :class:`~repro.runtime.epoch.RedecisionPolicy` that decides when an
  evolving matrix deserves a fresh tuner decision.
"""

from repro.runtime.registry import (
    REGISTRY,
    KernelRegistry,
    dispatch,
    get_kernel,
    has_kernel,
    register_kernel,
    registered_formats,
    registered_operations,
)
from repro.runtime.batch import (
    BlockOperator,
    batched_spmv,
    batched_spmv_many,
    block_operator,
    have_accelerator,
    matvec,
    spmv_iterations,
)
from repro.runtime.engine import (
    CacheCounters,
    EngineResult,
    InvalidationCounters,
    WorkloadEngine,
    matrix_fingerprint,
)
from repro.runtime.epoch import (
    IncrementalStats,
    MatrixEpoch,
    RedecisionPolicy,
    StreamUpdate,
    matrix_epoch,
)

__all__ = [
    "REGISTRY",
    "KernelRegistry",
    "dispatch",
    "get_kernel",
    "has_kernel",
    "register_kernel",
    "registered_formats",
    "registered_operations",
    "BlockOperator",
    "batched_spmv",
    "batched_spmv_many",
    "block_operator",
    "have_accelerator",
    "matvec",
    "spmv_iterations",
    "CacheCounters",
    "EngineResult",
    "IncrementalStats",
    "InvalidationCounters",
    "MatrixEpoch",
    "RedecisionPolicy",
    "StreamUpdate",
    "WorkloadEngine",
    "matrix_fingerprint",
    "matrix_epoch",
]
