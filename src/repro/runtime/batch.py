"""Batched multi-vector / multi-matrix SpMV execution.

Runtime layer 2.  The paper's workloads apply the *same* matrix thousands
of times (iterative solvers, Section VII-E); this module amortises the
per-call cost the way a serving system would:

* :func:`batched_spmv` — ``Y = A @ X`` for an ``(ncols, k)`` block in one
  vectorised pass (no per-vector Python dispatch);
* :func:`matvec` — single entry point for 1-D vectors and 2-D blocks, the
  hook the iterative solvers route their hot loop through;
* :func:`batched_spmv_many` — a multi-matrix batch API serving a sequence
  of independent ``(matrix, operand)`` requests;
* :func:`spmv_iterations` — repeated application ``Y = A^n X``.

When scipy is importable (it is an existing dependency — the containers'
``to_scipy`` uses it as a test oracle) the hot path runs through a cached
compiled CSR operator per concrete container (:class:`BlockOperator`):
the conversion cost is paid once per matrix and every subsequent call runs
at compiled-kernel speed, which is the whole amortisation argument of the
paper applied to the serving layer.  Without scipy everything falls back
to the registry's vectorised NumPy block kernels — same results, slower.

Containers are immutable, so caching operators per container object (a
:class:`weakref.WeakKeyDictionary`, entries die with the container) is
safe; a :class:`~repro.formats.dynamic.DynamicMatrix` that switches format
simply maps to a new concrete container and therefore a new operator.
"""

from __future__ import annotations

import weakref
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dynamic import DynamicMatrix
from repro.spmv.spmm import check_block
from repro.utils.validation import check_vector_length

try:  # gated optional accelerator: compiled sparse kernels
    import scipy.sparse as _scipy_sparse
except ImportError:  # pragma: no cover - environment without scipy
    _scipy_sparse = None

__all__ = [
    "BlockOperator",
    "batched_spmv",
    "batched_spmv_many",
    "block_operator",
    "have_accelerator",
    "matvec",
    "spmv_iterations",
]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


def _concrete(matrix: MatrixLike) -> SparseMatrix:
    return matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix


def have_accelerator() -> bool:
    """Whether the compiled (scipy) batch path is available."""
    return _scipy_sparse is not None


class BlockOperator:
    """Compiled SpMV/SpMM operator for one immutable concrete container.

    Wraps a ``scipy.sparse.csr_matrix`` built once from the container:
    CSR containers share their arrays directly (no conversion); every
    other format goes through its canonical COO view once.  ``apply``
    then serves 1-D vectors and 2-D blocks at compiled speed.
    """

    __slots__ = ("shape", "format", "_op")

    def __init__(self, matrix: SparseMatrix) -> None:
        if _scipy_sparse is None:  # pragma: no cover - scipy always in CI
            raise ValidationError(
                "BlockOperator needs scipy; use batched_spmv(..., "
                "accelerate=False) for the pure-NumPy path"
            )
        self.shape = matrix.shape
        self.format = matrix.format
        if isinstance(matrix, CSRMatrix):
            self._op = _scipy_sparse.csr_matrix(
                (matrix.data, matrix.col_idx, matrix.row_ptr), shape=matrix.shape
            )
        else:
            coo = matrix.to_coo()
            self._op = _scipy_sparse.csr_matrix(
                _scipy_sparse.coo_matrix(
                    (coo.data, (coo.row, coo.col)), shape=coo.shape
                )
            )

    def apply(self, operand: np.ndarray) -> np.ndarray:
        """``A @ operand`` for a 1-D vector or ``(ncols, k)`` block."""
        out = self._op @ operand
        return np.asarray(out, dtype=np.float64)


_OPERATORS: "weakref.WeakKeyDictionary[SparseMatrix, BlockOperator]" = (
    weakref.WeakKeyDictionary()
)


def block_operator(matrix: MatrixLike) -> BlockOperator:
    """The cached :class:`BlockOperator` for *matrix*'s concrete container."""
    m = _concrete(matrix)
    op = _OPERATORS.get(m)
    if op is None:
        op = BlockOperator(m)
        _OPERATORS[m] = op
    return op


def batched_spmv(
    matrix: MatrixLike,
    X: np.ndarray,
    *,
    accelerate: bool = True,
    backend: Optional[str] = None,
) -> np.ndarray:
    """``Y = A @ X`` for a dense block ``X`` of shape ``(ncols, k)``.

    One call serves all ``k`` right-hand sides.  On the default
    (``numpy``) tier with ``accelerate`` and scipy present, it runs
    through the cached compiled operator, otherwise through the
    registry's vectorised NumPy block kernel.  A compiled *backend*
    (:mod:`repro.kernels`) routes through that backend's registered
    ``spmm`` kernel instead — with clean fallback down the preference
    order when the backend cannot serve the format.
    """
    m = _concrete(matrix)
    X = check_block(m, X)
    if backend is not None and backend != "numpy":
        from repro.runtime.registry import REGISTRY

        kernel, _ = REGISTRY.resolve("spmm", m.format, backend)
        return kernel(m, X)
    if accelerate and _scipy_sparse is not None:
        return block_operator(m).apply(X)
    from repro.spmv.spmm import spmm

    return spmm(m, X)


def matvec(
    matrix: MatrixLike,
    x: np.ndarray,
    *,
    accelerate: bool = True,
    backend: Optional[str] = None,
) -> np.ndarray:
    """``y = A @ x`` for a 1-D vector or ``(ncols, k)`` block operand.

    The single entry point the iterative solvers route their hot loop
    through: repeated calls on the same container reuse its cached
    compiled operator, so a thousand-iteration solve pays the setup once.
    A compiled *backend* routes through the kernel registry's ``spmv``
    entry for that backend (fallback semantics as in
    :func:`batched_spmv`).
    """
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim == 2:
        return batched_spmv(matrix, arr, accelerate=accelerate, backend=backend)
    m = _concrete(matrix)
    if backend is not None and backend != "numpy":
        from repro.runtime.registry import REGISTRY

        if arr.ndim != 1:
            raise ValidationError(f"operand must be 1-D or 2-D, got ndim={arr.ndim}")
        check_vector_length(arr, m.ncols, name="x")
        kernel, _ = REGISTRY.resolve("spmv", m.format, backend)
        return kernel(m, arr)
    if accelerate and _scipy_sparse is not None:
        if arr.ndim != 1:
            raise ValidationError(f"operand must be 1-D or 2-D, got ndim={arr.ndim}")
        check_vector_length(arr, m.ncols, name="x")
        return block_operator(m).apply(arr)
    return m.spmv(arr)


def batched_spmv_many(
    items: Iterable[Tuple[MatrixLike, np.ndarray]], *, accelerate: bool = True
) -> List[np.ndarray]:
    """Serve a batch of independent ``(matrix, operand)`` requests.

    Each operand may be a 1-D vector or an ``(ncols, k)`` block; results
    come back in request order.  Requests that reuse a matrix hit its
    cached operator, so grouping a workload by matrix before calling is
    unnecessary.
    """
    return [matvec(m, x, accelerate=accelerate) for m, x in items]


def spmv_iterations(
    matrix: MatrixLike,
    x: np.ndarray,
    *,
    iterations: int,
    accelerate: bool = True,
) -> np.ndarray:
    """Repeated application ``y = A^iterations x`` (power-iteration style).

    Requires a square matrix; this is the access pattern of the iterative
    solvers that motivate amortising the tuner cost over thousands of
    SpMV calls (Section VII-E).  ``x`` may also be an ``(ncols, k)`` block,
    in which case all ``k`` vectors are iterated together.
    """
    if iterations < 1:
        raise ValidationError(f"iterations must be >= 1, got {iterations}")
    nrows, ncols = matrix.shape
    if nrows != ncols:
        raise ValidationError(
            f"spmv_iterations needs a square matrix, got {nrows}x{ncols}"
        )
    y = np.ascontiguousarray(x, dtype=np.float64)
    for _ in range(iterations):
        y = matvec(matrix, y, accelerate=accelerate)
    return y
