"""Epoch-versioned matrix identity and incremental statistics.

Runtime support for mutating matrices.  Everything the engine memoises
was keyed by a *content fingerprint* — a hash of the defining arrays —
which is exactly wrong for a matrix that evolves: every delta would
re-hash, re-profile and re-tune the world.  This module supplies the
replacement identity and the machinery that keeps artefacts warm across
mutations:

* :class:`MatrixEpoch` — ``(stable_id, epoch)`` identity; its
  :attr:`~MatrixEpoch.key` replaces content fingerprints as the engine
  cache key for any epoch-stamped container (:func:`matrix_epoch`);
* :class:`IncrementalStats` — the row-length histogram and diagonal
  census maintained *from deltas* (``O(k)`` per update via a
  :class:`~repro.formats.delta.DeltaEffect`) instead of recomputed from
  the matrix (``O(nnz)``); :meth:`IncrementalStats.to_stats` rebuilds a
  full :class:`~repro.machine.stats.MatrixStats` from the maintained
  distributions in ``O(nrows)``, and tests cross-check it against a
  from-scratch recompute;
* :class:`RedecisionPolicy` — only re-run the tuner when the
  incrementally maintained statistics drift past a threshold; below it
  the prior format decision (and the converted container) is carried
  forward across epochs;
* :class:`StreamState` / :class:`StreamUpdate` — the per-matrix
  streaming bookkeeping :meth:`~repro.runtime.engine.WorkloadEngine.update`
  maintains, and the record it returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.delta import DeltaEffect
from repro.formats.dynamic import DynamicMatrix
from repro.machine.stats import MatrixStats

__all__ = [
    "IncrementalStats",
    "MatrixEpoch",
    "RedecisionPolicy",
    "StreamState",
    "StreamUpdate",
    "matrix_epoch",
]


@dataclass(frozen=True)
class MatrixEpoch:
    """One version of one logical matrix: ``(stable_id, epoch)``."""

    stable_id: str
    epoch: int

    @property
    def key(self) -> str:
        """Cache-key form, ``<stable_id>@<epoch>``."""
        return f"{self.stable_id}@{self.epoch}"

    def next(self) -> "MatrixEpoch":
        """The successor version."""
        return MatrixEpoch(self.stable_id, self.epoch + 1)


def matrix_epoch(
    matrix: Union[SparseMatrix, DynamicMatrix]
) -> Optional[MatrixEpoch]:
    """The epoch identity of *matrix*, or ``None`` when unstamped.

    Only matrices that already carry an identity — assigned explicitly
    through :attr:`~repro.formats.base.SparseMatrix.stable_id` or
    inherited via :meth:`~repro.formats.base.SparseMatrix.with_updates`
    — report one; plain containers return ``None`` so content-hash
    caching keeps applying to them.
    """
    concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
    if not concrete.has_identity:
        return None
    return MatrixEpoch(concrete.stable_id, concrete.epoch)


class IncrementalStats:
    """Row and diagonal distributions maintained from deltas.

    Holds the two histograms that fully determine a
    :class:`~repro.machine.stats.MatrixStats`: the per-row non-zero
    count and the per-diagonal census (a dense histogram over the
    ``nrows + ncols - 1`` possible offsets).  Applying a
    :class:`~repro.formats.delta.DeltaEffect` is ``O(k)`` in the delta
    size; rebuilding the full stats summary from the histograms is
    ``O(nrows + ncols)`` — never ``O(nnz)``.
    """

    __slots__ = ("nrows", "ncols", "row_nnz", "diag_hist", "nnz")

    def __init__(
        self,
        nrows: int,
        ncols: int,
        row_nnz: np.ndarray,
        diag_hist: np.ndarray,
    ) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.row_nnz = np.asarray(row_nnz, dtype=np.int64)
        self.diag_hist = np.asarray(diag_hist, dtype=np.int64)
        if self.row_nnz.shape[0] != self.nrows:
            raise ValidationError(
                f"row_nnz must have length {self.nrows}, got "
                f"{self.row_nnz.shape[0]}"
            )
        span = max(self.nrows + self.ncols - 1, 0)
        if self.diag_hist.shape[0] != span:
            raise ValidationError(
                f"diag_hist must have length {span}, got "
                f"{self.diag_hist.shape[0]}"
            )
        self.nnz = int(self.row_nnz.sum())

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "IncrementalStats":
        """Seed the histograms from a canonical COO container."""
        span = max(coo.nrows + coo.ncols - 1, 0)
        row_nnz = np.bincount(coo.row, minlength=coo.nrows).astype(np.int64)
        shifted = coo.col - coo.row + (coo.nrows - 1)
        diag_hist = np.bincount(shifted, minlength=span).astype(np.int64)
        return cls(coo.nrows, coo.ncols, row_nnz, diag_hist)

    # ------------------------------------------------------------------
    def apply_effect(self, effect: DeltaEffect) -> None:
        """Fold one delta's structural changes in: ``O(k)``."""
        shift = self.nrows - 1
        if effect.inserted_rows.size:
            np.add.at(self.row_nnz, effect.inserted_rows, 1)
            np.add.at(self.diag_hist, effect.inserted_offsets + shift, 1)
        if effect.removed_rows.size:
            np.subtract.at(self.row_nnz, effect.removed_rows, 1)
            np.subtract.at(self.diag_hist, effect.removed_offsets + shift, 1)
        self.nnz += effect.nnz_change
        if self.nnz < 0 or (
            self.row_nnz.size and int(self.row_nnz.min()) < 0
        ):
            raise ValidationError(
                "incremental stats went negative: delta effect does not "
                "match the tracked matrix"
            )

    # ------------------------------------------------------------------
    def diag_nnz(self) -> np.ndarray:
        """Occupied-diagonal counts, matching ``COOMatrix.diagonal_nnz``."""
        h = self.diag_hist
        return h[h > 0].astype(np.int64)

    @property
    def bandwidth(self) -> int:
        """Largest ``|col - row|`` over occupied diagonals (0 if empty)."""
        occupied = np.flatnonzero(self.diag_hist)
        if occupied.size == 0:
            return 0
        return int(np.abs(occupied - (self.nrows - 1)).max())

    @property
    def density(self) -> float:
        """Fill fraction ``nnz / (nrows * ncols)``."""
        denom = self.nrows * self.ncols
        return self.nnz / denom if denom else 0.0

    def to_stats(self) -> MatrixStats:
        """Full stats summary from the maintained histograms."""
        return MatrixStats.from_distributions(
            self.nrows, self.ncols, self.row_nnz, self.diag_nnz()
        )

    def snapshot(self) -> Dict[str, float]:
        """Scalar view of the incrementally maintained quantities."""
        stats = self.to_stats()
        return {
            "nnz": self.nnz,
            "bandwidth": self.bandwidth,
            "density": self.density,
            "row_nnz_mean": stats.row_nnz_mean,
            "row_nnz_max": stats.row_nnz_max,
            "row_nnz_std": stats.row_nnz_std,
            "n_empty_rows": stats.n_empty_rows,
            "ndiags": stats.ndiags,
            "ell_padding_ratio": stats.ell_padding_ratio,
            "dia_padding_ratio": stats.dia_padding_ratio,
        }


@dataclass(frozen=True)
class RedecisionPolicy:
    """When does an evolving matrix deserve a fresh tuner decision?

    Compares the statistics at the last decision against the current
    (incrementally maintained) ones: the drift is the worst relative
    change across *metrics*, and only a drift above *threshold* forces
    a re-tune — anything milder carries the prior decision and its
    converted container forward across the epoch.
    """

    #: Deltas never change the matrix shape, so nnz, density and
    #: row_nnz_mean all carry identical relative drift — only nnz is
    #: tracked of the three.
    threshold: float = 0.25
    metrics: Tuple[str, ...] = (
        "nnz",
        "row_nnz_max",
        "row_nnz_std",
        "ndiags",
        "n_empty_rows",
    )

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValidationError(
                f"re-decision threshold must be > 0, got {self.threshold}"
            )

    def drift(self, reference: MatrixStats, current: MatrixStats) -> float:
        """Worst relative change across the tracked metrics (>= 0)."""
        worst = 0.0
        for name in self.metrics:
            a = float(getattr(reference, name))
            b = float(getattr(current, name))
            denom = abs(a) if abs(a) > 1e-12 else 1.0
            worst = max(worst, abs(b - a) / denom)
        return worst

    def should_retune(self, drift: float) -> bool:
        """Did the drift cross the re-tune threshold?"""
        return drift > self.threshold


class StreamState:
    """Per-matrix streaming bookkeeping inside the workload engine.

    The authoritative content at the current epoch lives in *linearised*
    form — the strictly increasing row-major ``key`` array plus parallel
    ``col`` / ``data`` — which is what the sorted-merge hot path
    (:func:`~repro.formats.delta.merge_keyed`) consumes and produces
    without ever materialising a row array.  :meth:`content` builds the
    equivalent canonical :class:`~repro.formats.coo.COOMatrix` on demand
    (re-tunes, conversions to non-CSR formats) and caches it per epoch.
    ``decided_stats`` is the stats snapshot the live format decision was
    made against — the reference the :class:`RedecisionPolicy` measures
    drift from.
    """

    __slots__ = (
        "stable_id",
        "epoch",
        "nrows",
        "ncols",
        "key",
        "col",
        "data",
        "inc",
        "decided_stats",
        "updates",
        "_coo",
    )

    def __init__(
        self,
        stable_id: str,
        epoch: int,
        coo: COOMatrix,
        inc: Optional[IncrementalStats] = None,
    ) -> None:
        self.stable_id = stable_id
        self.epoch = int(epoch)
        self.nrows = coo.nrows
        self.ncols = coo.ncols
        span = np.int64(coo.ncols) if coo.ncols else np.int64(1)
        self.key = coo.row * span + coo.col
        self.col = coo.col
        self.data = coo.data
        self.inc = inc if inc is not None else IncrementalStats.from_coo(coo)
        self.decided_stats: Optional[MatrixStats] = None
        self.updates = 0
        self._coo: Optional[COOMatrix] = coo

    @property
    def identity(self) -> MatrixEpoch:
        return MatrixEpoch(self.stable_id, self.epoch)

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def merge(self, delta) -> "DeltaEffect":
        """Fold one delta into the keyed content; advance the epoch."""
        from repro.formats.delta import merge_keyed

        self.key, self.col, self.data, effect = merge_keyed(
            self.nrows, self.ncols, self.key, self.col, self.data, delta
        )
        self.inc.apply_effect(effect)
        self.epoch += 1
        self.updates += 1
        self._coo = None
        return effect

    def content(self) -> COOMatrix:
        """The canonical COO view of the current epoch (cached)."""
        if self._coo is None:
            span = np.int64(self.ncols) if self.ncols else np.int64(1)
            self._coo = COOMatrix(
                self.nrows,
                self.ncols,
                self.key // span,
                self.col,
                self.data,
                canonical=True,
            )
        return self._coo

    def prepared_csr(self):
        """Direct CSR build from the maintained histograms: no re-sort.

        Canonical order means the column/value arrays *are* the CSR
        payload; the row pointer is one ``O(nrows)`` cumulative sum of
        the incrementally maintained row histogram.  This is the
        carried-forward serving container — bitwise-identical arrays to
        ``CSRMatrix.from_coo(self.content())`` without the ``O(nnz)``
        bincount and copies.
        """
        from repro.formats.csr import CSRMatrix

        row_ptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(self.inc.row_nnz, out=row_ptr[1:])
        return CSRMatrix(self.nrows, self.ncols, row_ptr, self.col, self.data)


@dataclass(frozen=True)
class StreamUpdate:
    """Outcome of one engine-level epoch advance."""

    key: str
    epoch: int
    carried_forward: bool
    retuned: bool
    format: Optional[str]
    drift: float
    nnz: int
    delta_size: int
    bandwidth: int = 0
