"""Derived concurrency defaults: size pools from the host, not a constant.

Both serving tiers used to hard-code their parallelism (``workers=4``),
which under-uses large hosts and over-subscribes small containers.  The
defaults now derive from :func:`os.cpu_count` with documented floors and
caps:

* :func:`default_thread_workers` — the :class:`~repro.service.service
  .TuningService` thread pool.  Threads are cheap and mostly wait on the
  engine-cache shard locks, so the default is one per core with a
  **floor of 2** (coalescing needs at least one drain overlapping one
  submit even on a single-core container) and a **cap of 32** (beyond
  that the GIL, not the pool, is the limit).
* :func:`default_process_workers` — the :mod:`repro.distributed` worker
  processes.  Each worker is a full interpreter with its own engine
  cache, so the default is one per core with a **floor of 1** and a
  **cap of 8** (matching the largest scaling point the distributed
  benchmark measures; more workers than cores only adds IPC overhead).

``os.cpu_count()`` can return ``None`` in exotic environments; both
helpers then fall back to their floor.
"""

from __future__ import annotations

import os

__all__ = [
    "THREAD_FLOOR",
    "THREAD_CAP",
    "PROCESS_FLOOR",
    "PROCESS_CAP",
    "default_thread_workers",
    "default_process_workers",
]

#: Thread-pool floor/cap (see module docstring for the rationale).
THREAD_FLOOR = 2
THREAD_CAP = 32

#: Worker-process floor/cap (see module docstring for the rationale).
PROCESS_FLOOR = 1
PROCESS_CAP = 8


def _cpus() -> int:
    count = os.cpu_count()
    return int(count) if count else 0


def default_thread_workers() -> int:
    """Thread-pool size derived from the host: ``clamp(cpus, 2, 32)``."""
    return max(THREAD_FLOOR, min(THREAD_CAP, _cpus() or THREAD_FLOOR))


def default_process_workers() -> int:
    """Worker-process count derived from the host: ``clamp(cpus, 1, 8)``."""
    return max(PROCESS_FLOOR, min(PROCESS_CAP, _cpus() or PROCESS_FLOOR))
