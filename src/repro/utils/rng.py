"""Deterministic random-number helpers.

Everything stochastic in the package (dataset generation, simulated run-to-run
timing noise, bootstrap sampling, cross-validation shuffling) flows through
:func:`ensure_generator` / :func:`derive_seed` so experiments reproduce
bit-identically given a seed.  :func:`stable_hash` provides a process-stable
64-bit hash (Python's builtin ``hash`` is salted per process and therefore
unusable for reproducible derivation).
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

__all__ = ["ensure_generator", "derive_seed", "stable_hash"]

SeedLike = Union[None, int, np.random.Generator]


def ensure_generator(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` gives fresh OS entropy; an ``int`` gives a seeded PCG64; a
    Generator passes through unchanged (shared-state semantics, matching
    scikit-learn's ``check_random_state`` convention).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def stable_hash(*parts: object) -> int:
    """A process-stable 63-bit hash of the string forms of *parts*.

    Used to key deterministic per-(matrix, format, system) noise without
    carrying generators around.
    """
    payload = "\x1f".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little") & 0x7FFF_FFFF_FFFF_FFFF


def derive_seed(base_seed: int, *parts: object) -> int:
    """Derive a child seed from *base_seed* and a label path.

    Mixing through blake2b avoids the correlated-streams problem of
    ``base_seed + i`` seeding.
    """
    return stable_hash(base_seed, *parts)
