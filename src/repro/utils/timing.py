"""Wall-clock timing helpers.

The simulated backends report *modelled* runtimes; the :class:`Timer` here is
for measuring the *host-side* cost of the pure-Python machinery itself (e.g.
feature extraction or tree traversal in the paper's Table IV analogue can be
reported either in modelled units or measured host seconds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "WallClock"]


class WallClock:
    """Thin indirection over :func:`time.perf_counter` (swappable in tests)."""

    def now(self) -> float:
        return time.perf_counter()


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed seconds.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    clock: WallClock = field(default_factory=WallClock)
    elapsed: float = 0.0
    n_calls: int = 0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = self.clock.now()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        self.elapsed += self.clock.now() - self._start
        self.n_calls += 1
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self.elapsed = 0.0
        self.n_calls = 0

    @property
    def mean(self) -> float:
        """Mean elapsed seconds per timed call (0 when never used)."""
        return self.elapsed / self.n_calls if self.n_calls else 0.0
