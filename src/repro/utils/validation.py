"""Argument-validation helpers used across the package.

These functions normalise user input into contiguous NumPy arrays with
well-defined dtypes and raise :class:`repro.errors.ValidationError` (or the
more specific :class:`repro.errors.ShapeError`) with actionable messages.
Keeping validation centralised means the sparse-format containers and the ML
estimators share identical error behaviour.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ShapeError, ValidationError

__all__ = [
    "check_array_1d",
    "check_array_2d",
    "check_dtype_float",
    "check_dtype_int",
    "check_index_bounds",
    "check_nonnegative",
    "check_positive",
    "check_square",
    "check_vector_length",
]

#: dtype used for all index arrays in the sparse containers.
INDEX_DTYPE = np.int64
#: dtype used for all value arrays in the sparse containers.
VALUE_DTYPE = np.float64


def check_array_1d(
    arr: Any,
    *,
    name: str,
    dtype: np.dtype | type | None = None,
    allow_empty: bool = True,
) -> np.ndarray:
    """Coerce *arr* to a contiguous 1-D ndarray, optionally casting dtype.

    Parameters
    ----------
    arr:
        Anything :func:`numpy.asarray` accepts.
    name:
        Argument name used in error messages.
    dtype:
        If given, the returned array is cast to this dtype.
    allow_empty:
        When ``False`` an empty array raises :class:`ValidationError`.
    """
    out = np.ascontiguousarray(arr, dtype=dtype)
    if out.ndim != 1:
        raise ShapeError(f"{name!r} must be 1-D, got ndim={out.ndim}")
    if not allow_empty and out.size == 0:
        raise ValidationError(f"{name!r} must not be empty")
    return out


def check_array_2d(
    arr: Any,
    *,
    name: str,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """Coerce *arr* to a contiguous 2-D ndarray."""
    out = np.ascontiguousarray(arr, dtype=dtype)
    if out.ndim != 2:
        raise ShapeError(f"{name!r} must be 2-D, got ndim={out.ndim}")
    return out


def check_dtype_float(arr: np.ndarray, *, name: str) -> np.ndarray:
    """Ensure *arr* has a floating dtype, casting integers to float64."""
    if not np.issubdtype(arr.dtype, np.floating):
        if np.issubdtype(arr.dtype, np.integer) or np.issubdtype(arr.dtype, np.bool_):
            return arr.astype(VALUE_DTYPE)
        raise ValidationError(
            f"{name!r} must have a floating dtype, got {arr.dtype}"
        )
    return arr


def check_dtype_int(arr: np.ndarray, *, name: str) -> np.ndarray:
    """Ensure *arr* has an integer dtype, casting to the index dtype."""
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            return arr.astype(INDEX_DTYPE)
        raise ValidationError(
            f"{name!r} must have an integer dtype, got {arr.dtype}"
        )
    return arr.astype(INDEX_DTYPE, copy=False)


def check_nonnegative(value: int | float, *, name: str) -> None:
    """Raise unless ``value >= 0``."""
    if value < 0:
        raise ValidationError(f"{name!r} must be non-negative, got {value}")


def check_positive(value: int | float, *, name: str) -> None:
    """Raise unless ``value > 0``."""
    if value <= 0:
        raise ValidationError(f"{name!r} must be positive, got {value}")


def check_square(nrows: int, ncols: int, *, context: str = "matrix") -> None:
    """Raise unless the matrix is square."""
    if nrows != ncols:
        raise ShapeError(f"{context} must be square, got {nrows}x{ncols}")


def check_index_bounds(
    indices: np.ndarray, upper: int, *, name: str
) -> None:
    """Raise unless every index lies in ``[0, upper)``."""
    if indices.size == 0:
        return
    lo = int(indices.min())
    hi = int(indices.max())
    if lo < 0 or hi >= upper:
        raise ValidationError(
            f"{name!r} entries must lie in [0, {upper}), got range [{lo}, {hi}]"
        )


def check_vector_length(
    vec: np.ndarray, expected: int, *, name: str
) -> None:
    """Raise unless ``len(vec) == expected``."""
    if vec.shape[0] != expected:
        raise ShapeError(
            f"{name!r} has length {vec.shape[0]}, expected {expected}"
        )


def as_index_array(arr: Any, *, name: str) -> np.ndarray:
    """Shorthand: 1-D contiguous int64 array."""
    out = check_array_1d(arr, name=name)
    return check_dtype_int(out, name=name)


def as_value_array(arr: Any, *, name: str) -> np.ndarray:
    """Shorthand: 1-D contiguous float64 array."""
    out = check_array_1d(arr, name=name)
    return check_dtype_float(out, name=name).astype(VALUE_DTYPE, copy=False)


def as_sequence_of_str(items: Sequence[str], *, name: str) -> list[str]:
    """Validate a sequence of strings (used for format pools)."""
    out = list(items)
    for item in out:
        if not isinstance(item, str):
            raise ValidationError(f"{name!r} must contain strings, got {type(item)}")
    return out
