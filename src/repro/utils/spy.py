"""ASCII "spy plot" of a sparsity pattern.

A terminal-friendly stand-in for matplotlib's ``spy``: the matrix is
binned onto a character grid and cells are shaded by occupancy.  Used by
the examples to show *why* a format was selected (bands, hubs, blocks are
visible at a glance).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix

__all__ = ["spy"]

#: Shading ramp from empty to dense.
_RAMP = " .:-=+*#%@"

MatrixLike = Union[SparseMatrix, DynamicMatrix]


def spy(matrix: MatrixLike, *, width: int = 60, height: int | None = None) -> str:
    """Render the sparsity pattern as shaded ASCII art.

    Parameters
    ----------
    matrix:
        Any container or DynamicMatrix.
    width:
        Output columns (the matrix's columns are binned into these).
    height:
        Output rows; default keeps the matrix aspect ratio at a 2:1
        character aspect correction.
    """
    if width < 1:
        raise ValidationError(f"width must be >= 1, got {width}")
    concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
    coo = concrete.to_coo()
    nrows, ncols = concrete.shape
    if height is None:
        height = max(1, int(width * nrows / max(1, ncols) / 2))
    if height < 1:
        raise ValidationError(f"height must be >= 1, got {height}")
    grid = np.zeros((height, width), dtype=np.int64)
    if coo.nnz:
        r = (coo.row * height // max(1, nrows)).clip(0, height - 1)
        c = (coo.col * width // max(1, ncols)).clip(0, width - 1)
        np.add.at(grid, (r, c), 1)
    # normalise by the densest cell so structure stays visible
    peak = grid.max()
    lines = []
    border = "+" + "-" * width + "+"
    lines.append(border)
    for i in range(height):
        if peak == 0:
            row = " " * width
        else:
            levels = (grid[i] * (len(_RAMP) - 1) + peak - 1) // peak
            row = "".join(_RAMP[min(int(v), len(_RAMP) - 1)] for v in levels)
        lines.append("|" + row + "|")
    lines.append(border)
    lines.append(
        f"{nrows}x{ncols}, nnz={coo.nnz} "
        f"(each cell ~{max(1, nrows // height)}x{max(1, ncols // width)})"
    )
    return "\n".join(lines)
