"""Shared utilities: validation helpers, deterministic RNG, timers, I/O."""

from repro.utils.validation import (
    check_array_1d,
    check_array_2d,
    check_dtype_float,
    check_dtype_int,
    check_index_bounds,
    check_nonnegative,
    check_positive,
    check_square,
    check_vector_length,
)
from repro.utils.rng import derive_seed, ensure_generator, stable_hash
from repro.utils.timing import Timer, WallClock

__all__ = [
    "check_array_1d",
    "check_array_2d",
    "check_dtype_float",
    "check_dtype_int",
    "check_index_bounds",
    "check_nonnegative",
    "check_positive",
    "check_square",
    "check_vector_length",
    "derive_seed",
    "ensure_generator",
    "stable_hash",
    "Timer",
    "WallClock",
]
