"""Random-forest classifier: bagged CART trees with majority voting.

The paper's Oracle deploys its forest with a hard majority vote over the
per-tree predictions (Section VI-A); ``voting="soft"`` (probability
averaging, scikit-learn's default) is also provided for comparison and as
an ablation axis.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.tree.classifier import DecisionTreeClassifier
from repro.utils.rng import derive_seed, ensure_generator

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseEstimator):
    """Ensemble of CART trees over bootstrap samples.

    Parameters
    ----------
    n_estimators:
        Number of trees (the paper tunes 20-100).
    criterion, max_depth, min_samples_split, min_samples_leaf,
    max_features, min_impurity_decrease:
        Passed to every tree; ``max_features`` defaults to ``"sqrt"``
        as is conventional for classification forests.
    bootstrap:
        Sample the training set with replacement per tree (Table III tunes
        this on and off); without bootstrap each tree sees the full set
        and diversity comes from feature subsampling alone.
    class_weight:
        ``None``, ``"balanced"`` or a dict, forwarded to every tree —
        the paper's Section IX names dataset balancing as future work for
        improving minority-format (balanced) accuracy.
    voting:
        ``"hard"`` — majority vote over tree predictions (Oracle's
        scheme); ``"soft"`` — average leaf probabilities.
    seed:
        Master seed; per-tree seeds are derived deterministically.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: object = "sqrt",
        min_impurity_decrease: float = 0.0,
        bootstrap: bool = True,
        class_weight: str | dict | None = None,
        voting: str = "hard",
        seed: int | None = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.bootstrap = bootstrap
        self.class_weight = class_weight
        self.voting = voting
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: Sequence[int]) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples of ``(X, y)``."""
        if self.n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        if self.voting not in ("hard", "soft"):
            raise ValidationError(
                f"voting must be 'hard' or 'soft', got {self.voting!r}"
            )
        X = np.ascontiguousarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValidationError(
                f"inconsistent shapes X{X.shape} y{y.shape}"
            )
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        n = X.shape[0]
        base_seed = self.seed if self.seed is not None else 0
        self.estimators_: List[DecisionTreeClassifier] = []
        for t in range(self.n_estimators):
            tree_seed = derive_seed(base_seed, "tree", t)
            if self.bootstrap:
                rng = ensure_generator(derive_seed(base_seed, "bootstrap", t))
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                min_impurity_decrease=self.min_impurity_decrease,
                class_weight=self.class_weight,
                seed=tree_seed,
            )
            tree.fit(X[sample], y[sample], class_labels=self.classes_)
            self.estimators_.append(tree)
        self.feature_importances_ = np.mean(
            [t.feature_importances_ for t in self.estimators_], axis=0
        )
        return self

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Ensemble class probabilities (columns follow ``classes_``).

        Hard voting returns vote fractions; soft voting returns the mean
        of the trees' leaf distributions.
        """
        check_is_fitted(self, "estimators_")
        if self.voting == "soft":
            probas = [t.predict_proba(X) for t in self.estimators_]
            return np.mean(probas, axis=0)
        n_classes = self.classes_.shape[0]
        votes = np.zeros((np.asarray(X).shape[0], n_classes), dtype=np.float64)
        for tree in self.estimators_:
            pred = tree.predict(X)
            # tree classes_ equal forest classes_ (fixed via class_labels)
            enc = np.searchsorted(self.classes_, pred)
            votes[np.arange(votes.shape[0]), enc] += 1.0
        return votes / self.n_estimators

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote (or argmax-soft) class per sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------
    @property
    def mean_depth_(self) -> float:
        """Average depth across the fitted trees (drives prediction cost)."""
        check_is_fitted(self, "estimators_")
        return float(np.mean([t.depth_ for t in self.estimators_]))

    @property
    def total_nodes_(self) -> int:
        """Total node count across the ensemble."""
        check_is_fitted(self, "estimators_")
        return int(sum(t.tree_.n_nodes for t in self.estimators_))

    def score(self, X: np.ndarray, y: Sequence[int]) -> float:
        """Accuracy on ``(X, y)``."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))
