"""Estimator plumbing: parameter introspection and cloning.

Follows scikit-learn's convention: every constructor argument is a
hyperparameter stored under the same attribute name, learned state uses a
trailing underscore, and :func:`clone` builds an unfitted copy from
``get_params``.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, TypeVar

from repro.errors import ModelError, NotFittedError

__all__ = ["BaseEstimator", "clone", "check_is_fitted"]

E = TypeVar("E", bound="BaseEstimator")


class BaseEstimator:
    """Base class providing ``get_params`` / ``set_params``."""

    @classmethod
    def _param_names(cls) -> list[str]:
        sig = inspect.signature(cls.__init__)
        return [
            name
            for name, p in sig.parameters.items()
            if name != "self" and p.kind != inspect.Parameter.VAR_KEYWORD
        ]

    def get_params(self) -> Dict[str, Any]:
        """Hyperparameters as a dict (constructor-argument names)."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self: E, **params: Any) -> E:
        """Set hyperparameters; unknown names raise :class:`ModelError`."""
        valid = set(self._param_names())
        for key, value in params.items():
            if key not in valid:
                raise ModelError(
                    f"invalid parameter {key!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
            setattr(self, key, value)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({args})"


def clone(estimator: E) -> E:
    """Return an unfitted copy of *estimator* with identical parameters."""
    return type(estimator)(**estimator.get_params())


def check_is_fitted(estimator: object, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless *attribute* exists."""
    if not hasattr(estimator, attribute):
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted; call fit() first"
        )
