"""Classification metrics.

The paper reports **accuracy** and **balanced accuracy** (Section VII-D);
balanced accuracy — the mean of per-class recalls — is the indicative
metric because the optimal-format distribution is heavily imbalanced
(Section VII-B: CSR is the clear majority class / "rare event prediction").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "accuracy_score",
    "balanced_accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "classification_report",
]


def _validate(y_true: Sequence[int], y_pred: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(y_true)
    p = np.asarray(y_pred)
    if t.shape != p.shape:
        raise ValidationError(
            f"y_true shape {t.shape} != y_pred shape {p.shape}"
        )
    if t.ndim != 1:
        raise ValidationError(f"labels must be 1-D, got ndim={t.ndim}")
    if t.size == 0:
        raise ValidationError("cannot score empty label arrays")
    return t, p


def accuracy_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of exactly correct predictions."""
    t, p = _validate(y_true, y_pred)
    return float(np.mean(t == p))


def balanced_accuracy_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Mean per-class recall over the classes present in ``y_true``."""
    t, p = _validate(y_true, y_pred)
    classes = np.unique(t)
    recalls = np.empty(classes.shape[0])
    for i, c in enumerate(classes):
        mask = t == c
        recalls[i] = np.mean(p[mask] == c)
    return float(recalls.mean())


def confusion_matrix(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    *,
    labels: Sequence[int] | None = None,
) -> np.ndarray:
    """Counts ``C[i, j]``: samples of class ``labels[i]`` predicted ``labels[j]``."""
    t, p = _validate(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([t, p]))
    labels = np.asarray(labels)
    k = labels.shape[0]
    index = {int(c): i for i, c in enumerate(labels)}
    out = np.zeros((k, k), dtype=np.int64)
    for ti, pi in zip(t, p):
        if int(ti) in index and int(pi) in index:
            out[index[int(ti)], index[int(pi)]] += 1
    return out


def _per_class_prf(
    y_true: Sequence[int], y_pred: Sequence[int], labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    cm = confusion_matrix(y_true, y_pred, labels=labels)
    tp = np.diag(cm).astype(np.float64)
    support = cm.sum(axis=1).astype(np.float64)
    predicted = cm.sum(axis=0).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(support > 0, tp / support, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return precision, recall, f1, support


def precision_score(
    y_true: Sequence[int], y_pred: Sequence[int], *, average: str = "macro"
) -> float:
    """Macro- or micro-averaged precision."""
    t, p = _validate(y_true, y_pred)
    labels = np.unique(t)
    prec, _, _, support = _per_class_prf(t, p, labels)
    return _average(prec, support, average)


def recall_score(
    y_true: Sequence[int], y_pred: Sequence[int], *, average: str = "macro"
) -> float:
    """Macro- or micro-averaged recall (macro recall == balanced accuracy)."""
    t, p = _validate(y_true, y_pred)
    labels = np.unique(t)
    _, rec, _, support = _per_class_prf(t, p, labels)
    return _average(rec, support, average)


def f1_score(
    y_true: Sequence[int], y_pred: Sequence[int], *, average: str = "macro"
) -> float:
    """Macro- or micro-averaged F1."""
    t, p = _validate(y_true, y_pred)
    labels = np.unique(t)
    _, _, f1, support = _per_class_prf(t, p, labels)
    return _average(f1, support, average)


def _average(values: np.ndarray, support: np.ndarray, average: str) -> float:
    if average == "macro":
        return float(values.mean())
    if average == "weighted":
        total = support.sum()
        return float((values * support).sum() / total) if total else 0.0
    raise ValidationError(f"average must be 'macro' or 'weighted', got {average!r}")


def classification_report(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    *,
    target_names: Sequence[str] | None = None,
) -> str:
    """Human-readable per-class precision / recall / F1 / support table."""
    t, p = _validate(y_true, y_pred)
    labels = np.unique(t)
    prec, rec, f1, support = _per_class_prf(t, p, labels)
    if target_names is None:
        target_names = [str(int(c)) for c in labels]
    if len(target_names) != labels.shape[0]:
        raise ValidationError(
            f"target_names has {len(target_names)} entries for "
            f"{labels.shape[0]} classes"
        )
    width = max(12, max(len(n) for n in target_names) + 2)
    lines = [
        f"{'':<{width}}{'precision':>10}{'recall':>10}{'f1':>10}{'support':>10}"
    ]
    for i, name in enumerate(target_names):
        lines.append(
            f"{name:<{width}}{prec[i]:>10.3f}{rec[i]:>10.3f}"
            f"{f1[i]:>10.3f}{int(support[i]):>10d}"
        )
    lines.append("")
    lines.append(
        f"{'accuracy':<{width}}{'':>10}{'':>10}"
        f"{accuracy_score(t, p):>10.3f}{t.shape[0]:>10d}"
    )
    lines.append(
        f"{'balanced acc':<{width}}{'':>10}{'':>10}"
        f"{balanced_accuracy_score(t, p):>10.3f}{t.shape[0]:>10d}"
    )
    return "\n".join(lines)
