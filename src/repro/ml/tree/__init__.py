"""Decision-tree classifier (CART) built from first principles."""

from repro.ml.tree.classifier import DecisionTreeClassifier
from repro.ml.tree.regressor import DecisionTreeRegressor
from repro.ml.tree.criteria import entropy_impurity, gini_impurity
from repro.ml.tree.structure import Tree

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "Tree",
    "gini_impurity",
    "entropy_impurity",
]
