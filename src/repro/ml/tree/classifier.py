"""CART decision-tree classifier.

Grows a binary tree depth-first with the usual regularisation controls
(``max_depth``, ``min_samples_split``, ``min_samples_leaf``,
``max_features``, ``min_impurity_decrease``) — the hyperparameters the
paper's grid search tunes (Table III).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ModelError, ValidationError
from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.tree.criteria import get_criterion
from repro.ml.tree.splitter import find_best_split
from repro.ml.tree.structure import Tree, TreeBuffer
from repro.utils.rng import ensure_generator

__all__ = ["DecisionTreeClassifier", "compute_sample_weight"]


def compute_sample_weight(
    class_weight: str | dict | None,
    y_enc: np.ndarray,
    n_classes: int,
) -> np.ndarray | None:
    """Per-sample weights from a class-weight spec.

    ``"balanced"`` gives class ``c`` weight ``n / (k * count_c)`` — the
    paper's Section IX names dataset balancing as the route to better
    minority-format recall.  A dict maps *encoded* class index to weight.
    ``None`` means unweighted.
    """
    if class_weight is None:
        return None
    counts = np.bincount(y_enc, minlength=n_classes).astype(np.float64)
    if class_weight == "balanced":
        n = y_enc.shape[0]
        with np.errstate(divide="ignore"):
            per_class = np.where(counts > 0, n / (n_classes * counts), 0.0)
        return per_class[y_enc]
    if isinstance(class_weight, dict):
        per_class = np.ones(n_classes, dtype=np.float64)
        for cls, w in class_weight.items():
            if not 0 <= int(cls) < n_classes:
                raise ValidationError(
                    f"class_weight key {cls!r} outside encoded class range"
                )
            per_class[int(cls)] = float(w)
        return per_class[y_enc]
    raise ValidationError(
        f"class_weight must be None, 'balanced' or a dict, got {class_weight!r}"
    )


def _weighted_counts(
    y_enc: np.ndarray, weight: np.ndarray | None, n_classes: int
) -> np.ndarray:
    if weight is None:
        return np.bincount(y_enc, minlength=n_classes).astype(np.float64)
    return np.bincount(y_enc, weights=weight, minlength=n_classes)


def _sub(weight: np.ndarray | None, idx: np.ndarray) -> np.ndarray | None:
    return None if weight is None else weight[idx]


def resolve_max_features(max_features: object, n_features: int) -> int:
    """Translate a ``max_features`` spec into a concrete count."""
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValidationError(
                f"float max_features must be in (0, 1], got {max_features}"
            )
        return max(1, int(max_features * n_features))
    if isinstance(max_features, (int, np.integer)):
        if max_features < 1:
            raise ValidationError("int max_features must be >= 1")
        return min(int(max_features), n_features)
    raise ValidationError(f"unsupported max_features spec: {max_features!r}")


class DecisionTreeClassifier(BaseEstimator):
    """CART classifier with gini or entropy splits.

    Parameters
    ----------
    criterion:
        ``"gini"`` or ``"entropy"`` (both appear in the paper's Table III).
    max_depth:
        Depth cap; ``None`` grows until purity or the sample limits bind.
    min_samples_split:
        Minimum node size eligible for splitting.
    min_samples_leaf:
        Minimum samples each child must retain.
    max_features:
        Features considered per split: ``None`` (all), ``"sqrt"``,
        ``"log2"``, an int, or a float fraction.  When a subset is used it
        is drawn independently at every node (random-forest style).
    min_impurity_decrease:
        Minimum weighted impurity decrease for a split.
    seed:
        Seed for the per-node feature subsampling.

    Attributes
    ----------
    tree_:
        The fitted :class:`~repro.ml.tree.structure.Tree`.
    classes_:
        Sorted original class labels; predictions are mapped back to them.
    feature_importances_:
        Normalised impurity-decrease importances.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: object = None,
        min_impurity_decrease: float = 0.0,
        class_weight: str | dict | None = None,
        seed: int | None = 0,
    ) -> None:
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.class_weight = class_weight
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: Sequence[int],
        *,
        class_labels: Sequence[int] | None = None,
    ) -> "DecisionTreeClassifier":
        """Grow the tree on ``(X, y)``.

        ``class_labels`` fixes the label universe (useful in ensembles
        where a bootstrap may miss a rare class entirely).
        """
        X = np.ascontiguousarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got ndim={X.ndim}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValidationError(
                f"y must be 1-D with len(X)={X.shape[0]}, got shape {y.shape}"
            )
        if X.shape[0] == 0:
            raise ValidationError("cannot fit on an empty dataset")
        if self.min_samples_split < 2:
            raise ValidationError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValidationError("min_samples_leaf must be >= 1")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValidationError("max_depth must be >= 1 or None")

        self.classes_ = (
            np.unique(y) if class_labels is None else np.asarray(class_labels)
        )
        label_of = {int(c): i for i, c in enumerate(self.classes_)}
        try:
            y_enc = np.asarray([label_of[int(v)] for v in y], dtype=np.int64)
        except KeyError as exc:
            raise ValidationError(f"label {exc} not in class_labels") from exc

        self.n_features_in_ = X.shape[1]
        n_classes = self.classes_.shape[0]
        criterion = get_criterion(self.criterion)
        k_features = resolve_max_features(self.max_features, self.n_features_in_)
        rng = ensure_generator(self.seed)
        sample_weight = compute_sample_weight(self.class_weight, y_enc, n_classes)

        buf = TreeBuffer(n_classes)
        root = buf.add_node(
            _weighted_counts(y_enc, sample_weight, n_classes)
        )
        # explicit stack => no recursion-limit concerns for deep trees
        stack: List[tuple[int, np.ndarray, int]] = [
            (root, np.arange(X.shape[0], dtype=np.int64), 0)
        ]
        while stack:
            node, idx, depth = stack.pop()
            n_node = idx.shape[0]
            counts = np.bincount(y_enc[idx], minlength=n_classes)
            if (
                n_node < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.count_nonzero(counts) <= 1
            ):
                continue  # stays a leaf
            if k_features < self.n_features_in_:
                feats = rng.choice(self.n_features_in_, size=k_features, replace=False)
            else:
                feats = np.arange(self.n_features_in_)
            split = find_best_split(
                X[idx],
                y_enc[idx],
                n_classes,
                criterion=criterion,
                feature_indices=feats,
                min_samples_leaf=self.min_samples_leaf,
                min_impurity_decrease=self.min_impurity_decrease,
                sample_weight=(
                    None if sample_weight is None else sample_weight[idx]
                ),
            )
            if split is None:
                continue
            left_idx = idx[split.left_mask]
            right_idx = idx[~split.left_mask]
            left = buf.add_node(
                _weighted_counts(y_enc[left_idx], _sub(sample_weight, left_idx), n_classes)
            )
            right = buf.add_node(
                _weighted_counts(y_enc[right_idx], _sub(sample_weight, right_idx), n_classes)
            )
            buf.set_split(node, split.feature, split.threshold, left, right)
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))

        self.tree_ = buf.freeze()
        self.feature_importances_ = self.tree_.feature_importances(
            self.n_features_in_
        )
        return self

    # ------------------------------------------------------------------
    def _check_X(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "tree_")
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got ndim={X.ndim}")
        if X.shape[1] != self.n_features_in_:
            raise ModelError(
                f"model was fitted with {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        return X

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Leaf class distributions, columns ordered as ``classes_``."""
        X = self._check_X(X)
        return self.tree_.predict_proba(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per sample, in original label space."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------
    @property
    def depth_(self) -> int:
        """Depth of the fitted tree."""
        check_is_fitted(self, "tree_")
        return self.tree_.depth()

    @property
    def n_leaves_(self) -> int:
        """Leaf count of the fitted tree."""
        check_is_fitted(self, "tree_")
        return self.tree_.n_leaves

    def score(self, X: np.ndarray, y: Sequence[int]) -> float:
        """Accuracy on ``(X, y)``."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))
