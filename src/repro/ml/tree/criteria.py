"""Split-quality criteria for CART.

Both functions operate on *count* arrays whose last axis enumerates the
classes, returning the impurity of each row's class distribution — this
shape lets the splitter score every candidate threshold of a feature in
one vectorised call (counts are prefix sums over the sorted samples).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["gini_impurity", "entropy_impurity", "CRITERIA"]


def gini_impurity(counts: np.ndarray) -> np.ndarray:
    """Gini impurity ``1 - sum_k p_k^2`` per leading index.

    Rows with zero total count get impurity 0 (empty partitions are never
    selected by the splitter anyway, but NaNs must not propagate).
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(total > 0, counts / total, 0.0)
    imp = 1.0 - np.square(p).sum(axis=-1)
    return np.where(total.squeeze(-1) > 0, imp, 0.0)


def entropy_impurity(counts: np.ndarray) -> np.ndarray:
    """Shannon entropy ``-sum_k p_k log2 p_k`` per leading index."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(total > 0, counts / total, 0.0)
        logp = np.zeros_like(p)
        np.log2(p, where=p > 0, out=logp)
    return -(p * logp).sum(axis=-1)


CRITERIA = {"gini": gini_impurity, "entropy": entropy_impurity}


def get_criterion(name: str):
    """Resolve a criterion name to its impurity function."""
    if name not in CRITERIA:
        raise ValidationError(
            f"unknown criterion {name!r}; expected one of {sorted(CRITERIA)}"
        )
    return CRITERIA[name]
