"""CART regression tree (variance-reduction splits, mean-value leaves).

Built as the base learner for gradient boosting — the paper's Section IX
names gradient-boosted decision trees as the candidate for improving on
the random forest.  The tree reuses the flat :class:`Tree` layout with a
single "class" column holding each node's mean target value.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ModelError, ValidationError
from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.tree.classifier import resolve_max_features
from repro.ml.tree.splitter import find_best_split_mse
from repro.ml.tree.structure import Tree, TreeBuffer
from repro.utils.rng import ensure_generator

__all__ = ["DecisionTreeRegressor"]


class DecisionTreeRegressor(BaseEstimator):
    """Least-squares CART regressor.

    Parameters mirror the classifier's; the split criterion is variance
    reduction and leaves predict their training mean.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: object = None,
        min_impurity_decrease: float = 0.0,
        seed: int | None = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on continuous targets ``y``."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        y = np.ascontiguousarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got ndim={X.ndim}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValidationError(
                f"y must be 1-D with len(X)={X.shape[0]}, got {y.shape}"
            )
        if X.shape[0] == 0:
            raise ValidationError("cannot fit on an empty dataset")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValidationError("max_depth must be >= 1 or None")
        if self.min_samples_split < 2 or self.min_samples_leaf < 1:
            raise ValidationError("invalid min_samples settings")

        self.n_features_in_ = X.shape[1]
        k_features = resolve_max_features(self.max_features, self.n_features_in_)
        rng = ensure_generator(self.seed)

        # node "counts" carry (sum(y), n) so leaf means are sum/n
        buf = TreeBuffer(n_classes=2)
        root = buf.add_node(np.array([y.sum(), float(y.shape[0])]))
        stack: List[tuple[int, np.ndarray, int]] = [
            (root, np.arange(X.shape[0], dtype=np.int64), 0)
        ]
        while stack:
            node, idx, depth = stack.pop()
            if (
                idx.shape[0] < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
            ):
                continue
            if k_features < self.n_features_in_:
                feats = rng.choice(self.n_features_in_, size=k_features, replace=False)
            else:
                feats = np.arange(self.n_features_in_)
            split = find_best_split_mse(
                X[idx],
                y[idx],
                feature_indices=feats,
                min_samples_leaf=self.min_samples_leaf,
                min_impurity_decrease=self.min_impurity_decrease,
            )
            if split is None:
                continue
            left_idx = idx[split.left_mask]
            right_idx = idx[~split.left_mask]
            left = buf.add_node(
                np.array([y[left_idx].sum(), float(left_idx.shape[0])])
            )
            right = buf.add_node(
                np.array([y[right_idx].sum(), float(right_idx.shape[0])])
            )
            buf.set_split(node, split.feature, split.threshold, left, right)
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))
        self.tree_ = buf.freeze()
        return self

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean target value of the reached leaf per sample."""
        check_is_fitted(self, "tree_")
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got ndim={X.ndim}")
        if X.shape[1] != self.n_features_in_:
            raise ModelError(
                f"model was fitted with {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        leaves = self.tree_.apply(X)
        sums = self.tree_.counts[leaves, 0]
        counts = self.tree_.counts[leaves, 1]
        return sums / np.maximum(counts, 1.0)

    @property
    def depth_(self) -> int:
        """Depth of the fitted tree."""
        check_is_fitted(self, "tree_")
        return self.tree_.depth()

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R^2 coefficient of determination."""
        y = np.asarray(y, dtype=np.float64)
        pred = self.predict(X)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0


def _as_regression_tree(tree: Tree) -> Tree:  # pragma: no cover - reserved
    return tree
