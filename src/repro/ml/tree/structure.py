"""Flat array representation of a fitted decision tree.

Nodes live in parallel NumPy arrays (à la scikit-learn's ``Tree``):
``feature[i] == -1`` marks a leaf; internal nodes send samples with
``x[feature] <= threshold`` left.  The flat layout gives vectorised batch
prediction (one gather per tree level) and a trivially serialisable form
for the Oracle model files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ModelError

__all__ = ["Tree", "LEAF"]

#: Sentinel feature index marking leaf nodes.
LEAF = -1


@dataclass
class Tree:
    """A fitted CART tree in flat-array form.

    Attributes
    ----------
    feature:
        Split feature per node, or :data:`LEAF` for leaves.
    threshold:
        Split threshold per node (NaN on leaves).
    left, right:
        Child node indices (-1 on leaves).
    counts:
        ``(n_nodes, n_classes)`` training-class counts per node; leaf
        rows are the prediction distribution.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        n = self.feature.shape[0]
        for name in ("threshold", "left", "right"):
            if getattr(self, name).shape[0] != n:
                raise ModelError(f"tree array {name!r} length mismatch")
        if self.counts.ndim != 2 or self.counts.shape[0] != n:
            raise ModelError("counts must be (n_nodes, n_classes)")

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_classes(self) -> int:
        return int(self.counts.shape[1])

    @property
    def n_leaves(self) -> int:
        return int(np.count_nonzero(self.feature == LEAF))

    def depth(self) -> int:
        """Longest root-to-leaf path (0 for a stump with a single leaf)."""
        depths = np.zeros(self.n_nodes, dtype=np.int64)
        out = 0
        for i in range(self.n_nodes):  # parents precede children by builder
            if self.feature[i] != LEAF:
                for child in (self.left[i], self.right[i]):
                    depths[child] = depths[i] + 1
                    out = max(out, int(depths[child]))
        return out

    # ------------------------------------------------------------------
    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by every sample (vectorised descent)."""
        X = np.asarray(X, dtype=np.float64)
        node = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature[node] != LEAF
        while active.any():
            idx = node[active]
            feat = self.feature[idx]
            go_left = X[active, feat] <= self.threshold[idx]
            node[active] = np.where(go_left, self.left[idx], self.right[idx])
            active = self.feature[node] != LEAF
        return node

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class distribution of the reached leaf, normalised."""
        leaves = self.apply(X)
        counts = self.counts[leaves].astype(np.float64)
        totals = counts.sum(axis=1, keepdims=True)
        return np.where(totals > 0, counts / totals, 1.0 / self.n_classes)

    def decision_path_length(self, X: np.ndarray) -> np.ndarray:
        """Number of internal nodes traversed per sample."""
        X = np.asarray(X, dtype=np.float64)
        node = np.zeros(X.shape[0], dtype=np.int64)
        hops = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature[node] != LEAF
        while active.any():
            idx = node[active]
            feat = self.feature[idx]
            go_left = X[active, feat] <= self.threshold[idx]
            node[active] = np.where(go_left, self.left[idx], self.right[idx])
            hops[active] += 1
            active = self.feature[node] != LEAF
        return hops

    # ------------------------------------------------------------------
    def feature_importances(self, n_features: int) -> np.ndarray:
        """Impurity-decrease importance per feature, normalised to sum 1."""
        from repro.ml.tree.criteria import gini_impurity

        importances = np.zeros(n_features, dtype=np.float64)
        node_imp = gini_impurity(self.counts)
        node_n = self.counts.sum(axis=1)
        total = node_n[0] if self.n_nodes else 0
        for i in range(self.n_nodes):
            if self.feature[i] == LEAF:
                continue
            li, ri = self.left[i], self.right[i]
            decrease = (
                node_n[i] * node_imp[i]
                - node_n[li] * node_imp[li]
                - node_n[ri] * node_imp[ri]
            )
            importances[self.feature[i]] += max(0.0, decrease) / max(total, 1)
        s = importances.sum()
        return importances / s if s > 0 else importances

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible serialisation."""
        return {
            "feature": self.feature.tolist(),
            "threshold": self.threshold.tolist(),
            "left": self.left.tolist(),
            "right": self.right.tolist(),
            "counts": self.counts.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Tree":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                feature=np.asarray(payload["feature"], dtype=np.int64),
                threshold=np.asarray(payload["threshold"], dtype=np.float64),
                left=np.asarray(payload["left"], dtype=np.int64),
                right=np.asarray(payload["right"], dtype=np.int64),
                counts=np.asarray(payload["counts"], dtype=np.float64),
            )
        except KeyError as exc:
            raise ModelError(f"tree payload missing key: {exc}") from exc


class TreeBuffer:
    """Append-only node buffer used while growing a tree."""

    def __init__(self, n_classes: int) -> None:
        self.n_classes = n_classes
        self.feature: List[int] = []
        self.threshold: List[float] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.counts: List[np.ndarray] = []

    def add_node(self, counts: np.ndarray) -> int:
        """Append a placeholder node, returning its index."""
        self.feature.append(LEAF)
        self.threshold.append(float("nan"))
        self.left.append(-1)
        self.right.append(-1)
        self.counts.append(np.asarray(counts, dtype=np.float64))
        return len(self.feature) - 1

    def set_split(self, node: int, feature: int, threshold: float, left: int, right: int) -> None:
        """Turn a placeholder node into an internal split node."""
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.left[node] = left
        self.right[node] = right

    def freeze(self) -> Tree:
        """Materialise the immutable flat-array tree."""
        return Tree(
            feature=np.asarray(self.feature, dtype=np.int64),
            threshold=np.asarray(self.threshold, dtype=np.float64),
            left=np.asarray(self.left, dtype=np.int64),
            right=np.asarray(self.right, dtype=np.int64),
            counts=np.stack(self.counts) if self.counts else np.zeros((0, self.n_classes)),
        )
