"""Best-split search for one CART node.

For each candidate feature the samples are sorted by value; prefix sums of
one-hot class indicators give the left-partition class counts at every
possible threshold simultaneously, so the impurity of all splits of a
feature is scored in one vectorised sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["SplitResult", "find_best_split"]


@dataclass(frozen=True)
class SplitResult:
    """The winning split of a node."""

    feature: int
    threshold: float
    gain: float  # impurity decrease, weighted by node fraction
    left_mask: np.ndarray  # boolean over the node's local samples


def find_best_split(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    *,
    criterion: Callable[[np.ndarray], np.ndarray],
    feature_indices: np.ndarray,
    min_samples_leaf: int,
    min_impurity_decrease: float = 0.0,
    sample_weight: np.ndarray | None = None,
) -> Optional[SplitResult]:
    """Return the best split of ``(X, y)`` over *feature_indices*, or None.

    Parameters
    ----------
    X, y:
        The node's samples (rows of the full matrix already gathered).
    n_classes:
        Total number of classes in the overall problem.
    criterion:
        Impurity function over class-count arrays.
    feature_indices:
        Candidate features in evaluation order (callers pass a random
        subset/permutation for ``max_features``).
    min_samples_leaf:
        Both children must keep at least this many samples (raw counts,
        independent of sample weights — matching scikit-learn).
    min_impurity_decrease:
        Minimum weighted impurity decrease for a split to be admissible.
    sample_weight:
        Optional per-sample weights; impurities are computed on weighted
        class counts (this is how ``class_weight='balanced'`` training
        re-weights the rare-format classes).
    """
    n = X.shape[0]
    if n < 2 * min_samples_leaf:
        return None
    onehot = np.zeros((n, n_classes), dtype=np.float64)
    if sample_weight is None:
        onehot[np.arange(n), y] = 1.0
    else:
        onehot[np.arange(n), y] = sample_weight
    parent_counts = onehot.sum(axis=0)
    parent_imp = float(criterion(parent_counts[None, :])[0])
    if parent_imp <= 0.0:
        return None  # pure node

    best_gain = min_impurity_decrease
    best: Optional[tuple[int, float]] = None

    for f in feature_indices:
        values = X[:, f]
        order = np.argsort(values, kind="stable")
        v_sorted = values[order]
        # split position i means left = sorted samples [0..i]; a position is
        # valid only between distinct consecutive values
        distinct = v_sorted[:-1] < v_sorted[1:]
        if not distinct.any():
            continue
        left_counts = np.cumsum(onehot[order], axis=0)[:-1]
        right_counts = parent_counts[None, :] - left_counts
        n_left = np.arange(1, n, dtype=np.float64)
        n_right = n - n_left
        valid = (
            distinct
            & (n_left >= min_samples_leaf)
            & (n_right >= min_samples_leaf)
        )
        if not valid.any():
            continue
        child_imp = (
            n_left * criterion(left_counts) + n_right * criterion(right_counts)
        ) / n
        gains = parent_imp - child_imp
        gains[~valid] = -np.inf
        pos = int(np.argmax(gains))
        gain = float(gains[pos])
        if gain > best_gain + 1e-15:
            best_gain = gain
            # midpoint threshold, matching scikit-learn
            thr = 0.5 * (float(v_sorted[pos]) + float(v_sorted[pos + 1]))
            best = (int(f), thr)

    if best is None:
        return None
    feature, threshold = best
    return SplitResult(
        feature=feature,
        threshold=threshold,
        gain=best_gain,
        left_mask=X[:, feature] <= threshold,
    )


def find_best_split_mse(
    X: np.ndarray,
    y: np.ndarray,
    *,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
    min_impurity_decrease: float = 0.0,
) -> Optional[SplitResult]:
    """Best variance-reducing split for a regression target.

    Node impurity is the variance of *y*; child impurities are evaluated at
    every candidate threshold via prefix sums of ``y`` and ``y**2`` (the
    same one-sweep trick as the classification splitter).  Used by the
    regression trees inside gradient boosting.
    """
    n = X.shape[0]
    if n < 2 * min_samples_leaf:
        return None
    y = np.asarray(y, dtype=np.float64)
    parent_var = float(y.var())
    if parent_var <= 1e-18:
        return None

    best_gain = min_impurity_decrease
    best: Optional[tuple[int, float]] = None

    for f in feature_indices:
        values = X[:, f]
        order = np.argsort(values, kind="stable")
        v_sorted = values[order]
        distinct = v_sorted[:-1] < v_sorted[1:]
        if not distinct.any():
            continue
        y_sorted = y[order]
        csum = np.cumsum(y_sorted)[:-1]
        csum2 = np.cumsum(y_sorted * y_sorted)[:-1]
        n_left = np.arange(1, n, dtype=np.float64)
        n_right = n - n_left
        total = float(y_sorted.sum())
        total2 = float((y_sorted * y_sorted).sum())
        valid = (
            distinct
            & (n_left >= min_samples_leaf)
            & (n_right >= min_samples_leaf)
        )
        if not valid.any():
            continue
        # child variance * child count == sum(y^2) - sum(y)^2 / count
        left_sse = csum2 - csum * csum / n_left
        right_sum = total - csum
        right_sse = (total2 - csum2) - right_sum * right_sum / n_right
        child = (left_sse + right_sse) / n
        gains = parent_var - child
        gains[~valid] = -np.inf
        pos = int(np.argmax(gains))
        gain = float(gains[pos])
        if gain > best_gain + 1e-15:
            best_gain = gain
            thr = 0.5 * (float(v_sorted[pos]) + float(v_sorted[pos + 1]))
            best = (int(f), thr)

    if best is None:
        return None
    feature, threshold = best
    return SplitResult(
        feature=feature,
        threshold=threshold,
        gain=best_gain,
        left_mask=X[:, feature] <= threshold,
    )
