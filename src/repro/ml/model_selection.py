"""Cross-validation and hyperparameter search.

The paper tunes its classifiers with an exhaustive grid search wrapped
around 5-fold cross-validation on the training split (Section VII-D); this
module provides :class:`KFold` / :class:`StratifiedKFold`,
:func:`cross_val_score` and :class:`GridSearchCV` with the same semantics
as their scikit-learn namesakes (for the feature subset used here).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseEstimator, clone
from repro.ml.metrics import accuracy_score, balanced_accuracy_score
from repro.utils.rng import ensure_generator

__all__ = [
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "ParameterGrid",
    "GridSearchCV",
]

Scorer = Callable[[np.ndarray, np.ndarray], float]

_SCORERS: Dict[str, Scorer] = {
    "accuracy": accuracy_score,
    "balanced_accuracy": balanced_accuracy_score,
}


def get_scorer(scoring: str | Scorer) -> Scorer:
    """Resolve a scoring name or callable to a ``(y_true, y_pred) -> float``."""
    if callable(scoring):
        return scoring
    if scoring not in _SCORERS:
        raise ValidationError(
            f"unknown scoring {scoring!r}; expected one of {sorted(_SCORERS)}"
        )
    return _SCORERS[scoring]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_size: float = 0.2,
    seed: int | None = 0,
    stratify: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split arrays into train and test partitions.

    With ``stratify=True`` the class proportions of *y* are preserved in
    both partitions (up to rounding).
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValidationError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]}"
        )
    if not 0.0 < test_size < 1.0:
        raise ValidationError(f"test_size must be in (0, 1), got {test_size}")
    rng = ensure_generator(seed)
    n = X.shape[0]
    if stratify:
        test_idx: List[int] = []
        for c in np.unique(y):
            members = np.flatnonzero(y == c)
            members = members[rng.permutation(members.shape[0])]
            k = max(1, int(round(test_size * members.shape[0])))
            test_idx.extend(members[:k].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[np.asarray(test_idx, dtype=np.int64)] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class KFold:
    """Shuffled K-fold splitter yielding (train_idx, test_idx) pairs."""

    def __init__(self, n_splits: int = 5, *, shuffle: bool = True, seed: int | None = 0) -> None:
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, X: np.ndarray, y: np.ndarray | None = None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValidationError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        idx = np.arange(n)
        if self.shuffle:
            idx = ensure_generator(self.seed).permutation(n)
        folds = np.array_split(idx, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


class StratifiedKFold:
    """K-fold preserving per-class proportions in every fold.

    Samples of each class are dealt round-robin (after shuffling) into the
    folds, so even minority classes with fewer members than folds are
    spread as evenly as possible — important here because the format
    labels are heavily imbalanced.
    """

    def __init__(self, n_splits: int = 5, *, shuffle: bool = True, seed: int | None = 0) -> None:
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, X: np.ndarray, y: np.ndarray) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        n = y.shape[0]
        if n < self.n_splits:
            raise ValidationError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        rng = ensure_generator(self.seed)
        fold_of = np.empty(n, dtype=np.int64)
        for c in np.unique(y):
            members = np.flatnonzero(y == c)
            if self.shuffle:
                members = members[rng.permutation(members.shape[0])]
            fold_of[members] = np.arange(members.shape[0]) % self.n_splits
        for i in range(self.n_splits):
            test = np.flatnonzero(fold_of == i)
            train = np.flatnonzero(fold_of != i)
            yield train, test


def cross_val_score(
    estimator: BaseEstimator,
    X: np.ndarray,
    y: np.ndarray,
    *,
    cv: KFold | StratifiedKFold | int = 5,
    scoring: str | Scorer = "accuracy",
) -> np.ndarray:
    """Fit a clone per fold and return the per-fold test scores."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    splitter = StratifiedKFold(cv) if isinstance(cv, int) else cv
    scorer = get_scorer(scoring)
    scores = []
    for train_idx, test_idx in splitter.split(X, y):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(scorer(y[test_idx], model.predict(X[test_idx])))
    return np.asarray(scores)


class ParameterGrid:
    """Cartesian product over a ``{name: [values...]}`` mapping."""

    def __init__(self, grid: Mapping[str, Sequence[object]]) -> None:
        if not grid:
            raise ValidationError("parameter grid must not be empty")
        for key, values in grid.items():
            if isinstance(values, str) or not isinstance(values, Iterable):
                raise ValidationError(
                    f"grid entry {key!r} must be a sequence of values"
                )
        self.grid = {k: list(v) for k, v in grid.items()}

    def __len__(self) -> int:
        out = 1
        for values in self.grid.values():
            out *= len(values)
        return out

    def __iter__(self) -> Iterator[Dict[str, object]]:
        keys = sorted(self.grid)
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combo))


class GridSearchCV(BaseEstimator):
    """Exhaustive hyperparameter search with cross-validated scoring.

    Mirrors the paper's tuning procedure: every grid point is evaluated
    with (stratified) 5-fold CV on the training set; the best-scoring
    parameters are refitted on the full training set.

    Attributes (after :meth:`fit`)
    ------------------------------
    best_params_:
        The winning parameter combination.
    best_score_:
        Its mean CV score.
    best_estimator_:
        A clone refitted on all of ``(X, y)`` with the winning parameters.
    cv_results_:
        Dict with ``params``, ``mean_test_score`` and ``std_test_score``.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: Mapping[str, Sequence[object]],
        *,
        cv: int = 5,
        scoring: str | Scorer = "accuracy",
        seed: int | None = 0,
    ) -> None:
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scoring = scoring
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearchCV":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        splitter = StratifiedKFold(self.cv, seed=self.seed)
        # materialise folds once: every grid point sees identical splits
        folds = list(splitter.split(X, y))
        scorer = get_scorer(self.scoring)
        results: List[Tuple[Dict[str, object], float, float]] = []
        for params in ParameterGrid(self.param_grid):
            fold_scores = []
            for train_idx, test_idx in folds:
                model = clone(self.estimator).set_params(**params)
                model.fit(X[train_idx], y[train_idx])
                fold_scores.append(
                    scorer(y[test_idx], model.predict(X[test_idx]))
                )
            arr = np.asarray(fold_scores)
            results.append((params, float(arr.mean()), float(arr.std())))
        best_idx = int(np.argmax([r[1] for r in results]))
        self.best_params_ = results[best_idx][0]
        self.best_score_ = results[best_idx][1]
        self.cv_results_ = {
            "params": [r[0] for r in results],
            "mean_test_score": np.asarray([r[1] for r in results]),
            "std_test_score": np.asarray([r[2] for r in results]),
        }
        self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict with the refitted best estimator."""
        return self.best_estimator_.predict(X)
