"""From-scratch machine-learning stack (the scikit-learn substitute).

The paper's Sparse.Tree framework trains decision-tree and random-forest
classifiers with scikit-learn; this offline environment has no scikit-learn,
so the package implements the required subset from first principles:

* :class:`~repro.ml.tree.DecisionTreeClassifier` — CART with gini/entropy
  criteria, depth / leaf / split / feature-subset controls.
* :class:`~repro.ml.forest.RandomForestClassifier` — bagged trees with
  majority voting (the scheme Oracle's ``RandomForestTuner`` uses).
* :mod:`~repro.ml.model_selection` — stratified K-fold CV, grid search.
* :mod:`~repro.ml.metrics` — accuracy, balanced accuracy (the paper's
  headline metrics), confusion matrices and reports.

The implementations follow scikit-learn's API conventions (``fit`` /
``predict`` / ``get_params``) so the pipeline code reads like the paper's.
"""

from repro.ml.base import BaseEstimator, clone
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.metrics import (
    accuracy_score,
    balanced_accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)

__all__ = [
    "BaseEstimator",
    "clone",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "accuracy_score",
    "balanced_accuracy_score",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "precision_score",
    "recall_score",
    "GridSearchCV",
    "KFold",
    "ParameterGrid",
    "StratifiedKFold",
    "cross_val_score",
    "train_test_split",
]
