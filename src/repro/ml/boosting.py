"""Gradient-boosted decision trees for multi-class format selection.

The paper's Section IX proposes gradient-boosted trees as the next step
beyond the random forest.  This implementation is the standard multi-class
softmax GBM: at every stage, one least-squares regression tree per class
is fitted to the softmax gradient residuals ``y_onehot - p`` and added to
the additive score with a learning rate.

The classifier matches the package's estimator API so it drops into
:class:`~repro.ml.model_selection.GridSearchCV` and the ablation benches.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.tree.regressor import DecisionTreeRegressor
from repro.utils.rng import derive_seed, ensure_generator

__all__ = ["GradientBoostingClassifier"]


def _softmax(scores: np.ndarray) -> np.ndarray:
    z = scores - scores.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class GradientBoostingClassifier(BaseEstimator):
    """Multi-class gradient boosting with regression-tree base learners.

    Parameters
    ----------
    n_estimators:
        Boosting stages; each stage fits ``n_classes`` trees.
    learning_rate:
        Shrinkage applied to every stage's contribution.
    max_depth:
        Depth of the (deliberately shallow) base trees.
    subsample:
        Row-sampling fraction per stage (< 1 gives stochastic gradient
        boosting).
    min_samples_leaf:
        Leaf-size floor of the base trees.
    seed:
        Seed for subsampling and feature subsampling determinism.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        min_samples_leaf: int = 1,
        seed: int | None = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: Sequence[int]) -> "GradientBoostingClassifier":
        """Fit ``n_estimators`` stages of per-class residual trees."""
        if self.n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValidationError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ValidationError("subsample must be in (0, 1]")
        X = np.ascontiguousarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValidationError(f"inconsistent shapes X{X.shape} y{y.shape}")
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        k = self.classes_.shape[0]
        label_of = {int(c): i for i, c in enumerate(self.classes_)}
        y_enc = np.asarray([label_of[int(v)] for v in y], dtype=np.int64)
        onehot = np.zeros((X.shape[0], k), dtype=np.float64)
        onehot[np.arange(X.shape[0]), y_enc] = 1.0

        # prior: log class frequencies (standard multinomial init)
        priors = np.clip(onehot.mean(axis=0), 1e-12, None)
        self.init_scores_ = np.log(priors)
        scores = np.tile(self.init_scores_, (X.shape[0], 1))

        base_seed = self.seed if self.seed is not None else 0
        rng = ensure_generator(derive_seed(base_seed, "subsample"))
        self.stages_: List[List[DecisionTreeRegressor]] = []
        n = X.shape[0]
        for stage in range(self.n_estimators):
            proba = _softmax(scores)
            residual = onehot - proba  # negative softmax gradient
            if self.subsample < 1.0:
                m = max(2, int(self.subsample * n))
                rows = rng.choice(n, size=m, replace=False)
            else:
                rows = np.arange(n)
            stage_trees: List[DecisionTreeRegressor] = []
            for c in range(k):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    seed=derive_seed(base_seed, "tree", stage, c),
                )
                tree.fit(X[rows], residual[rows, c])
                scores[:, c] += self.learning_rate * tree.predict(X)
                stage_trees.append(tree)
            self.stages_.append(stage_trees)
        return self

    # ------------------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Additive per-class scores before the softmax."""
        check_is_fitted(self, "stages_")
        X = np.ascontiguousarray(X, dtype=np.float64)
        scores = np.tile(self.init_scores_, (X.shape[0], 1))
        for stage_trees in self.stages_:
            for c, tree in enumerate(stage_trees):
                scores[:, c] += self.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        return _softmax(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per sample, in original label space."""
        scores = self.decision_function(X)  # raises NotFittedError first
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X: np.ndarray, y: Sequence[int]) -> float:
        """Accuracy on ``(X, y)``."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))
