"""Multi-process distributed serving tier.

The in-process :class:`~repro.service.service.TuningService` is capped
by the GIL: concurrent numpy-tier SpMV requests serialize on one
interpreter, and one crash takes down every session.  This package
splits the service into a front-end **gateway** and N supervised
**worker processes**:

* :mod:`repro.distributed.gateway` —
  :class:`~repro.distributed.gateway.DistributedService`, the
  drop-in-compatible front end: validates and coalesces requests
  (reusing :mod:`repro.service.coalesce`), routes each matrix
  fingerprint to the worker that owns it, aggregates fleet-wide
  ``stats()`` and forwards worker telemetry to the adaptive loop;
* :mod:`repro.distributed.worker` — the single-threaded worker loop:
  each process hosts its own :class:`~repro.service.cache
  .ShardedEngineCache` slice and per-process kernel-backend warm-up,
  and mirrors the service's serving arithmetic exactly so distributed
  results are bitwise-identical to single-process serve;
* :mod:`repro.distributed.shm` — the zero-copy vector transport:
  request/response vectors cross the process boundary through
  ``multiprocessing.shared_memory`` slots (pickling only for control
  messages), recycled when the client drops the result;
* :mod:`repro.distributed.supervisor` — process lifecycle: heartbeats,
  pipe-sentinel death detection, respawn + re-warm + state replay
  without disturbing in-flight requests on surviving workers.

See ``docs/distributed.md`` for the architecture, the shared-memory
protocol, and the failure model.
"""

from repro.distributed.gateway import DistributedService
from repro.distributed.shm import ShmRef, ShmVectorPool

__all__ = ["DistributedService", "ShmRef", "ShmVectorPool"]
