"""Worker-process lifecycle for the distributed tier.

The :class:`Supervisor` owns the fleet: it spawns each worker with its
own duplex control pipe, runs one reader thread per worker (delivering
every protocol message to the gateway's callback), and watches two
independent death signals:

* the **process sentinel** — the primary signal.  With the ``fork``
  start method sibling workers inherit each other's pipe fds, so a dead
  worker's pipe does not reliably reach EOF; the OS-level sentinel
  (``Process.sentinel``) fires regardless;
* **heartbeat staleness** — covers the hung-but-alive case: a worker
  that stops beating for ``heartbeat_timeout`` seconds is killed, which
  then trips the sentinel path.

Death handling is per-worker and idempotent (guarded by an incarnation
counter): the dead incarnation's last-heartbeat snapshot is handed to
``on_death`` (the gateway folds it into retired accounting, exactly as
cache eviction folds an evicted engine), a fresh incarnation is spawned
on a fresh pipe, and ``on_respawn`` lets the gateway replay state and
re-send the dead worker's pending requests.  Workers on other shards
never notice: their pipes, engines, and in-flight batches are untouched.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.distributed.worker import WorkerConfig, worker_main

__all__ = ["Supervisor", "WorkerHandle"]

_POLL_SECONDS = 0.02


def _mp_context():
    """The ``fork`` context where available (Linux), else the default.

    Fork keeps worker boot cheap and lets :class:`WorkerConfig` carry
    arbitrary (unpicklable) tuner/space objects by copy-on-write.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class WorkerHandle:
    """One worker slot: current process, pipe, and liveness bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.send_lock = threading.Lock()
        self.incarnation = 0
        self.ready = threading.Event()
        self.last_heartbeat = 0.0
        self.last_snapshot: Dict[str, object] = {}
        self.backends: Dict[str, object] = {}
        self.dead = False

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


class Supervisor:
    """Spawn, watch, and respawn the worker fleet.

    Parameters
    ----------
    make_config:
        ``make_config(index) -> WorkerConfig`` factory; called for every
        spawn, including respawns.
    on_message:
        ``on_message(index, incarnation, message)`` — every non-heartbeat
        protocol message a worker sends, delivered on that worker's
        reader thread.
    on_death:
        ``on_death(index, snapshot)`` — a worker incarnation died;
        *snapshot* is its last heartbeat accounting (possibly empty).
        Runs before the respawn.
    on_respawn:
        ``on_respawn(index)`` — the replacement incarnation is up
        (pipe connected, messages will be processed in send order); the
        gateway replays matrices, the deployed model, and pending work.
    """

    def __init__(
        self,
        make_config: Callable[[int], WorkerConfig],
        *,
        on_message: Callable[[int, int, tuple], None],
        on_death: Callable[[int, Dict[str, object]], None],
        on_respawn: Callable[[int], None],
        heartbeat_timeout: float = 10.0,
    ) -> None:
        self._make_config = make_config
        self._on_message = on_message
        self._on_death = on_death
        self._on_respawn = on_respawn
        self.heartbeat_timeout = float(heartbeat_timeout)
        self._ctx = _mp_context()
        self._handles: List[WorkerHandle] = []
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self.respawns = 0
        self.kills = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, n: int, *, ready_timeout: float = 60.0) -> None:
        """Spawn *n* workers and wait for every ready message."""
        self._handles = [WorkerHandle(i) for i in range(n)]
        for handle in self._handles:
            self._spawn(handle)
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name="repro-dist-monitor",
            daemon=True,
        )
        self._monitor.start()
        deadline = time.monotonic() + ready_timeout
        for handle in self._handles:
            remaining = max(0.0, deadline - time.monotonic())
            if not handle.ready.wait(remaining):
                raise TimeoutError(
                    f"worker {handle.index} not ready after {ready_timeout}s"
                )

    def _spawn(self, handle: WorkerHandle) -> None:
        config = self._make_config(handle.index)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(config, child_conn),
            name=f"repro-worker-{handle.index}",
            daemon=True,
        )
        incarnation = handle.incarnation
        process.start()
        child_conn.close()  # the worker's end lives in the worker only
        # publish the handle only once the process is joinable — a
        # concurrent shutdown() must never see a constructed-but-not-
        # started Process
        handle.conn = parent_conn
        handle.process = process
        handle.last_heartbeat = time.monotonic()
        handle.dead = False
        reader = threading.Thread(
            target=self._read_loop,
            args=(handle, incarnation),
            name=f"repro-dist-reader-{handle.index}",
            daemon=True,
        )
        reader.start()

    def handles(self) -> List[WorkerHandle]:
        return list(self._handles)

    def handle(self, index: int) -> WorkerHandle:
        return self._handles[index]

    def send(self, index: int, message, *, expect: Optional[int] = None) -> bool:
        """Ship one control message; ``False`` if the worker is down.

        ``Connection.send`` is not thread-safe, so each handle
        serialises senders through its own lock (the request path, the
        promote broadcast, and the stats poll all share the pipe).

        ``expect`` pins the send to one incarnation: if the worker was
        replaced since the caller observed that incarnation number the
        send is refused rather than delivered to a replacement that
        never saw the caller's preceding state messages.
        """
        handle = self._handles[index]
        with handle.send_lock:
            if handle.dead or handle.conn is None:
                return False
            if expect is not None and handle.incarnation != expect:
                return False
            try:
                handle.conn.send(message)
                return True
            except (OSError, ValueError, BrokenPipeError):
                return False  # sentinel path will pick the death up

    def kill(self, index: int) -> Optional[int]:
        """Forcibly SIGKILL one worker (failure-injection hook).

        Returns the killed pid; recovery then follows the normal death
        path — fold, respawn, replay.
        """
        handle = self._handles[index]
        process = handle.process
        if process is None or not process.is_alive():
            return None
        self.kills += 1
        pid = process.pid
        process.kill()
        return pid

    def shutdown(self, *, timeout: float = 10.0) -> None:
        """Stop every worker: polite shutdown, then terminate, then kill."""
        self._closing.set()
        for handle in self._handles:
            self.send(handle.index, ("shutdown",))
        deadline = time.monotonic() + timeout
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            try:
                process.join(max(0.0, deadline - time.monotonic()))
                if process.is_alive():
                    process.terminate()
                    process.join(1.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(1.0)
            except (AssertionError, ValueError):
                # a respawn raced the shutdown and the process handle is
                # mid-replacement; _closing is set, so no further spawn
                # follows and the daemon flag reaps the straggler
                continue
            handle.dead = True
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except Exception:
                    pass

    # ------------------------------------------------------------------
    # watching
    # ------------------------------------------------------------------
    def _read_loop(self, handle: WorkerHandle, incarnation: int) -> None:
        """Deliver one incarnation's messages until it dies or is replaced."""
        conn = handle.conn
        while not self._closing.is_set():
            if handle.incarnation != incarnation:
                return  # a respawn superseded this incarnation
            try:
                if not conn.poll(_POLL_SECONDS):
                    continue
                message = conn.recv()
            except (EOFError, OSError, ValueError, TypeError):
                # Pipe gone — the sentinel path owns recovery.  The
                # TypeError arm covers close() landing between poll and
                # recv: reading a just-closed Connection dereferences a
                # None handle.
                return
            kind = message[0]
            if kind == "heartbeat":
                handle.last_heartbeat = time.monotonic()
                handle.last_snapshot = message[2]
            elif kind == "ready":
                handle.last_heartbeat = time.monotonic()
                handle.backends = message[2]
                handle.ready.set()
                self._on_message(handle.index, incarnation, message)
            else:
                handle.last_heartbeat = time.monotonic()
                self._on_message(handle.index, incarnation, message)

    def _monitor_loop(self) -> None:
        """Sentinel + heartbeat watchdog; respawns dead incarnations."""
        while not self._closing.is_set():
            sentinels = {
                handle.process.sentinel: handle
                for handle in self._handles
                if handle.process is not None and not handle.dead
            }
            if not sentinels:
                time.sleep(_POLL_SECONDS)
                continue
            fired = multiprocessing.connection.wait(
                list(sentinels), timeout=0.1
            )
            now = time.monotonic()
            dead = [sentinels[s] for s in fired]
            for handle in sentinels.values():
                if handle in dead:
                    continue
                # Staleness only applies after boot: a replacement busy
                # re-warming kernels has not started heartbeating yet,
                # and killing it mid-boot would loop forever on a slow
                # machine.  Pre-ready hangs are caught by the sentinel.
                if not handle.ready.is_set():
                    continue
                if now - handle.last_heartbeat > self.heartbeat_timeout:
                    # alive but silent: treat a hung worker as dead
                    self.kill(handle.index)
            for handle in dead:
                if self._closing.is_set():
                    return
                self._handle_death(handle)

    def _handle_death(self, handle: WorkerHandle) -> None:
        """Fold, respawn, replay — other workers are never touched."""
        if handle.dead:
            return
        handle.dead = True
        handle.ready.clear()
        process = handle.process
        if process is not None:
            process.join(1.0)
        with handle.send_lock:
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except Exception:
                    pass
                handle.conn = None
        try:
            self._on_death(handle.index, dict(handle.last_snapshot))
        except Exception:
            pass  # accounting must not block recovery
        if self._closing.is_set():
            return
        with self._lock:
            handle.incarnation += 1
            handle.last_snapshot = {}
            self.respawns += 1
            self._spawn(handle)
        try:
            self._on_respawn(handle.index)
        except Exception:
            pass

    def stats(self) -> Dict[str, object]:
        now = time.monotonic()
        return {
            "workers": len(self._handles),
            "respawns": self.respawns,
            "kills": self.kills,
            "alive": sum(
                1
                for handle in self._handles
                if handle.process is not None
                and handle.process.is_alive()
            ),
            "incarnations": [h.incarnation for h in self._handles],
            "heartbeat_age_seconds": [
                round(now - h.last_heartbeat, 3) for h in self._handles
            ],
        }
