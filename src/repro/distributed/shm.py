"""Zero-copy shared-memory vector transport for the distributed tier.

Request and response vectors never cross the gateway/worker boundary as
pickles: the gateway copies each payload into a
``multiprocessing.shared_memory`` slot and ships only a tiny picklable
:class:`ShmRef` descriptor over the control pipe; the worker maps the
same segment and reads (or writes) a numpy view in place.  The client's
result array is itself a view into shared memory — the only per-request
copies are the submit-side copy into the request slot and the worker's
write of the output, exactly the two ends of the wire.

:class:`ShmVectorPool` is the **gateway-owned** allocator: one segment
carved into fixed-size slots, recycled through a free-list, plus
dedicated one-off segments for payloads larger than a slot (counted in
:meth:`ShmVectorPool.stats` — a workload that overflows constantly
should be configured with bigger slots).  Owning both request *and*
response slots on the gateway keeps allocation single-process: workers
never allocate, they only map segments named in the message.

Hygiene contract (pinned by ``tests/distributed/test_hygiene.py``):
every segment the pool ever created is **unlinked** by
:meth:`ShmVectorPool.close` — immediately removing its ``/dev/shm``
entry even while live views keep the mapping alive — and **closed** as
soon as the last outstanding view is dropped.  The deferral is driven
entirely by the pool's own view counter: numpy arrays built over a
segment's buffer do *not* hold a PEP-3118 export open, so nothing stops
an unmap at the OS level — released segments with outstanding views are
therefore kept strongly referenced by the pool until their count drains
(otherwise ``SharedMemory.__del__`` would unmap under a live result
array).  Attachers (workers) unregister from the
``resource_tracker`` on attach: only the creating process may unlink,
and a tracker that believes it owns an already-unlinked segment prints
the leak warnings the hygiene test greps for.
"""

from __future__ import annotations

import os
import threading
import uuid
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "SEGMENT_PREFIX",
    "SegmentCache",
    "ShmRef",
    "ShmVectorPool",
    "attach_segment",
]

#: Every segment the tier creates carries this name prefix, so the
#: hygiene test (and an operator inspecting ``/dev/shm``) can attribute
#: segments to this package.
SEGMENT_PREFIX = "repro_shm_"


@dataclass(frozen=True)
class ShmRef:
    """Picklable descriptor of one vector payload in shared memory.

    ``slot`` is the pool slot index for pooled payloads and ``None`` for
    payloads in a dedicated (oversize) segment — dedicated segments are
    single-use and torn down when their payload is released.
    ``generation`` stamps which allocation of the slot this ref belongs
    to: releases are generation-checked, so a stale duplicate release
    (the worker-death retry path) can never free a slot out from under
    the ref it has since been recycled to.
    """

    segment: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str
    slot: Optional[int] = None
    generation: int = 0

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


#: Decided on the first attach: does this process share its resource
#: tracker with the segment creator (fork-started worker), or own a
#: private one (spawned/exec'd process)?
_TRACKER_SHARED: Optional[bool] = None


def _tracker_is_shared() -> bool:
    """Whether this process inherited the creator's resource tracker.

    A fork-started worker inherits the gateway's already-running
    tracker: its registry is shared, registrations deduplicate in a
    set, and the creator's eventual ``unlink()`` performs the single
    unregister — an attach-side unregister would strip the creator's
    entry (and make the unlink's unregister fail noisily).  A spawned
    or exec'd attacher starts its *own* tracker, which would try to
    destroy the "leaked" segment at exit unless the attach is
    unregistered.  Decided once, before the first attach can lazily
    start a private tracker and confuse the probe.
    """
    global _TRACKER_SHARED
    if _TRACKER_SHARED is None:
        import multiprocessing

        fd = getattr(resource_tracker._resource_tracker, "_fd", None)
        # The creator's own process trivially "shares" its tracker (its
        # single registration covers attach and create alike); a child
        # shares it only when fork handed down a running tracker's fd.
        # Only a child with a private tracker must unregister.
        _TRACKER_SHARED = (
            multiprocessing.parent_process() is None or fd is not None
        )
    return _TRACKER_SHARED


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment by name, without taking tracker ownership.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the mapping
    with the ``resource_tracker`` even though the attacher does not own
    the segment.  3.13+ has ``track=False`` for exactly this; older
    interpreters need an explicit unregister — but only in processes
    with a *private* tracker (see :func:`_tracker_is_shared`).
    """
    shared = _tracker_is_shared()
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        shm = shared_memory.SharedMemory(name=name)
        if not shared:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass  # tracker bookkeeping must never fail the data path
        return shm


class _Segment:
    """One owned segment plus its outstanding-view accounting."""

    __slots__ = ("shm", "views", "unlinked", "closed")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.views = 0
        self.unlinked = False
        self.closed = False


class ShmVectorPool:
    """Gateway-side allocator of shared-memory vector slots.

    Parameters
    ----------
    slot_bytes:
        Payload capacity of one pooled slot.  Size it for the common
        request/response vector (``nrows * 8`` for float64); larger
        payloads transparently fall back to dedicated segments.
    slots:
        Number of pooled slots.  Size it for the expected number of
        simultaneously in-flight payloads (requests not yet served plus
        responses not yet dropped by clients); exhaustion also falls
        back to dedicated segments, so it degrades, never deadlocks.
    """

    def __init__(self, *, slot_bytes: int = 1 << 20, slots: int = 64) -> None:
        if slot_bytes < 8:
            raise ValidationError(
                f"slot_bytes must be >= 8, got {slot_bytes}"
            )
        if slots < 1:
            raise ValidationError(f"slots must be >= 1, got {slots}")
        self.slot_bytes = int(slot_bytes)
        self.slots = int(slots)
        # Fork copies this object — and any view finalizers — into
        # worker processes; only the creating process may mutate the
        # pool or unlink segments (see the guards below).
        self._owner_pid = os.getpid()
        name = f"{SEGMENT_PREFIX}{os.getpid():x}_{uuid.uuid4().hex[:12]}"
        self._lock = threading.Lock()
        self._pool = _Segment(
            shared_memory.SharedMemory(
                create=True, size=self.slot_bytes * self.slots, name=name
            )
        )
        self._free: List[int] = list(range(self.slots - 1, -1, -1))
        # Per-slot allocation generation: reserve() stamps the current
        # generation into the ShmRef, release() bumps it — so a ref can
        # free its slot exactly once, and only while it still owns it.
        self._generations: List[int] = [0] * self.slots
        self._dedicated: Dict[str, _Segment] = {}
        # Released dedicated segments whose mapping must outlive the
        # release because views are still outstanding.  Dropping the
        # last reference to a _Segment runs SharedMemory.__del__ →
        # close(), and that munmap succeeds even with live numpy views
        # (ndarrays don't hold a PEP-3118 export open on the
        # memoryview), so an unreferenced segment would yank the memory
        # out from under client-held result arrays.
        self._lingering: Dict[str, _Segment] = {}
        self._closed = False
        # counters (exposed via stats())
        self._placements = 0
        self._overflows = 0
        self._dedicated_created = 0

    @property
    def name(self) -> str:
        """Name of the pooled segment (workers map it once and cache it)."""
        return self._pool.shm.name

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def place(self, array: np.ndarray) -> ShmRef:
        """Copy *array* into shared memory; returns its :class:`ShmRef`."""
        array = np.ascontiguousarray(array)
        ref = self.reserve(array.shape, array.dtype)
        view, segment = self._map(ref)
        view[...] = array
        del view
        self._drop_view(segment)
        return ref

    def reserve(self, shape: Tuple[int, ...], dtype) -> ShmRef:
        """Allocate an uninitialised payload (the response-slot path).

        The gateway reserves the response block before dispatching a
        batch; the worker writes straight into it, so the result never
        exists anywhere *but* shared memory.
        """
        if self._closed:
            raise ValidationError("shared-memory pool is closed")
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        with self._lock:
            self._placements += 1
            if nbytes <= self.slot_bytes and self._free:
                slot = self._free.pop()
                return ShmRef(
                    segment=self._pool.shm.name,
                    offset=slot * self.slot_bytes,
                    shape=tuple(int(d) for d in shape),
                    dtype=dtype.str,
                    slot=slot,
                    generation=self._generations[slot],
                )
            # oversize payload or pool exhausted: dedicated segment
            self._overflows += 1
            self._dedicated_created += 1
            name = (
                f"{SEGMENT_PREFIX}{os.getpid():x}_{uuid.uuid4().hex[:12]}"
            )
            segment = _Segment(
                shared_memory.SharedMemory(
                    create=True, size=max(nbytes, 1), name=name
                )
            )
            self._dedicated[name] = segment
            return ShmRef(
                segment=name,
                offset=0,
                shape=tuple(int(d) for d in shape),
                dtype=dtype.str,
                slot=None,
            )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def _segment_of(self, ref: ShmRef) -> _Segment:
        if ref.slot is not None:
            return self._pool
        with self._lock:
            segment = self._dedicated.get(ref.segment)
        if segment is None:
            raise ValidationError(
                f"unknown shared-memory segment {ref.segment!r}"
            )
        return segment

    def _map(self, ref: ShmRef) -> Tuple[np.ndarray, _Segment]:
        segment = self._segment_of(ref)
        with self._lock:
            segment.views += 1
        view = np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=segment.shm.buf,
            offset=ref.offset,
        )
        return view, segment

    def view(self, ref: ShmRef, *, release_with_view: bool = False):
        """A numpy view of *ref*'s payload in this (owning) process.

        With ``release_with_view=True`` the payload is recycled when the
        returned array (and every slice sharing its base) is garbage
        collected — this is how client-held response arrays return their
        slot to the free-list with no explicit release call.
        """
        import weakref

        view, segment = self._map(ref)
        if release_with_view:
            weakref.finalize(view, self.release, ref, _mapped=True)
        else:
            weakref.finalize(view, self._drop_view_safe, segment)
        return view

    def _drop_view(self, segment: _Segment) -> None:
        if os.getpid() != self._owner_pid:
            return  # forked copy: the gateway's accounting is not ours
        with self._lock:
            segment.views -= 1
            close_now = (
                segment.views == 0 and segment.unlinked and not segment.closed
            )
            if close_now:
                segment.closed = True
        if close_now:
            self._close_segment(segment)

    def _close_segment(self, segment: _Segment) -> None:
        try:
            segment.shm.close()
        except BufferError:  # a straggler view raced us; its
            segment.closed = False  # finalizer retries the close
            return
        except Exception:
            pass
        with self._lock:
            self._lingering.pop(segment.shm.name, None)

    def _drop_view_safe(self, segment: _Segment) -> None:
        try:
            self._drop_view(segment)
        except Exception:
            pass  # finalizers must never raise

    # ------------------------------------------------------------------
    # recycling
    # ------------------------------------------------------------------
    def release(self, ref: ShmRef, *, _mapped: bool = False) -> None:
        """Return *ref*'s payload: slot to the free-list, dedicated
        segment unlinked.  Idempotent — the worker-death retry path can
        release a response ref it already released.  Pooled releases
        are generation-checked: a duplicate release whose slot has
        since been recycled to a *new* ref carries a stale generation
        and is ignored, instead of freeing memory the in-flight ref
        still owns (two requests handed the same slot would silently
        corrupt each other)."""
        if os.getpid() != self._owner_pid:
            # A forked worker inherited this pool object (and, worse,
            # the weakref finalizers of any view alive at fork time,
            # which run at the child's exit).  Unlinking or recycling
            # from the child would tear down segments the gateway still
            # owns and double-unregister them with the shared resource
            # tracker.
            return
        if ref.slot is not None:
            with self._lock:
                if (
                    not self._closed
                    and self._generations[ref.slot] == ref.generation
                ):
                    # bump before freeing: any later duplicate release
                    # of this ref now mismatches, even after the slot
                    # has been handed to a new ref
                    self._generations[ref.slot] += 1
                    self._free.append(ref.slot)
            if _mapped:
                # the mapping count is per-view, not per-slot: drop it
                # even when the slot release itself was stale
                self._drop_view_safe(self._pool)
            return
        with self._lock:
            segment = self._dedicated.pop(ref.segment, None)
            if segment is not None:
                # Park before dropping the lock: a concurrent second
                # release (explicit release racing the view finalizer)
                # must find the segment in one of the two maps or its
                # view-drop is lost and the mapping leaks.
                self._lingering[ref.segment] = segment
            else:
                segment = self._lingering.get(ref.segment)
        if segment is None:
            return
        self._unlink(segment)
        if _mapped:
            self._drop_view_safe(segment)
        else:
            self._maybe_close(segment)
        with self._lock:
            if segment.closed or segment.views <= 0:
                self._lingering.pop(ref.segment, None)

    def _unlink(self, segment: _Segment) -> None:
        if segment.unlinked:
            return
        segment.unlinked = True
        try:
            segment.shm.unlink()
        except FileNotFoundError:
            pass

    def _maybe_close(self, segment: _Segment) -> None:
        with self._lock:
            close_now = (
                segment.views == 0 and segment.unlinked and not segment.closed
            )
            if close_now:
                segment.closed = True
        if close_now:
            self._close_segment(segment)

    # ------------------------------------------------------------------
    # lifecycle / stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "slot_bytes": self.slot_bytes,
                "slots": self.slots,
                "slots_free": len(self._free),
                "placements": self._placements,
                "overflows": self._overflows,
                "dedicated_live": len(self._dedicated),
            }

    def close(self) -> None:
        """Unlink every segment; unmap as the last views drain.

        After this call no ``/dev/shm`` entry created by the pool
        remains (unlink removes the name immediately), and each mapping
        is released the moment its outstanding-view count reaches zero
        — including client-held response arrays still alive, whose
        finalizers perform the deferred ``close()``.
        """
        if os.getpid() != self._owner_pid:
            return  # forked copy must not unlink the gateway's segments
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._free.clear()
            dedicated = list(self._dedicated.values())
            self._dedicated.clear()
            for segment in dedicated:
                if segment.views > 0:
                    self._lingering[segment.shm.name] = segment
        for segment in dedicated:
            self._unlink(segment)
            self._maybe_close(segment)
        self._unlink(self._pool)
        self._maybe_close(self._pool)

    def __enter__(self) -> "ShmVectorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SegmentCache:
    """Worker-side map of attached segments, keyed by name.

    The pooled segment is mapped once and kept for the worker's
    lifetime; dedicated (oversize) segments are mapped on demand and
    dropped with :meth:`forget` once their batch is served, so a
    long-lived worker's fd table does not grow with traffic.  All
    attachments go through :func:`attach_segment`, so none of them is
    ever registered with (or warned about by) the resource tracker.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}

    def view(self, ref: ShmRef) -> np.ndarray:
        """A numpy view of *ref*'s payload in this (attached) process."""
        shm = self._segments.get(ref.segment)
        if shm is None:
            shm = self._segments[ref.segment] = attach_segment(ref.segment)
        return np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=shm.buf,
            offset=ref.offset,
        )

    def forget(self, name: str) -> None:
        """Unmap one dedicated segment (views must be dropped first)."""
        shm = self._segments.pop(name, None)
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            self._segments[name] = shm  # views still alive: keep mapped
        except Exception:
            pass

    def close(self) -> None:
        for name in list(self._segments):
            self.forget(name)
