"""The distributed tier's worker process: one shard slice, one loop.

Each worker is a single-threaded interpreter that owns a disjoint slice
of the fingerprint space: the gateway routes every request for a given
matrix to the same worker, so the worker's private
:class:`~repro.service.cache.ShardedEngineCache` slice holds the only
live engine for each of its matrices and no cross-process cache
coherence is ever needed.

Bitwise-identity contract: the worker mirrors
:meth:`~repro.service.service.TuningService._serve` exactly — a batch
of plain single-vector requests is served as one stacked
``engine.execute`` call and fanned out through
:func:`~repro.service.coalesce.split_stacked`; anything else is served
solo.  The batched CSR kernel accumulates each output element in the
same order as the single-vector kernel, so distributed results are
bitwise-identical to single-process serve (and to serial dispatch) by
construction, not by tolerance.

Protocol (all control messages are small picklable tuples; vectors ride
shared memory, see :mod:`repro.distributed.shm`):

====================================  ================================
gateway -> worker                     worker -> gateway
====================================  ================================
``("matrix", fp, matrix, deltas,``    —  (state transfer; the delta
``served)``                           list replays acked mutations on
                                      respawn; ``served`` primes the
                                      serving decision first)
``("batch", id, fp, spec)``           ``("done", id, fp, metas, obs)``
``("update", id, fp, delta)``         ``("update_done", id, fp, meta)``
``("promote", id, tuner, info)``      ``("promoted", id)``
``("stats", id)``                     ``("stats_reply", id, snapshot)``
``("shutdown",)``                     —
—                                     ``("ready", index, backends)``
—                                     ``("heartbeat", n, snapshot)``
—                                     ``("error", id, kind, text)``
====================================  ================================

A batch ``spec`` dict carries only shared-memory references and scalar
metadata: ``x`` (operand :class:`~repro.distributed.shm.ShmRef` —
``(ncols, k)`` for a stacked batch), ``out`` (response ref the worker
writes into), ``reps`` (per-request repetitions), ``stacked`` (bool).
The worker answers every message even when serving fails — an
``("error", ...)`` reply carries the exception text so the gateway can
fail exactly the affected futures instead of the whole worker.

Observability rides the existing messages instead of adding new ones:
every reply meta carries the worker-side span ``stages`` (``shm_attach``
/ ``kernel`` / ``shm_write``), which the gateway merges into the
request's span under its original trace ID, and every stats/heartbeat
snapshot is stamped with ``captured_monotonic`` so the gateway can tell
a stale busy-worker snapshot from a live one.

Heartbeats are emitted by a dedicated daemon thread, not the serve
loop, so a worker busy on one long operation (a large batch, a shadow
profile, a respawned worker replaying a long delta log — none of which
reply until done) keeps beating and is never mistaken for hung and
killed mid-work.  The beat thread shares the control pipe with the
serve loop through a lock (``Connection.send`` is not thread-safe).

Heartbeats double as accounting transport: every beat carries the
worker's most recent stats snapshot (refreshed by the serve loop after
every served message and while idle), so when a worker dies the
gateway folds the *last heartbeat's* snapshot into its retired totals
— at most the accounting tail since the last refresh is lost, and no
request accounting is (requests on a dead worker are retried and
recounted on the respawn).
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.formats.base import FORMAT_IDS
from repro.kernels import available_backends, probe_backends
from repro.obs.metrics import Histogram
from repro.runtime.engine import WorkloadEngine
from repro.runtime.registry import REGISTRY
from repro.service.cache import ShardedEngineCache
from repro.service.coalesce import split_stacked
from repro.distributed.shm import SegmentCache, ShmRef

__all__ = ["WorkerConfig", "worker_main"]


@dataclass
class WorkerConfig:
    """Everything one worker process needs to build its serving slice.

    With the ``fork`` start method the config (tuner and execution-space
    objects included) is inherited by copy-on-write; nothing here needs
    to be picklable unless the platform forces ``spawn``.
    """

    index: int
    space: object
    tuner: object = None
    model_info: Dict[str, object] = field(default_factory=dict)
    capacity: int = 16
    shards: int = 4
    accelerate: bool = True
    kernel_backend: Optional[str] = None
    shadow_every: int = 0
    redecision: object = None
    heartbeat_interval: float = 0.25
    #: kernel triples to compile at boot, before "ready" is sent — a
    #: respawned worker pays JIT warm-up here, not inside a request
    warm_ops: tuple = ("spmv",)


class _WorkerState:
    """Mutable serving state of one worker incarnation."""

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.deployed = (config.tuner, dict(config.model_info))
        self.engines = ShardedEngineCache(
            self._make_engine,
            capacity=max(1, config.capacity),
            shards=max(1, config.shards),
            on_evict=self._retire_engine,
            # mutated stream content lives only in its engine; evicting
            # one would silently lose acknowledged updates (the gateway
            # delta log replays only on respawn, not on cache misses)
            pinned=lambda _key, engine: engine.has_mutated_streams(),
        )
        self.segments = SegmentCache()
        self.matrices: Dict[str, object] = {}
        self.shadow_counts: Dict[str, int] = {}
        self.shadow_probes = 0
        self.requests_served = 0
        self.updates_served = 0
        self.batches = 0
        # worker-side service-time buckets: shipped raw in every
        # heartbeat snapshot so the gateway derives fleet p50/p99 from
        # merged buckets (repro.obs.metrics.merge_histogram_dumps), not
        # from per-worker summary statistics
        self.latency = Histogram("worker_latency")
        from repro.service.accounting import empty_engine_totals

        self.retired = empty_engine_totals()

    def _make_engine(self) -> WorkloadEngine:
        tuner, info = self.deployed
        config = self.config
        engine = WorkloadEngine(
            config.space,
            tuner=tuner,
            accelerate=config.accelerate,
            redecision=config.redecision,
            kernel_backend=config.kernel_backend,
        )
        engine.model_version = str(info.get("version", "-"))
        return engine

    def _retire_engine(self, key: str, engine: WorkloadEngine) -> None:
        from repro.service.accounting import fold_engine_stats

        self.shadow_counts.pop(key, None)
        fold_engine_stats(self.retired, engine.stats())

    # ------------------------------------------------------------------
    # serving (mirrors TuningService._serve / _serve_update)
    # ------------------------------------------------------------------
    def serve_batch(self, fp: str, spec: Dict[str, object]):
        """Serve one batch spec; returns ``(metas, observations)``.

        Outputs are written straight into the response ref — the reply
        message carries accounting metadata only.  Each meta includes
        the worker-side span stage timings (``shm_attach`` /
        ``kernel`` / ``shm_write``), which the gateway merges into the
        request's span under its original trace ID — one span covering
        both sides of the process boundary.
        """
        matrix = self.matrices[fp]
        x_ref: ShmRef = spec["x"]
        out_ref: ShmRef = spec["out"]
        reps: List[int] = list(spec["reps"])
        stacked: bool = bool(spec["stacked"])
        attach_start = time.perf_counter()
        X = self.segments.view(x_ref)
        out = self.segments.view(out_ref)
        attach_seconds = time.perf_counter() - attach_start
        collect = bool(spec.get("telemetry", True))
        with self.engines.lease(fp) as engine:
            model_version = engine.model_version
            epoch = engine.epoch_of(fp)
            kernel_start = time.perf_counter()
            if stacked:
                n = X.shape[1]
                block = engine.execute(matrix, X, key=fp)
                write_start = time.perf_counter()
                out[...] = block.y
                write_done = time.perf_counter()
                results = split_stacked(block, n)
            else:
                n = 1
                result = engine.execute(
                    matrix, X, key=fp, repetitions=reps[0]
                )
                write_start = time.perf_counter()
                out[...] = result.y
                write_done = time.perf_counter()
                results = [result]
            features = shadow = None
            if collect:
                features = engine.features_for(matrix, key=fp)
            if self.config.shadow_every > 0:
                count = self.shadow_counts.get(fp, 0)
                self.shadow_counts[fp] = count + 1
                if count % self.config.shadow_every == 0:
                    shadow = engine.profile_formats(matrix, key=fp)
                    self.shadow_probes += 1
        del X, out  # release the shm views before forgetting segments
        for ref in (x_ref, out_ref):
            if ref.slot is None:
                self.segments.forget(ref.segment)
        self.requests_served += n
        self.batches += 1
        # every member of the batch experienced the batch's worker-side
        # wall time, so each contributes one observation of it
        batch_seconds = write_done - attach_start
        for _ in range(n):
            self.latency.observe(batch_seconds)
        # one shared stage dict per batch: the whole batch rode one
        # kernel launch, so its members share the worker-side timings
        stages = {
            "shm_attach": attach_seconds,
            "kernel": write_start - kernel_start,
            "shm_write": write_done - write_start,
        }
        metas = [
            {
                "seconds": r.seconds,
                "overhead_seconds": r.overhead_seconds,
                "format": r.format,
                "fingerprint": r.fingerprint,
                "from_cache": r.from_cache,
                "model_version": model_version,
                "epoch": epoch,
                "backend": r.backend,
                "stages": stages,
            }
            for r in results
        ]
        observations = (
            [
                {
                    "fingerprint": fp,
                    "format": r.format,
                    "backend": r.backend,
                    "seconds": r.seconds,
                    "batch_size": n,
                    "model_version": model_version,
                    "epoch": epoch,
                    "features": features,
                    "shadow_times": shadow if i == 0 else None,
                }
                for i, r in enumerate(results)
            ]
            if collect
            else []
        )
        return metas, observations

    def serve_update(self, fp: str, delta) -> Dict[str, object]:
        """Apply one mutation under the shard lock; returns its meta."""
        matrix = self.matrices[fp]
        kernel_start = time.perf_counter()
        with self.engines.lease(fp) as engine:
            # recorded alongside the acked delta: a respawn replaying
            # the log must re-derive the decision before this delta iff
            # one existed now, or the rebuilt drift anchors diverge
            had_decision = engine.has_decision(fp)
            upd = engine.update(fp, delta, matrix=matrix)
        kernel_seconds = time.perf_counter() - kernel_start
        self.requests_served += 1
        self.updates_served += 1
        self.batches += 1
        self.latency.observe(kernel_seconds)
        return {
            "epoch": upd.epoch,
            "carried_forward": upd.carried_forward,
            "retuned": upd.retuned,
            "format": upd.format,
            "drift": upd.drift,
            "nnz": upd.nnz,
            "had_decision": had_decision,
            "stages": {"kernel": kernel_seconds},
        }

    def install_matrix(self, fp: str, matrix, deltas, served=False) -> None:
        """Adopt one matrix, replaying its acked mutation log in order.

        On a fresh worker the log is empty; on a respawn it rebuilds the
        exact epoch the dead worker had acknowledged — each delta is a
        deterministic transformation, so the rebuilt matrix state and
        its epoch stamps reproduce bitwise.  ``served`` means the dead
        worker acknowledged at least one SpMV for this fingerprint, so a
        serving decision existed there; log entries additionally carry
        the ``had_decision`` flag the dead worker observed when it
        applied each delta.  Either way the decision is re-derived (it
        is deterministic) before the affected updates replay, so the
        stream's drift anchors rebuild exactly — without this, the
        replayed (or resent) updates take the no-decision early path and
        the next live update computes drift against the wrong anchor.
        The replay runs with ``replay=True`` so the rebuilt engine does
        not count the applications again: the dead incarnation already
        counted them, and its last-heartbeat snapshot folded them into
        the gateway's retired totals — recounting would make fleet
        ``stats()`` diverge from single-process accounting after every
        respawn.
        """
        self.matrices[fp] = matrix
        for delta, had_decision in deltas:
            with self.engines.lease(fp) as engine:
                if had_decision:
                    engine.prime_decision(fp, matrix=matrix)
                engine.update(fp, delta, matrix=matrix, replay=True)
        if served:
            # An SpMV acked between two logged deltas is already primed
            # at the right point by the later delta's flag; priming here
            # covers an SpMV acked after the last logged delta (or with
            # an empty log), from the same stream content it saw live.
            with self.engines.lease(fp) as engine:
                engine.prime_decision(fp, matrix=matrix)

    def promote(self, tuner, info: Dict[str, object]) -> None:
        """Adopt a promoted model for current and future engines."""
        self.deployed = (tuner, dict(info))
        version = str(info.get("version", "-"))
        self.engines.apply(
            lambda _key, engine: engine.set_tuner(tuner, version=version)
        )

    def snapshot(self) -> Dict[str, object]:
        """Accounting snapshot shipped with heartbeats and stats replies."""
        from repro.service.accounting import (
            empty_engine_totals,
            fold_engine_stats,
        )

        engines_total = empty_engine_totals()
        fold_engine_stats(engines_total, self.retired)
        profiled = set()
        for engine in self.engines.values():
            fold_engine_stats(engines_total, engine.stats())
            profiled.update(engine.profile_snapshot())
        return {
            "profiled_matrices": len(profiled),
            "index": self.config.index,
            "requests_served": self.requests_served,
            "updates_served": self.updates_served,
            "batches": self.batches,
            "shadow_probes": self.shadow_probes,
            "matrices": len(self.matrices),
            "engines": engines_total,
            "engine_cache": self.engines.stats(),
            # raw log-bucket counts, not summary stats: the gateway
            # merges these across workers (and dead incarnations), so
            # fleet quantiles are bucket-exact
            "latency": self.latency.dump(),
            # CLOCK_MONOTONIC is machine-wide on Linux, so the gateway
            # can age this snapshot against its own clock: a stale
            # (busy-worker) heartbeat snapshot is distinguishable from
            # a fresh stats reply
            "captured_monotonic": time.monotonic(),
        }


def _boot_warmup(config: WorkerConfig) -> Dict[str, float]:
    """Per-process backend probe + kernel warm-up; returns warm seconds.

    Compiled backends (numba JIT, native loads) are per-process state:
    a forked or respawned worker starts cold, so the full
    format x backend surface of each configured operation is compiled
    here, before the worker reports ready, keeping JIT pauses out of
    served requests.
    """
    probe_backends()
    warm: Dict[str, float] = {}
    for backend in available_backends():
        for op in config.warm_ops:
            for fmt in FORMAT_IDS:
                seconds = REGISTRY.warmup(op, fmt, backend)
                if seconds:
                    warm[f"{op}/{fmt}/{backend}"] = seconds
    return warm


class _PipeSender:
    """Lock-serialised sender for the worker's control pipe.

    ``Connection.send`` is not thread-safe; the serve loop (replies)
    and the heartbeat thread (beats) share the pipe through this lock.
    Reading stays lock-free — only the serve loop ever receives.
    """

    def __init__(self, conn) -> None:
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, message) -> None:
        with self._lock:
            self._conn.send(message)


def _heartbeat_loop(sender, snapshot_box, interval: float, stop) -> None:
    """Beat every *interval* seconds until *stop* is set or the pipe dies.

    Runs in its own daemon thread so liveness is decoupled from the
    serve loop: a worker busy on one long operation (which replies only
    when done, or — for a respawn's matrix install — not at all) keeps
    beating instead of going heartbeat-stale and being killed mid-work,
    which would respawn it into replaying the same long work forever.
    Each beat ships the latest snapshot the serve loop published.
    """
    beat = 0
    while not stop.wait(interval):
        beat += 1
        try:
            sender.send(("heartbeat", beat, snapshot_box["snapshot"]))
        except (OSError, ValueError, BrokenPipeError):
            return  # pipe gone: the gateway is tearing us down


def worker_main(config: WorkerConfig, conn) -> None:
    """Entry point of one worker process; loops until shutdown.

    *conn* is the worker end of the duplex control pipe.  The loop
    serves queued messages and refreshes the accounting snapshot the
    heartbeat thread ships (after every served message, and on every
    ``config.heartbeat_interval`` poll timeout while idle).
    """
    state = _WorkerState(config)
    warm = _boot_warmup(config)
    sender = _PipeSender(conn)
    snapshot_box = {"snapshot": state.snapshot()}
    stop_beating = threading.Event()
    beat_thread = threading.Thread(
        target=_heartbeat_loop,
        args=(
            sender,
            snapshot_box,
            config.heartbeat_interval,
            stop_beating,
        ),
        name=f"repro-worker-{config.index}-heartbeat",
        daemon=True,
    )
    try:
        sender.send(
            ("ready", config.index, {
                "backends": list(available_backends()),
                "warm_seconds": warm,
            })
        )
        beat_thread.start()
        while True:
            if not conn.poll(config.heartbeat_interval):
                snapshot_box["snapshot"] = state.snapshot()
                continue
            message = conn.recv()
            kind = message[0]
            if kind == "shutdown":
                break
            if kind == "matrix":
                _, fp, matrix, deltas, served = message
                state.install_matrix(fp, matrix, deltas, served=served)
            elif kind == "batch":
                _, batch_id, fp, spec = message
                try:
                    metas, obs = state.serve_batch(fp, spec)
                except Exception as exc:
                    sender.send(
                        ("error", batch_id, "batch",
                         f"{exc!r}\n{traceback.format_exc()}")
                    )
                else:
                    sender.send(("done", batch_id, fp, metas, obs))
            elif kind == "update":
                _, update_id, fp, delta = message
                try:
                    meta = state.serve_update(fp, delta)
                except Exception as exc:
                    sender.send(
                        ("error", update_id, "update",
                         f"{exc!r}\n{traceback.format_exc()}")
                    )
                else:
                    sender.send(("update_done", update_id, fp, meta))
            elif kind == "promote":
                _, promote_id, tuner, info = message
                state.promote(tuner, info)
                sender.send(("promoted", promote_id))
            elif kind == "stats":
                _, req_id = message
                sender.send(("stats_reply", req_id, state.snapshot()))
            # unknown kinds are ignored: a newer gateway may speak a
            # superset of this protocol
            snapshot_box["snapshot"] = state.snapshot()
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass  # gateway went away: nothing left to serve
    finally:
        stop_beating.set()
        state.segments.close()
        try:
            conn.close()
        except Exception:
            pass
