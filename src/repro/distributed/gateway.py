"""The distributed tier's front end: validate, coalesce, route, survive.

:class:`DistributedService` is API-compatible with the in-process
:class:`~repro.service.service.TuningService` (``submit`` /
``submit_update`` / ``spmv`` / ``update`` / ``session`` / ``stats`` /
``promote_model`` / ``set_observer`` / ``close``), so sessions, the
replay driver, and the adaptive controller work against either tier
unchanged.  Behind the API:

* requests are validated in the caller's thread and coalesced per
  fingerprint through the same :mod:`repro.service.coalesce` machinery
  the in-process service uses;
* each fingerprint is **owned** by exactly one worker process —
  ``worker_of(fp)`` is the same stable blake2b hash the engine cache
  shards by — so one worker holds the only live engine for a matrix and
  barrier semantics reduce to FIFO order on that worker's control pipe;
* vectors cross the process boundary through a
  :class:`~repro.distributed.shm.ShmVectorPool` (zero-copy views, slot
  recycling); only control tuples are pickled;
* workers are supervised (:mod:`repro.distributed.supervisor`): a dead
  worker's last-heartbeat accounting is folded into the gateway totals
  exactly as cache eviction folds an evicted engine, its shard slice is
  respawned and re-warmed, its matrices are re-shipped with their acked
  mutation logs replayed, and its in-flight requests are re-sent in
  submission order — zero requests lost, other workers undisturbed.

Exactly-once mutation semantics on the death path: the gateway's
per-fingerprint delta log contains only **acknowledged** updates.  A
respawned worker rebuilds matrix state by replaying that log, so
re-sending an unacknowledged in-flight update applies it exactly once
on the rebuilt state; SpMV re-sends are idempotent by nature.  Rebuilt
epoch stamps reproduce exactly because every delta application is
deterministic.  Delivery itself is also exactly-once per incarnation:
each in-flight entry records the incarnation it was last sent to, so a
sender that parked on a death gate while the respawn replay re-sent
the backlog cannot deliver its message a second time when the gate
reopens.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.formats.delta import MatrixDelta
from repro.formats.dynamic import DynamicMatrix
from repro.obs import Observability
from repro.obs.metrics import merge_histogram_dumps
from repro.obs.spans import merge_worker_stages
from repro.obs.views import build_service_stats
from repro.runtime.engine import request_key, validate_operand
from repro.service.accounting import (
    empty_engine_totals,
    merge_engine_totals,
)
from repro.service.cache import _stable_hash
from repro.service.coalesce import FingerprintQueues, PendingRequest
from repro.service.service import (
    ServiceResult,
    Session,
    TuningService,
    UpdateResult,
)
from repro.distributed.shm import ShmVectorPool
from repro.distributed.supervisor import Supervisor
from repro.distributed.worker import WorkerConfig
from repro.utils.concurrency import default_process_workers

__all__ = ["DistributedService"]


class _Inflight:
    """One message awaiting a worker reply (and its resend material)."""

    __slots__ = (
        "msg_id",
        "kind",
        "worker",
        "fp",
        "batch",
        "x_ref",
        "out_ref",
        "message",
        "event",
        "reply",
        "sent_to",
        "dispatched_at",
        "deliveries",
        "shm_put_seconds",
    )

    def __init__(
        self,
        msg_id: int,
        kind: str,
        worker: int,
        *,
        fp: Optional[str] = None,
        batch: Optional[List[PendingRequest]] = None,
        x_ref=None,
        out_ref=None,
        message=None,
    ) -> None:
        self.msg_id = msg_id
        self.kind = kind
        self.worker = worker
        self.fp = fp
        self.batch = batch
        self.x_ref = x_ref
        self.out_ref = out_ref
        self.message = message
        self.event = threading.Event()
        self.reply = None
        #: Worker incarnation this entry was last delivered to, or
        #: ``None`` before the first successful send.  Sends dedupe on
        #: it: the respawn replay and a sender that was parked on the
        #: death gate both target the same replacement incarnation, and
        #: only one of them may actually deliver.
        self.sent_to: Optional[int] = None
        #: Span material: perf_counter stamp taken when the entry left
        #: the dispatch path (after shm placement), seconds spent
        #: copying operands into shared memory, and how many successful
        #: deliveries the entry took (``deliveries - 1`` = retries
        #: caused by worker deaths — the respawn replay re-sends under
        #: the same trace IDs).
        self.dispatched_at: Optional[float] = None
        self.deliveries = 0
        self.shm_put_seconds = 0.0


class DistributedService:
    """Multi-process serving gateway; a drop-in ``TuningService`` twin.

    Parameters mirror :class:`~repro.service.service.TuningService`
    (``capacity`` is the *fleet-wide* engine budget, sliced evenly
    across workers), plus:

    workers:
        Number of worker processes.  ``None`` derives from the host's
        core count (:func:`repro.utils.concurrency
        .default_process_workers`).
    shm_slot_bytes / shm_slots:
        Geometry of the shared-memory vector pool; payloads that do not
        fit fall back to dedicated segments (see
        ``stats()["distributed"]["shm"]``).
    heartbeat_interval / heartbeat_timeout:
        Worker beat cadence and the staleness bound after which a
        silent worker is declared hung and killed.
    """

    def __init__(
        self,
        space,
        tuner=None,
        *,
        workers: Optional[int] = None,
        capacity: int = 64,
        shards: int = 8,
        max_batch: int = 32,
        accelerate: bool = True,
        kernel_backend: Optional[str] = None,
        shadow_every: int = 0,
        redecision=None,
        shm_slot_bytes: int = 1 << 18,
        shm_slots: int = 128,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 10.0,
        observability: bool = True,
    ) -> None:
        if workers is None:
            workers = default_process_workers()
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        self.space = space
        self.tuner = tuner
        self.workers = int(workers)
        self.capacity = int(capacity)
        self.shards = int(shards)
        self.max_batch = int(max_batch)
        self.accelerate = accelerate
        self.kernel_backend = kernel_backend
        self.shadow_every = int(shadow_every)
        self.redecision = redecision
        self.heartbeat_interval = float(heartbeat_interval)
        self.model_info: Dict[str, object] = {
            "version": "-",
            "source": "",
            "algorithm": type(tuner).__name__ if tuner is not None else "",
            "promoted_at": None,
        }
        self._deployed = (tuner, self.model_info)
        self._closed = False
        self._observer = None
        self._kill_listener = None
        # request plumbing
        self._pending = FingerprintQueues()
        self._msg_ids = itertools.count(1)
        self._inflight: Dict[int, _Inflight] = {}
        self._inflight_lock = threading.Lock()
        self._inflight_drained = threading.Condition(self._inflight_lock)
        self._matrices: Dict[str, object] = {}
        # acked (delta, had_decision-at-apply) pairs per fingerprint
        self._delta_log: Dict[str, List[Tuple[MatrixDelta, bool]]] = {}
        # fingerprints with at least one acked SpMV: serving derives a
        # tuner decision, so a respawn must re-derive it too
        self._served: set = set()
        self._matrix_synced: Dict[str, int] = {}
        self._state_lock = threading.Lock()
        # per-worker send serialisation + death gates (closed while a
        # dead worker's replacement is being replayed)
        self._worker_locks = [threading.Lock() for _ in range(self.workers)]
        self._worker_gates = [threading.Event() for _ in range(self.workers)]
        for gate in self._worker_gates:
            gate.set()
        # observability: request-path counters and the latency histogram
        # live in the registry (the stats() view renders from them);
        # _metrics_lock now guards only the dispatch counter and the
        # retired-worker accounting folds
        self.obs = Observability(tier="distributed", enabled=observability)
        self.obs.registry.register_collector(self._collect_gauges)
        labels = {"tier": self.obs.tier}
        self._retried_requests = self.obs.registry.counter(
            "retried_requests", labels=labels,
            help="Requests re-sent to a respawned worker after a death",
        )
        self._dead_workers = self.obs.registry.counter(
            "worker_deaths", labels=labels,
            help="Worker incarnations that died (crash, kill, hang)",
        )
        self._metrics_lock = threading.Lock()
        self._dispatching = 0
        self._retired_workers = empty_engine_totals()
        # merged latency buckets of dead worker incarnations (their
        # live buckets die with them; the last heartbeat's dump folds
        # in here so fleet quantiles keep covering every request ever
        # served)
        self._retired_worker_latency = merge_histogram_dumps(())
        self._retired_counters = {
            "requests_served": 0,
            "updates_served": 0,
            "batches": 0,
            "shadow_probes": 0,
            "profiled_matrices": 0,
            "engine_cache": {"hits": 0, "misses": 0, "evictions": 0},
        }
        # transport + fleet
        self.pool = ShmVectorPool(slot_bytes=shm_slot_bytes, slots=shm_slots)
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, self.workers),
            thread_name_prefix="repro-gateway",
        )
        self.supervisor = Supervisor(
            self._make_config,
            on_message=self._on_message,
            on_death=self._on_death,
            on_respawn=self._on_respawn,
            heartbeat_timeout=heartbeat_timeout,
        )
        self.supervisor.start(self.workers)

    # ------------------------------------------------------------------
    # fleet construction
    # ------------------------------------------------------------------
    def _make_config(self, index: int) -> WorkerConfig:
        """Build one worker's config; reads the *current* deployed model,
        so a respawned worker boots straight onto the promoted tuner."""
        tuner, info = self._deployed
        slice_capacity = max(1, self.capacity // self.workers)
        return WorkerConfig(
            index=index,
            space=self.space,
            tuner=tuner,
            model_info=dict(info),
            capacity=slice_capacity,
            shards=max(1, min(self.shards, slice_capacity)),
            accelerate=self.accelerate,
            kernel_backend=self.kernel_backend,
            shadow_every=self.shadow_every,
            redecision=self.redecision,
            heartbeat_interval=self.heartbeat_interval,
        )

    from_model_database = classmethod(
        TuningService.from_model_database.__func__
    )

    def worker_of(self, fp: str) -> int:
        """The worker that owns *fp* — same stable hash the cache shards
        by, so routing is reproducible across runs and processes."""
        return _stable_hash(fp) % self.workers

    # ------------------------------------------------------------------
    # read-compat counter views (the instruments are the truth)
    # ------------------------------------------------------------------
    @property
    def requests_submitted(self) -> int:
        return self.obs.requests_submitted.value

    @property
    def requests_served(self) -> int:
        return self.obs.requests_served.value

    @property
    def updates_served(self) -> int:
        return self.obs.updates_served.value

    @property
    def batches(self) -> int:
        return self.obs.batches.value

    @property
    def coalesced_batches(self) -> int:
        return self.obs.coalesced_batches.value

    @property
    def coalesced_requests(self) -> int:
        return self.obs.coalesced_requests.value

    @property
    def promotions(self) -> int:
        return self.obs.promotions.value

    @property
    def latency_total(self) -> float:
        return self.obs.latency.sum

    @property
    def latency_max(self) -> float:
        return self.obs.latency.max_value

    @property
    def retried_requests(self) -> int:
        return self._retried_requests.value

    @property
    def dead_workers(self) -> int:
        return self._dead_workers.value

    # ------------------------------------------------------------------
    # request path (mirrors TuningService submission semantics)
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        repetitions: int = 1,
    ) -> "Future[ServiceResult]":
        """Enqueue one request; returns a future resolving to its result."""
        if self._closed:
            raise ValidationError("service is closed")
        submitted_at = time.perf_counter()
        operand = validate_operand(matrix, x)
        fp = key if key is not None else request_key(matrix)
        self._remember_matrix(fp, matrix)
        future: "Future[ServiceResult]" = Future()
        request = PendingRequest(
            matrix,
            operand,
            int(repetitions),
            future,
            trace_id=self.obs.mint(),
            validate_seconds=time.perf_counter() - submitted_at,
        )
        self._enqueue(fp, request)
        return future

    def submit_update(
        self,
        matrix,
        delta: MatrixDelta,
        *,
        key: Optional[str] = None,
    ) -> "Future[UpdateResult]":
        """Enqueue a mutation; a barrier on its fingerprint's queue."""
        if self._closed:
            raise ValidationError("service is closed")
        submitted_at = time.perf_counter()
        if not isinstance(delta, MatrixDelta):
            raise ValidationError(
                f"update needs a MatrixDelta, got {type(delta).__name__}"
            )
        concrete = (
            matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        )
        delta.check_bounds(concrete.nrows, concrete.ncols)
        fp = key if key is not None else request_key(matrix)
        self._remember_matrix(fp, matrix)
        future: "Future[UpdateResult]" = Future()
        request = PendingRequest(
            matrix,
            None,
            1,
            future,
            kind="update",
            delta=delta,
            trace_id=self.obs.mint(),
            validate_seconds=time.perf_counter() - submitted_at,
        )
        self._enqueue(fp, request)
        return future

    def spmv(
        self,
        matrix,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        repetitions: int = 1,
    ) -> ServiceResult:
        """Blocking convenience wrapper: submit and wait for the result."""
        return self.submit(matrix, x, key=key, repetitions=repetitions).result()

    def update(
        self,
        matrix,
        delta: MatrixDelta,
        *,
        key: Optional[str] = None,
    ) -> UpdateResult:
        """Blocking convenience wrapper around :meth:`submit_update`."""
        return self.submit_update(matrix, delta, key=key).result()

    def session(self, name: str = "") -> Session:
        """A new client :class:`~repro.service.service.Session`."""
        return Session(self, name=name)

    def _remember_matrix(self, fp: str, matrix) -> None:
        """Pin the matrix object a fingerprint is replayed from.

        Only the *first* sighting is kept: the worker-side engine owns
        the matrix's evolution (the delta log replays on top of this
        base object), so a later submission's object must not replace
        the epoch-0 base.
        """
        with self._state_lock:
            self._matrices.setdefault(fp, matrix)

    def _enqueue(self, fp: str, request: PendingRequest) -> None:
        schedule = self._pending.push(fp, request)
        self.obs.requests_submitted.inc()
        if schedule:
            self._schedule(fp)

    def _schedule(self, fp: str) -> None:
        try:
            self._executor.submit(self._drain, fp)
        except RuntimeError:  # executor shut down mid-close
            self._drain(fp)

    def _drain(self, fp: str) -> None:
        """Dispatch the fingerprint's next batch; keep the drain alive.

        Unlike the in-process service the drain does not wait for
        serving: batches pipeline into the owning worker's pipe (which
        preserves barrier order), and the reply path resolves futures.
        """
        with self._metrics_lock:
            self._dispatching += 1  # close(wait=True) waits this out
        try:
            batch = self._pending.take_batch(
                fp, self.max_batch, stackable_only=True
            )
            if batch:
                try:
                    if batch[0].kind == "update":
                        self._dispatch_update(fp, batch[0])
                    else:
                        self._dispatch_batch(fp, batch)
                except BaseException as exc:
                    for request in batch:
                        if not request.future.done():
                            request.future.set_exception(exc)
        finally:
            with self._metrics_lock:
                self._dispatching -= 1
        if self._pending.finish(fp):
            self._schedule(fp)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch_batch(self, fp: str, batch: List[PendingRequest]) -> None:
        worker = self.worker_of(fp)
        matrix = batch[0].matrix
        concrete = (
            matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        )
        nrows, ncols = concrete.nrows, concrete.ncols
        stacked = len(batch) > 1  # take_batch(stackable_only) guarantees
        shm_start = time.perf_counter()
        if stacked:  # every member is a plain 1-D rep-1 request
            x_ref = self.pool.reserve((ncols, len(batch)), np.float64)
            view = self.pool.view(x_ref)
            for j, request in enumerate(batch):
                view[:, j] = request.operand
            del view
            out_ref = self.pool.reserve((nrows, len(batch)), np.float64)
            reps = [1] * len(batch)
        else:
            operand = batch[0].operand
            x_ref = self.pool.place(operand)
            out_shape = (
                (nrows,) if operand.ndim == 1 else (nrows, operand.shape[1])
            )
            out_ref = self.pool.reserve(out_shape, np.float64)
            reps = [batch[0].repetitions]
        spec = {
            "x": x_ref,
            "out": out_ref,
            "reps": reps,
            "stacked": stacked,
            "telemetry": self._observer is not None,
        }
        msg_id = next(self._msg_ids)
        entry = _Inflight(
            msg_id,
            "batch",
            worker,
            fp=fp,
            batch=batch,
            x_ref=x_ref,
            out_ref=out_ref,
            message=("batch", msg_id, fp, spec),
        )
        entry.dispatched_at = time.perf_counter()
        entry.shm_put_seconds = entry.dispatched_at - shm_start
        self._register_and_send(entry)

    def _dispatch_update(self, fp: str, request: PendingRequest) -> None:
        worker = self.worker_of(fp)
        msg_id = next(self._msg_ids)
        entry = _Inflight(
            msg_id,
            "update",
            worker,
            fp=fp,
            batch=[request],
            message=("update", msg_id, fp, request.delta),
        )
        entry.dispatched_at = time.perf_counter()
        self._register_and_send(entry)

    def _register_and_send(self, entry: _Inflight) -> None:
        with self._inflight_lock:
            self._inflight[entry.msg_id] = entry
        self._send_entry(entry)

    def _send_entry(self, entry: _Inflight) -> None:
        """Ship one inflight message, syncing matrix state first.

        The worker's gate is closed between a death and the completed
        replay of its replacement, so new sends can never overtake the
        re-sent backlog; the per-worker lock serialises the
        matrix-sync + send pair against concurrent drains.  A send that
        fails (worker just died) is deliberately left inflight — the
        respawn path re-sends it.
        """
        gate = self._worker_gates[entry.worker]
        if not gate.wait(timeout=60.0) and not self._closed:
            return  # respawn is wedged; the entry stays queued for it
        with self._worker_locks[entry.worker]:
            if not gate.is_set():
                # The worker died after we passed the gate.  The entry
                # was registered inflight before the death was handled,
                # so the respawn replay owns it now — sending here too
                # would deliver it twice to the replacement.
                return
            self._send_entry_locked(entry)

    def _send_entry_locked(self, entry: _Inflight) -> None:
        """Deliver *entry* to its worker's current incarnation, once.

        ``sent_to`` makes the delivery exactly-once per incarnation: a
        sender that registered its entry and then parked on the death
        gate wakes *after* the respawn replay already re-sent the whole
        backlog to the replacement — without the dedupe it would send
        the same message a second time (double-applying an update's
        delta, or re-serving a batch whose shm slots the first ``done``
        reply already recycled).  A failed send leaves ``sent_to``
        untouched, so the next respawn's replay still re-delivers.
        """
        incarnation = self.supervisor.handle(entry.worker).incarnation
        if entry.sent_to == incarnation:
            return  # already delivered to this incarnation
        if entry.fp is not None:
            self._sync_matrix(entry.worker, entry.fp, incarnation)
        if self.supervisor.send(
            entry.worker, entry.message, expect=incarnation
        ):
            entry.sent_to = incarnation
            entry.deliveries += 1

    def _sync_matrix(self, worker: int, fp: str, incarnation: int) -> None:
        """Ship matrix + acked delta log once per worker incarnation.

        ``incarnation`` pins both the dedupe check and the send to the
        incarnation the caller is about to address, so a replacement
        spawned mid-send can never be skipped (it would miss the
        matrix) or half-served (matrix delivered to one incarnation,
        the batch to the next).
        """
        with self._state_lock:
            if self._matrix_synced.get(fp) == incarnation:
                return
            matrix = self._matrices.get(fp)
            deltas = list(self._delta_log.get(fp, ()))
            served = fp in self._served
        if matrix is None:
            return
        if self.supervisor.send(
            worker, ("matrix", fp, matrix, deltas, served), expect=incarnation
        ):
            with self._state_lock:
                self._matrix_synced[fp] = incarnation

    # ------------------------------------------------------------------
    # worker replies
    # ------------------------------------------------------------------
    def _on_message(self, index: int, incarnation: int, message) -> None:
        kind = message[0]
        if kind == "done":
            self._on_done(message)
        elif kind == "update_done":
            self._on_update_done(message)
        elif kind == "error":
            self._on_error(message)
        elif kind in ("promoted", "stats_reply"):
            msg_id = message[1]
            entry = self._take_inflight(msg_id)
            if entry is not None:
                entry.reply = message[2] if len(message) > 2 else None
                entry.event.set()
        # "ready" needs no action here: supervisor tracks readiness and
        # the respawn path owns state replay

    def _take_inflight(self, msg_id: int) -> Optional[_Inflight]:
        with self._inflight_lock:
            entry = self._inflight.pop(msg_id, None)
            if entry is not None and not self._inflight:
                self._inflight_drained.notify_all()
            return entry

    def _on_done(self, message) -> None:
        _, msg_id, fp, metas, observations = message
        entry = self._take_inflight(msg_id)
        if entry is None:
            return  # duplicate reply after a resend race
        batch = entry.batch
        with self._state_lock:
            # an acked SpMV means the worker holds a serving decision
            # for this fingerprint — a respawn must re-derive it or its
            # next update anchors drift differently than the dead
            # worker's would have
            self._served.add(fp)
        base = self.pool.view(entry.out_ref, release_with_view=True)
        self.pool.release(entry.x_ref)
        done_at = time.perf_counter()
        latencies = [done_at - r.enqueued_at for r in batch]
        o = self.obs
        o.requests_served.inc(len(batch))
        o.batches.inc()
        if len(batch) > 1:
            o.coalesced_batches.inc()
            o.coalesced_requests.inc(len(batch))
        for latency in latencies:
            o.latency.observe(latency)
        stacked = len(batch) > 1
        for j, (request, meta, latency) in enumerate(
            zip(batch, metas, latencies)
        ):
            y = base[:, j] if stacked else base
            if not request.future.done():
                request.future.set_result(
                    ServiceResult(
                        y=y,
                        seconds=meta["seconds"],
                        overhead_seconds=meta["overhead_seconds"],
                        format=meta["format"],
                        fingerprint=meta["fingerprint"],
                        from_cache=meta["from_cache"],
                        batch_size=len(batch),
                        latency_seconds=latency,
                        model_version=meta["model_version"],
                        epoch=meta["epoch"],
                        backend=meta["backend"],
                        trace_id=request.trace_id,
                    )
                )
        observer_start = time.perf_counter()
        if observations:
            for obs, latency in zip(observations, latencies):
                obs["latency_seconds"] = latency
            self._notify(observations, fp=fp, batch_size=len(batch))
        if o.enabled:
            # one span per request, all sharing the batch's RPC stages;
            # the worker-side timings arrive in each reply meta and are
            # merged under the trace ID minted at submit()
            observer_seconds = time.perf_counter() - observer_start
            dispatched = entry.dispatched_at or done_at
            for request, meta in zip(batch, metas):
                stages = {
                    "validate": request.validate_seconds,
                    "queue": (
                        dispatched
                        - entry.shm_put_seconds
                        - request.enqueued_at
                    ),
                    "shm_put": entry.shm_put_seconds,
                    "rpc": done_at - dispatched,
                    "observer": observer_seconds,
                }
                merge_worker_stages(stages, meta.get("stages"))
                o.span(
                    request.trace_id,
                    kind="spmv",
                    fingerprint=fp,
                    batch_size=len(batch),
                    backend=meta["backend"],
                    worker=entry.worker,
                    retries=max(0, entry.deliveries - 1),
                    stages=stages,
                )

    def _on_update_done(self, message) -> None:
        _, msg_id, fp, meta = message
        entry = self._take_inflight(msg_id)
        if entry is None:
            return
        request = entry.batch[0]
        with self._state_lock:
            # the log holds *acknowledged* deltas only: replay on a
            # respawn rebuilds exactly the state this worker confirmed.
            # had_decision rides along so the replay re-derives the
            # serving decision before deltas that were applied under one
            self._delta_log.setdefault(fp, []).append(
                (request.delta, bool(meta.get("had_decision", False)))
            )
        done_at = time.perf_counter()
        latency = done_at - request.enqueued_at
        o = self.obs
        o.requests_served.inc()
        o.updates_served.inc()
        o.batches.inc()
        o.latency.observe(latency)
        if not request.future.done():
            request.future.set_result(
                UpdateResult(
                    fingerprint=fp,
                    epoch=meta["epoch"],
                    carried_forward=meta["carried_forward"],
                    retuned=meta["retuned"],
                    format=meta["format"],
                    drift=meta["drift"],
                    nnz=meta["nnz"],
                    latency_seconds=latency,
                    trace_id=request.trace_id,
                )
            )
        observer_start = time.perf_counter()
        if self._observer is not None:
            self._notify(
                [
                    {
                        "kind": "update",
                        "fingerprint": fp,
                        "epoch": meta["epoch"],
                        "stat_drift": meta["drift"],
                        "retuned": meta["retuned"],
                        "carried_forward": meta["carried_forward"],
                        "nnz": meta["nnz"],
                        "latency_seconds": latency,
                    }
                ],
                fp=fp,
                batch_size=1,
            )
        if o.enabled:
            dispatched = entry.dispatched_at or done_at
            stages = {
                "validate": request.validate_seconds,
                "queue": dispatched - request.enqueued_at,
                "rpc": done_at - dispatched,
                "observer": time.perf_counter() - observer_start,
            }
            merge_worker_stages(stages, meta.get("stages"))
            o.span(
                request.trace_id,
                kind="update",
                fingerprint=fp,
                batch_size=1,
                epoch=meta["epoch"],
                retuned=meta["retuned"],
                worker=entry.worker,
                retries=max(0, entry.deliveries - 1),
                stages=stages,
            )

    def _on_error(self, message) -> None:
        _, msg_id, kind, text = message
        entry = self._take_inflight(msg_id)
        if entry is None:
            return
        if entry.x_ref is not None:
            self.pool.release(entry.x_ref)
        if entry.out_ref is not None:
            self.pool.release(entry.out_ref)
        self.obs.event(
            "serve_error",
            error=str(kind),
            message=str(text)[:200],
            fingerprint=entry.fp,
            batch_size=len(entry.batch or ()),
            worker=entry.worker,
        )
        exc = RuntimeError(f"worker {kind} failed: {text}")
        for request in entry.batch or ():
            if not request.future.done():
                request.future.set_exception(exc)

    def _notify(
        self,
        observations: List[dict],
        *,
        fp: Optional[str] = None,
        batch_size: int = 0,
    ) -> None:
        observer = self._observer
        if observer is None or not observations:
            return
        try:
            observer(observations)
        except Exception as exc:
            self.obs.observer_errors.inc()
            self.obs.event(
                "observer_error",
                error=type(exc).__name__,
                message=str(exc)[:200],
                fingerprint=fp,
                batch_size=batch_size,
                observations=len(observations),
            )

    # ------------------------------------------------------------------
    # death + recovery
    # ------------------------------------------------------------------
    def _on_death(self, index: int, snapshot: Dict[str, object]) -> None:
        """Fold the dead incarnation's accounting; close its gate."""
        self._worker_gates[index].clear()
        self._dead_workers.inc()
        self.obs.event(
            "worker_death",
            worker=int(index),
            had_snapshot=bool(snapshot),
            requests_served=int(snapshot.get("requests_served", 0))
            if snapshot
            else 0,
        )
        with self._metrics_lock:
            if snapshot:
                merge_engine_totals(
                    self._retired_workers, snapshot.get("engines", {}) or
                    empty_engine_totals()
                )
                self._retired_worker_latency = merge_histogram_dumps(
                    (
                        self._retired_worker_latency,
                        snapshot.get("latency") or {},
                    )
                )
                folded = self._retired_counters
                for name in (
                    "requests_served",
                    "updates_served",
                    "batches",
                    "shadow_probes",
                    "profiled_matrices",
                ):
                    folded[name] += int(snapshot.get(name, 0))
                cache = snapshot.get("engine_cache") or {}
                for name in ("hits", "misses", "evictions"):
                    folded["engine_cache"][name] += int(cache.get(name, 0))
        # fail any stats poll aimed at the dead incarnation
        with self._inflight_lock:
            stale = [
                e
                for e in self._inflight.values()
                if e.worker == index and e.kind == "stats"
            ]
        for entry in stale:
            entry.reply = None
            entry.event.set()
            self._take_inflight(entry.msg_id)

    def _on_respawn(self, index: int) -> None:
        """Replay the dead worker's backlog, then reopen its gate.

        Pending batches and updates re-send in original submission
        order (message ids are monotonic); each fingerprint's matrix is
        re-shipped with its acked delta log first, so the replacement
        rebuilds the exact acknowledged state before any retried
        request touches it.
        """
        with self._inflight_lock:
            backlog = sorted(
                (
                    e
                    for e in self._inflight.values()
                    if e.worker == index and e.kind != "stats"
                ),
                key=lambda e: e.msg_id,
            )
        with self._worker_locks[index]:
            for entry in backlog:
                self._send_entry_locked(entry)
        retried = sum(len(e.batch or ()) for e in backlog)
        if retried:
            self._retried_requests.inc(retried)
        self.obs.event(
            "worker_respawn", worker=int(index), retried_requests=retried
        )
        self._worker_gates[index].set()

    def kill_worker(self, index: int) -> Optional[int]:
        """Failure-injection hook: SIGKILL one worker (tests, drills).

        A registered kill listener (:meth:`set_kill_listener`) is told
        about every injected kill — how trace capture records fault
        drills as replayable events.  Listener errors are swallowed:
        observation must not break the drill.
        """
        pid = self.supervisor.kill(index)
        listener = self._kill_listener
        if listener is not None:
            try:
                listener(int(index), pid)
            except Exception:
                pass
        return pid

    def set_kill_listener(self, listener) -> None:
        """Install (or clear, with ``None``) the injected-kill listener.

        Called as ``listener(index, pid)`` after each
        :meth:`kill_worker`; the trace recorder uses this to capture
        kill events alongside the requests they interleave with.
        """
        self._kill_listener = listener

    # ------------------------------------------------------------------
    # model management
    # ------------------------------------------------------------------
    def set_observer(self, observer) -> None:
        """Install (or clear) the telemetry observer.

        Observations arrive from worker processes with the same schema
        the in-process service emits (features and shadow timings
        included), with wall latency filled in by the gateway.
        """
        self._observer = observer

    def set_model_info(
        self, *, version: str, source: str = "", algorithm: str = ""
    ) -> None:
        """Stamp the currently deployed tuner's provenance (no swap)."""
        info: Dict[str, object] = {
            "version": str(version),
            "source": source,
            "algorithm": algorithm or type(self.tuner).__name__,
            "promoted_at": None,
        }
        self._broadcast_model(self.tuner, info)

    def promote_model(
        self, tuner, *, version: str, source: str = "", algorithm: str = ""
    ) -> Dict[str, object]:
        """Hot-swap the serving model fleet-wide; returns the info block.

        The promotion is broadcast to every worker and applied there
        under each engine-cache shard lock (same atomicity contract as
        the in-process service); a worker that dies mid-broadcast
        respawns onto the new model anyway, because respawned configs
        read the already-updated deployed pair.
        """
        info: Dict[str, object] = {
            "version": str(version),
            "source": source,
            "algorithm": algorithm or type(tuner).__name__,
            "promoted_at": time.time(),
        }
        self._broadcast_model(tuner, info)
        self.obs.promotions.inc()
        self.obs.event(
            "model_promoted",
            version=info["version"],
            algorithm=info["algorithm"],
        )
        return dict(info)

    def _broadcast_model(
        self, tuner, info: Dict[str, object], *, timeout: float = 30.0
    ) -> None:
        # publish first: respawns during the broadcast boot onto the
        # new pair already
        self._deployed = (tuner, info)
        self.tuner = tuner
        self.model_info = info
        entries = []
        for index in range(self.workers):
            msg_id = next(self._msg_ids)
            entry = _Inflight(
                msg_id,
                "promote",
                index,
                message=("promote", msg_id, tuner, dict(info)),
            )
            with self._inflight_lock:
                self._inflight[msg_id] = entry
            entries.append(entry)
            self._send_entry(entry)
        deadline = time.monotonic() + timeout
        for entry in entries:
            entry.event.wait(max(0.0, deadline - time.monotonic()))

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def _poll_workers(self, *, timeout: float = 5.0):
        """Round-trip a stats request to every live worker.

        Falls back to the last heartbeat snapshot for workers that are
        down or slow — stats() degrades, it never blocks serving.
        """
        entries = []
        for index in range(self.workers):
            msg_id = next(self._msg_ids)
            entry = _Inflight(
                msg_id, "stats", index, message=("stats", msg_id)
            )
            with self._inflight_lock:
                self._inflight[msg_id] = entry
            entries.append(entry)
            if not self.supervisor.send(index, entry.message):
                entry.event.set()
                self._take_inflight(msg_id)
        deadline = time.monotonic() + timeout
        snapshots = []
        for index, entry in enumerate(entries):
            entry.event.wait(max(0.0, deadline - time.monotonic()))
            self._take_inflight(entry.msg_id)
            snapshot = entry.reply
            if not snapshot:
                snapshot = dict(
                    self.supervisor.handle(index).last_snapshot
                )
            snapshots.append(snapshot)
        return snapshots

    def _aggregate_snapshots(self, snapshots) -> Dict[str, object]:
        """Fold worker snapshots + retired accounting into fleet totals.

        Shared by :meth:`stats` (which polls live workers) and the
        metrics collector (which reads last-heartbeat snapshots so a
        registry dump never does IPC).
        """
        with self._metrics_lock:
            engines_total = empty_engine_totals()
            merge_engine_totals(engines_total, self._retired_workers)
            latency_dumps = [dict(self._retired_worker_latency)]
            shadow_probes = self._retired_counters["shadow_probes"]
            profiled = self._retired_counters["profiled_matrices"]
            cache_total = {
                "capacity": 0,
                "shards": 0,
                "size": 0,
                "shard_sizes": [],
                "hits": self._retired_counters["engine_cache"]["hits"],
                "misses": self._retired_counters["engine_cache"]["misses"],
                "hit_rate": 0.0,
                "evictions": (
                    self._retired_counters["engine_cache"]["evictions"]
                ),
            }
        for worker_snapshot in snapshots:
            if not worker_snapshot:
                continue
            merge_engine_totals(
                engines_total,
                worker_snapshot.get("engines") or empty_engine_totals(),
            )
            shadow_probes += int(worker_snapshot.get("shadow_probes", 0))
            profiled += int(worker_snapshot.get("profiled_matrices", 0))
            latency_dumps.append(worker_snapshot.get("latency") or {})
            cache = worker_snapshot.get("engine_cache") or {}
            cache_total["capacity"] += int(cache.get("capacity", 0))
            cache_total["shards"] += int(cache.get("shards", 0))
            cache_total["size"] += int(cache.get("size", 0))
            cache_total["shard_sizes"].extend(cache.get("shard_sizes", ()))
            for name in ("hits", "misses", "evictions"):
                cache_total[name] += int(cache.get(name, 0))
        lookups = cache_total["hits"] + cache_total["misses"]
        cache_total["hit_rate"] = (
            cache_total["hits"] / lookups if lookups else 0.0
        )
        return {
            "engines": engines_total,
            "engine_cache": cache_total,
            "shadow_probes": shadow_probes,
            "profiled_matrices": profiled,
            "worker_latency": merge_histogram_dumps(latency_dumps),
        }

    def _snapshot_ages(self) -> List[Optional[float]]:
        """Per-worker heartbeat-snapshot age in seconds (None = never).

        Workers stamp snapshots with ``captured_monotonic``; on Linux
        ``CLOCK_MONOTONIC`` is machine-wide, so the gateway can age a
        worker-side stamp against its own clock.  The age tells a live
        snapshot from a stale one (a busy worker stops heartbeating, a
        dead worker's last snapshot freezes).
        """
        now = time.monotonic()
        ages: List[Optional[float]] = []
        for index in range(self.workers):
            snapshot = self.supervisor.handle(index).last_snapshot
            captured = (snapshot or {}).get("captured_monotonic")
            ages.append(
                max(0.0, now - float(captured))
                if captured is not None
                else None
            )
        return ages

    def _heartbeat_snapshots(self) -> List[Dict[str, object]]:
        return [
            dict(self.supervisor.handle(index).last_snapshot or {})
            for index in range(self.workers)
        ]

    def _collect_gauges(self, registry) -> None:
        """Dump-time collector: fleet gauges from heartbeat snapshots.

        Runs on registry dumps only (exposition, spiller ticks) and
        reads last-heartbeat state exclusively — a metrics scrape never
        round-trips to worker processes or touches the request path.
        """
        labels = {"tier": self.obs.tier}
        totals = self._aggregate_snapshots(self._heartbeat_snapshots())
        cache = totals["engine_cache"]
        registry.gauge("engine_cache_hits", labels=labels).set(cache["hits"])
        registry.gauge("engine_cache_misses", labels=labels).set(
            cache["misses"]
        )
        registry.gauge("engine_cache_evictions", labels=labels).set(
            cache["evictions"]
        )
        registry.gauge("engine_cache_size", labels=labels).set(cache["size"])
        registry.gauge("engine_cache_capacity", labels=labels).set(
            cache["capacity"]
        )
        engines = totals["engines"]
        registry.gauge("engine_requests", labels=labels).set(
            engines["requests_served"]
        )
        for backend, usage in engines["backends"].items():
            backend_labels = {"tier": self.obs.tier, "backend": backend}
            registry.gauge("backend_requests", labels=backend_labels).set(
                usage.get("requests", 0)
            )
            registry.gauge("backend_seconds", labels=backend_labels).set(
                usage.get("seconds", 0.0)
            )
        for reason, count in engines["invalidations"].items():
            registry.gauge(
                "invalidations",
                labels={"tier": self.obs.tier, "reason": reason},
            ).set(count)
        registry.gauge("profiled_matrices", labels=labels).set(
            totals["profiled_matrices"]
        )
        worker_latency = totals["worker_latency"]
        registry.gauge("worker_latency_requests", labels=labels).set(
            worker_latency["count"]
        )
        registry.gauge("worker_latency_p50_seconds", labels=labels).set(
            worker_latency["p50"]
        )
        registry.gauge("worker_latency_p99_seconds", labels=labels).set(
            worker_latency["p99"]
        )
        supervisor = self.supervisor.stats()
        registry.gauge("workers_alive", labels=labels).set(
            supervisor.get("alive", 0)
        )
        registry.gauge("worker_respawns", labels=labels).set(
            supervisor.get("respawns", 0)
        )
        for index, age in enumerate(self._snapshot_ages()):
            if age is not None:
                registry.gauge(
                    "worker_snapshot_age_seconds",
                    labels={"tier": self.obs.tier, "worker": str(index)},
                ).set(age)

    def stats(self) -> Dict[str, object]:
        """The :meth:`TuningService.stats` schema, fleet-aggregated.

        The common view is rendered by the same
        :func:`~repro.obs.views.build_service_stats` generator every
        tier uses (schema parity by construction — locked by the
        cross-tier suite in ``tests/obs/test_stats_parity.py``).
        ``engines`` folds live remote engines (polled from every
        worker), engines retired by worker-local cache eviction, and
        the last-heartbeat accounting of dead worker incarnations — the
        same every-engine-ever-owned contract as single-process mode.
        The extra ``distributed`` block carries fleet health:
        per-worker liveness, heartbeat-snapshot ages, respawn/retry
        counters, and shared-memory pool usage.
        """
        totals = self._aggregate_snapshots(self._poll_workers())
        snapshot = build_service_stats(
            self.obs,
            space=self.space.name,
            workers=self.workers,
            max_batch=self.max_batch,
            model_info=self.model_info,
            engines_total=totals["engines"],
            engine_cache=totals["engine_cache"],
            profiled_matrices=totals["profiled_matrices"],
            shadow_probes=totals["shadow_probes"],
        )
        snapshot["distributed"] = {
            "fingerprints": len(self._matrices),
            "retried_requests": self._retried_requests.value,
            "dead_workers": self._dead_workers.value,
            "supervisor": self.supervisor.stats(),
            "shm": self.pool.stats(),
            "worker_backends": [
                list(self.supervisor.handle(i).backends.get("backends", ()))
                for i in range(self.workers)
            ],
            "worker_snapshot_age_seconds": self._snapshot_ages(),
            # bucket-merged worker-side service-time distribution: the
            # fleet's p50/p99 as one histogram would have seen it
            "worker_latency": totals["worker_latency"],
        }
        return snapshot

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True, timeout: float = 60.0) -> None:
        """Stop accepting requests and tear the fleet down.

        With ``wait=True`` every already-submitted request is served
        first (queued drains run, in-flight replies are awaited).  The
        shared-memory pool is closed last: every segment is unlinked,
        and segments backing still-alive client result arrays unmap
        when those arrays are garbage collected.
        """
        if self._closed:
            return
        self._closed = True
        if wait:
            deadline = time.monotonic() + timeout
            # let queued drains dispatch...
            while time.monotonic() < deadline:
                with self._metrics_lock:
                    dispatching = self._dispatching
                if not len(self._pending) and not dispatching:
                    break
                time.sleep(0.01)
            # ...then wait for the workers' replies to land
            with self._inflight_drained:
                while (
                    any(
                        e.kind in ("batch", "update")
                        for e in self._inflight.values()
                    )
                    and time.monotonic() < deadline
                ):
                    self._inflight_drained.wait(0.1)
        else:
            for request in self._pending.pop_all():
                request.future.cancel()
            with self._inflight_lock:
                leftovers = list(self._inflight.values())
                self._inflight.clear()
            for entry in leftovers:
                for request in entry.batch or ():
                    request.future.cancel()
                entry.event.set()
        for gate in self._worker_gates:
            gate.set()  # unblock any sender wedged on a dead worker
        self._executor.shutdown(wait=wait)
        self.supervisor.shutdown()
        self.pool.close()

    def __enter__(self) -> "DistributedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
