"""Morpheus-Oracle: the auto-tuner for automatic format selection.

This is the paper's primary contribution (Sections III-VI): given a
:class:`~repro.formats.dynamic.DynamicMatrix`, an operation (SpMV) and a
target execution space, pick the storage format to switch to.

* :mod:`~repro.core.features` — the 10-feature extraction of Table I,
  computable online from any active format without conversion.
* :mod:`~repro.core.tuners` — Run-first, DecisionTree and RandomForest
  tuners (Section VI-A).
* :mod:`~repro.core.tune` — the ``TuneMultiply`` operation (Section VI-B).
* :mod:`~repro.core.model_io` — the Oracle model-file format.
* :mod:`~repro.core.pipeline` — the offline Sparse.Tree stage: profiling
  runs, training-set construction, grid-search tuning, model database.
"""

from repro.core.features import (
    FEATURE_NAMES,
    N_FEATURES,
    extract_features,
    extract_features_from_stats,
)
from repro.core.model_io import OracleModel, load_model, save_model
from repro.core.tuners import (
    ConfidenceFallbackTuner,
    DecisionTreeTuner,
    OverheadConsciousTuner,
    RandomForestTuner,
    RunFirstTuner,
    Tuner,
    TuningReport,
)
from repro.core.tune import TunedSpMVResult, tune_multiply
from repro.core.pipeline import (
    ModelDatabase,
    ProfilingResult,
    TrainedModel,
    build_dataset,
    profile_collection,
    train_tuned_model,
)

__all__ = [
    "FEATURE_NAMES",
    "N_FEATURES",
    "extract_features",
    "extract_features_from_stats",
    "OracleModel",
    "load_model",
    "save_model",
    "Tuner",
    "TuningReport",
    "RunFirstTuner",
    "DecisionTreeTuner",
    "RandomForestTuner",
    "ConfidenceFallbackTuner",
    "OverheadConsciousTuner",
    "TunedSpMVResult",
    "tune_multiply",
    "ModelDatabase",
    "ProfilingResult",
    "TrainedModel",
    "build_dataset",
    "profile_collection",
    "train_tuned_model",
]
