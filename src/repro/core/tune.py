"""``TuneMultiply``: tune the format, switch, run SpMV (Section VI-B).

The operation couples a tuner with a :class:`DynamicMatrix` and an
execution space: the tuner proposes a format id, the matrix switches to it,
and the SpMV runs.  The returned breakdown carries the quantities of the
paper's evaluation —

* Table IV's tuning cost ``T_tuning = (T_FE + T_PRED) / T_CSR``;
* Figure 5's end-to-end speedup
  ``T_CSR_total / (T_FE + T_PRED + T_OPT_total)`` (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.base import ExecutionSpace
from repro.core.tuners.base import Tuner, TuningReport
from repro.formats.dynamic import DynamicMatrix
from repro.machine.stats import MatrixStats

__all__ = ["TunedSpMVResult", "tune_multiply"]


@dataclass(frozen=True)
class TunedSpMVResult:
    """Outcome of a tuned multiply.

    Attributes
    ----------
    y:
        Numerical SpMV result (``None`` when ``x`` was not supplied).
    report:
        The tuner's decision and overhead breakdown.
    t_tuned_spmv:
        Modelled seconds for *repetitions* SpMVs in the selected format.
    t_csr_spmv:
        Modelled seconds for the same repetitions using baseline CSR.
    repetitions:
        Number of SpMV iterations the totals account for.
    """

    y: np.ndarray | None
    report: TuningReport
    t_tuned_spmv: float
    t_csr_spmv: float
    repetitions: int

    @property
    def tuning_cost_csr_equivalents(self) -> float:
        """Tuning overhead expressed in single CSR-SpMV units (Table IV)."""
        single_csr = self.t_csr_spmv / self.repetitions
        return self.report.overhead_seconds / single_csr if single_csr > 0 else 0.0

    @property
    def speedup_vs_csr(self) -> float:
        """Eq. 2: ``T_CSR / (T_FE + T_PRED + T_OPT)`` over all repetitions."""
        denom = self.report.overhead_seconds + self.t_tuned_spmv
        return self.t_csr_spmv / denom if denom > 0 else 0.0


def tune_multiply(
    matrix: DynamicMatrix,
    tuner: Tuner,
    space: ExecutionSpace,
    x: np.ndarray | None = None,
    *,
    repetitions: int = 1000,
    n_vectors: int = 1,
    stats: MatrixStats | None = None,
    matrix_key: str = "",
    switch: bool = True,
) -> TunedSpMVResult:
    """Tune *matrix* for SpMV/SpMM on *space*, optionally switch and run.

    Parameters
    ----------
    matrix:
        The dynamic matrix to tune (switched in place when ``switch``).
    tuner:
        Any :class:`~repro.core.tuners.base.Tuner`.
    x:
        Input vector — or an ``(ncols, n_vectors)`` block when tuning the
        SpMM operation; when given, the kernel actually executes and the
        numerical result is returned.
    repetitions:
        Operation iterations the timing totals account for (the paper
        uses 1000-repetition workloads).
    n_vectors:
        Right-hand sides per operation; ``> 1`` prices the SpMM operation
        (matrix traffic amortised per
        :func:`repro.spmv.spmm_time_factor`); the tuning decision itself
        is operation-agnostic (Section VI-B).
    stats, matrix_key:
        Optional precomputed statistics / deterministic-noise key.
    switch:
        When ``False`` the matrix is left in its current format (the
        timings still reflect the tuned format).
    """
    from repro.spmv.spmm import spmm, spmm_time_factor

    if stats is None:
        stats = MatrixStats.from_matrix(matrix.concrete)
    report = tuner.tune(matrix, space, stats=stats, matrix_key=matrix_key)
    factor = spmm_time_factor(n_vectors)
    t_tuned = repetitions * factor * space.time_spmv(
        stats, report.format_name, matrix_key=matrix_key
    )
    t_csr = repetitions * factor * space.time_spmv(
        stats, "CSR", matrix_key=matrix_key
    )
    y = None
    if switch:
        matrix.switch(report.format_name)
    if x is not None:
        operand = np.asarray(x, dtype=np.float64)
        y = spmm(matrix, operand) if operand.ndim == 2 else matrix.spmv(operand)
    return TunedSpMVResult(
        y=y,
        report=report,
        t_tuned_spmv=t_tuned,
        t_csr_spmv=t_csr,
        repetitions=repetitions,
    )
