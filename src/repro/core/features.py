"""The 10-feature extraction of the paper's Table I.

=========  =====================================================
Feature    Definition
=========  =====================================================
M          number of rows
N          number of columns
NNZ        number of non-zeros
NNZ_avg    NNZ / M            (average non-zeros per row)
rho        NNZ / (M * N)      (density)
max_nnz    max_i row_nnz_i
min_nnz    min_i row_nnz_i
std_nnz    sqrt(sum_i |row_nnz_i - NNZ_avg|^2 / M)
ND         number of diagonals with at least one non-zero
NTD        number of "true" diagonals (non-zeros >= threshold)
=========  =====================================================

Per Section VI-C, the online extractor computes these from the *active*
format's own arrays (``row_nnz`` / ``diagonal_nnz`` are implemented by every
container), so tuning never converts the matrix first.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix
from repro.formats.hdc import default_hdc_threshold
from repro.machine.stats import MatrixStats

__all__ = [
    "FEATURE_NAMES",
    "N_FEATURES",
    "extract_features",
    "extract_features_from_stats",
]

FEATURE_NAMES = (
    "M",
    "N",
    "NNZ",
    "NNZ_avg",
    "rho",
    "max_nnz",
    "min_nnz",
    "std_nnz",
    "ND",
    "NTD",
)

N_FEATURES = len(FEATURE_NAMES)

MatrixLike = Union[SparseMatrix, DynamicMatrix]


def extract_features(
    matrix: MatrixLike, *, true_diag_threshold: int | None = None
) -> np.ndarray:
    """Extract the Table-I feature vector from a matrix in any format.

    Parameters
    ----------
    matrix:
        A concrete container or a :class:`DynamicMatrix` (the active
        format's statistics routines are used directly).
    true_diag_threshold:
        Occupancy above which a diagonal counts as "true"; defaults to the
        HDC format's threshold so NTD matches what HDC would store.

    Returns
    -------
    numpy.ndarray
        Shape ``(10,)`` float64 vector ordered as :data:`FEATURE_NAMES`.
    """
    concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
    nrows = concrete.nrows
    ncols = concrete.ncols
    row_nnz = concrete.row_nnz()
    diag_nnz = concrete.diagonal_nnz()
    nnz = int(row_nnz.sum())
    if true_diag_threshold is None:
        true_diag_threshold = default_hdc_threshold(nrows, ncols)
    avg = nnz / nrows if nrows else 0.0
    density = nnz / (nrows * ncols) if nrows and ncols else 0.0
    return np.array(
        [
            float(nrows),
            float(ncols),
            float(nnz),
            avg,
            density,
            float(row_nnz.max()) if nrows else 0.0,
            float(row_nnz.min()) if nrows else 0.0,
            float(np.sqrt(np.mean((row_nnz - avg) ** 2))) if nrows else 0.0,
            float(diag_nnz.shape[0]),
            float((diag_nnz >= true_diag_threshold).sum()),
        ],
        dtype=np.float64,
    )


def extract_features_from_stats(stats: MatrixStats) -> np.ndarray:
    """Build the same feature vector from cached :class:`MatrixStats`.

    The offline pipeline profiles thousands of matrices; reusing the stats
    object avoids regenerating each matrix a second time.  Values are
    identical to :func:`extract_features` on the materialised matrix.
    """
    return np.array(
        [
            float(stats.nrows),
            float(stats.ncols),
            float(stats.nnz),
            stats.row_nnz_mean,
            stats.density,
            float(stats.row_nnz_max),
            float(stats.row_nnz_min),
            stats.row_nnz_std,
            float(stats.ndiags),
            float(stats.ntrue_diags),
        ],
        dtype=np.float64,
    )
