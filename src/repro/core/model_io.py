"""The Oracle model-file format.

Morpheus-Oracle loads tree models from plain text files at runtime
(Section III-B: "loads an ML model from a file specified at runtime").  The
format here is a line-oriented text serialisation:

.. code-block:: text

    # morpheus-oracle model v1
    kind random_forest
    system cirrus
    backend cuda
    n_features 10
    classes 0 1 2 3 4 5
    meta {"version": "v0002", "source": "<suite fingerprint>"}
    n_trees 40
    tree 0 <n_nodes>
    <feature> <threshold> <left> <right> <count_0> ... <count_k>
    ...

Feature lines use ``repr`` floats so round-trips are bit-exact.  The
``meta`` line is optional (written only when the model carries metadata,
so pre-existing files stay byte-identical) and holds a single JSON
object — the provenance the adaptive
:class:`~repro.adaptive.registry.ModelRegistry` stamps on every
published version.  The loader reconstructs an :class:`OracleModel`,
which both ML tuners consume.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, List, Union

import numpy as np

from repro.errors import ModelIOError
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree.classifier import DecisionTreeClassifier
from repro.ml.tree.structure import Tree

__all__ = ["OracleModel", "save_model", "load_model"]

PathLike = Union[str, os.PathLike]

_MAGIC = "# morpheus-oracle model v1"
_KINDS = ("decision_tree", "random_forest")


@dataclass
class OracleModel:
    """A deployable tree-ensemble model plus its provenance metadata.

    A single-tree model has ``kind == "decision_tree"``; ensembles vote by
    majority, mirroring Oracle's ``RandomForestTuner`` (Section VI-A).
    """

    kind: str
    trees: List[Tree]
    classes: np.ndarray
    n_features: int
    system: str = ""
    backend: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ModelIOError(f"unknown model kind {self.kind!r}")
        if not self.trees:
            raise ModelIOError("model must contain at least one tree")
        if self.kind == "decision_tree" and len(self.trees) != 1:
            raise ModelIOError(
                f"decision_tree models hold exactly one tree, got {len(self.trees)}"
            )

    # ------------------------------------------------------------------
    @property
    def n_estimators(self) -> int:
        return len(self.trees)

    @property
    def mean_depth(self) -> float:
        """Average tree depth (drives the modelled prediction cost)."""
        return float(np.mean([t.depth() for t in self.trees]))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote prediction in the original label space."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.n_features:
            raise ModelIOError(
                f"model expects {self.n_features} features, got {X.shape[1]}"
            )
        n_classes = self.classes.shape[0]
        votes = np.zeros((X.shape[0], n_classes), dtype=np.float64)
        for tree in self.trees:
            proba = tree.predict_proba(X)
            votes[np.arange(X.shape[0]), np.argmax(proba, axis=1)] += 1.0
        return self.classes[np.argmax(votes, axis=1)]

    def predict_one(self, x: np.ndarray) -> int:
        """Convenience: predict a single feature vector, returning an int."""
        return int(self.predict(np.asarray(x)[None, :])[0])

    # ------------------------------------------------------------------
    @classmethod
    def from_estimator(
        cls,
        estimator: Union[DecisionTreeClassifier, RandomForestClassifier],
        *,
        system: str = "",
        backend: str = "",
        metadata: dict | None = None,
    ) -> "OracleModel":
        """Extract a deployable model from a fitted classifier."""
        if isinstance(estimator, DecisionTreeClassifier):
            kind = "decision_tree"
            trees = [estimator.tree_]
        elif isinstance(estimator, RandomForestClassifier):
            kind = "random_forest"
            trees = [t.tree_ for t in estimator.estimators_]
        else:
            raise ModelIOError(
                f"cannot extract a model from {type(estimator).__name__}"
            )
        return cls(
            kind=kind,
            trees=trees,
            classes=np.asarray(estimator.classes_, dtype=np.int64),
            n_features=estimator.n_features_in_,
            system=system,
            backend=backend,
            metadata=dict(metadata or {}),
        )


# ----------------------------------------------------------------------
# text serialisation
# ----------------------------------------------------------------------

def save_model(path_or_file: PathLike | IO[str], model: OracleModel) -> None:
    """Write *model* in the Oracle text format."""
    if hasattr(path_or_file, "write"):
        _write(path_or_file, model)  # type: ignore[arg-type]
        return
    with open(path_or_file, "w", encoding="ascii") as fh:
        _write(fh, model)


def _write(fh: IO[str], model: OracleModel) -> None:
    fh.write(_MAGIC + "\n")
    fh.write(f"kind {model.kind}\n")
    fh.write(f"system {model.system or '-'}\n")
    fh.write(f"backend {model.backend or '-'}\n")
    fh.write(f"n_features {model.n_features}\n")
    fh.write("classes " + " ".join(str(int(c)) for c in model.classes) + "\n")
    if model.metadata:
        fh.write(
            "meta "
            + json.dumps(model.metadata, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
    fh.write(f"n_trees {len(model.trees)}\n")
    for t_idx, tree in enumerate(model.trees):
        fh.write(f"tree {t_idx} {tree.n_nodes}\n")
        for i in range(tree.n_nodes):
            counts = " ".join(repr(float(c)) for c in tree.counts[i])
            fh.write(
                f"{int(tree.feature[i])} {repr(float(tree.threshold[i]))} "
                f"{int(tree.left[i])} {int(tree.right[i])} {counts}\n"
            )


def load_model(path_or_file: PathLike | IO[str]) -> OracleModel:
    """Read a model written by :func:`save_model`."""
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)  # type: ignore[arg-type]
    with open(path_or_file, "r", encoding="ascii") as fh:
        return _read(fh)


def _expect(fh: IO[str], key: str) -> List[str]:
    line = fh.readline().strip()
    parts = line.split()
    if not parts or parts[0] != key:
        raise ModelIOError(f"expected {key!r} line, got {line!r}")
    return parts[1:]


def _read(fh: IO[str]) -> OracleModel:
    magic = fh.readline().rstrip("\n")
    if magic != _MAGIC:
        raise ModelIOError(f"bad magic line: {magic!r}")
    kind = _expect(fh, "kind")[0]
    system = _expect(fh, "system")[0]
    backend = _expect(fh, "backend")[0]
    n_features = int(_expect(fh, "n_features")[0])
    classes = np.asarray([int(t) for t in _expect(fh, "classes")], dtype=np.int64)
    # optional metadata line (absent in files written before it existed)
    line = fh.readline().strip()
    metadata: dict = {}
    if line.startswith("meta "):
        try:
            metadata = json.loads(line[len("meta "):])
        except json.JSONDecodeError as exc:
            raise ModelIOError(f"malformed meta line: {line!r}") from exc
        if not isinstance(metadata, dict):
            raise ModelIOError("meta line must hold a JSON object")
        line = fh.readline().strip()
    parts = line.split()
    if not parts or parts[0] != "n_trees":
        raise ModelIOError(f"expected 'n_trees' line, got {line!r}")
    n_trees = int(parts[1])
    trees: List[Tree] = []
    for t_idx in range(n_trees):
        header = _expect(fh, "tree")
        if int(header[0]) != t_idx:
            raise ModelIOError(
                f"tree index mismatch: expected {t_idx}, got {header[0]}"
            )
        n_nodes = int(header[1])
        feature = np.empty(n_nodes, dtype=np.int64)
        threshold = np.empty(n_nodes, dtype=np.float64)
        left = np.empty(n_nodes, dtype=np.int64)
        right = np.empty(n_nodes, dtype=np.int64)
        counts = np.empty((n_nodes, classes.shape[0]), dtype=np.float64)
        for i in range(n_nodes):
            parts = fh.readline().split()
            if len(parts) != 4 + classes.shape[0]:
                raise ModelIOError(
                    f"tree {t_idx} node {i}: expected "
                    f"{4 + classes.shape[0]} fields, got {len(parts)}"
                )
            feature[i] = int(parts[0])
            threshold[i] = float(parts[1])
            left[i] = int(parts[2])
            right[i] = int(parts[3])
            counts[i] = [float(v) for v in parts[4:]]
        trees.append(
            Tree(feature=feature, threshold=threshold, left=left, right=right, counts=counts)
        )
    return OracleModel(
        kind=kind,
        trees=trees,
        classes=classes,
        n_features=n_features,
        system="" if system == "-" else system,
        backend="" if backend == "-" else backend,
        metadata=metadata,
    )
