"""The offline Sparse.Tree stage (paper Section III-A, Figure 1).

Pipeline: **profiling runs** label every (matrix, system, backend) with its
optimal format → **feature extraction** turns matrices into Table-I vectors
→ **training + grid-search tuning** produces baseline and tuned classifiers
→ **model extraction** writes Oracle model files into a
:class:`ModelDatabase` for the online stage to load.

The stage implementations live in :mod:`repro.experiments.stages`
(config-driven, parallel, store-resumable); :func:`profile_collection` and
:func:`train_tuned_model` are kept as thin compatibility wrappers over
them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.backends.base import ExecutionSpace
from repro.core.features import extract_features_from_stats
from repro.core.model_io import OracleModel, load_model, save_model
from repro.datasets.collection import MatrixCollection, MatrixSpec
from repro.errors import TuningError, ValidationError
from repro.formats.base import FORMAT_IDS, FORMAT_NAMES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.store import ArtifactStore

__all__ = [
    "ProfilingResult",
    "profile_collection",
    "build_dataset",
    "TrainedModel",
    "train_tuned_model",
    "ModelDatabase",
    "DEFAULT_RF_GRID",
    "SMALL_RF_GRID",
    "DEFAULT_DT_GRID",
]

# ----------------------------------------------------------------------
# profiling runs
# ----------------------------------------------------------------------


@dataclass
class ProfilingResult:
    """Per-space SpMV timings and optimal-format labels.

    ``times[space_name][matrix_name][fmt]`` is the modelled seconds of one
    SpMV; ``optimal[space_name][matrix_name]`` is the winning format id.

    Backend-aware profiling runs (``profile_backends=True`` in
    :func:`repro.experiments.stages.run_profile_stage`) additionally fill
    ``backend_times[space][matrix][kernel_backend][fmt]`` — the full
    (format × kernel backend) surface — and
    ``optimal_backend[space][matrix]``, the kernel backend of the
    surface's argmin (whose format is then the ``optimal`` label).
    """

    times: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    optimal: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Per-kernel-backend timing surfaces (backend-aware runs only).
    backend_times: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = field(
        default_factory=dict
    )
    #: Winning kernel backend per (space, matrix) (backend-aware runs only).
    optimal_backend: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: True when restored from an artifact store rather than computed.
    from_store: bool = False

    def labels(self, space_name: str, names: Sequence[str]) -> np.ndarray:
        """Optimal-format ids for *names* on one space, in order."""
        table = self.optimal[space_name]
        return np.asarray([table[n] for n in names], dtype=np.int64)

    def backend_labels(self, space_name: str, names: Sequence[str]) -> List[str]:
        """Optimal kernel backends for *names* on one space, in order.

        Only available after a backend-aware profiling run; raises
        ``KeyError`` otherwise.
        """
        table = self.optimal_backend[space_name]
        return [table[n] for n in names]

    def dominant_backend(self, space_name: str) -> str:
        """The most frequently optimal kernel backend on one space.

        The natural ``metadata["kernel_backend"]`` stamp for a model
        trained from this profiling run (ties break alphabetically for
        determinism); ``"numpy"`` when the run was not backend-aware.
        """
        table = self.optimal_backend.get(space_name)
        if not table:
            return "numpy"
        counts: Dict[str, int] = {}
        for kb in table.values():
            counts[kb] = counts.get(kb, 0) + 1
        return min(counts, key=lambda kb: (-counts[kb], kb))

    def format_distribution(self, space_name: str) -> Dict[str, float]:
        """Fraction of matrices whose optimum is each format (Figure 2)."""
        table = self.optimal[space_name]
        counts = {fmt: 0 for fmt in FORMAT_IDS}
        for fid in table.values():
            counts[FORMAT_NAMES[fid]] += 1
        total = max(1, len(table))
        return {fmt: c / total for fmt, c in counts.items()}

    def speedup_vs_csr(self, space_name: str, *, omit_csr_optimal: bool = True) -> np.ndarray:
        """Per-matrix ``T_CSR / T_optimal`` (Figures 3 and 4)."""
        out = []
        for name, fmts in self.times[space_name].items():
            best_name = FORMAT_NAMES[self.optimal[space_name][name]]
            if omit_csr_optimal and best_name == "CSR":
                continue
            best_time = fmts[best_name]
            if best_time <= 0.0:
                raise TuningError(
                    f"degenerate profiling timing for {name!r} on "
                    f"{space_name}: best format {best_name} has modelled "
                    f"time {best_time!r}"
                )
            out.append(fmts["CSR"] / best_time)
        return np.asarray(out)


def profile_collection(
    collection: MatrixCollection,
    spaces: Sequence[ExecutionSpace],
    *,
    specs: Sequence[MatrixSpec] | None = None,
    jobs: int = 1,
    store: "ArtifactStore | None" = None,
    store_key: str | None = None,
) -> ProfilingResult:
    """Run the profiling stage: label the optimal format everywhere.

    Compatibility wrapper over
    :func:`repro.experiments.stages.run_profile_stage`: for every matrix
    and space the modelled runtime of one SpMV per format is recorded
    (dispatched through each space's cached
    :class:`~repro.runtime.engine.WorkloadEngine`) and the minimum
    designates the optimum.

    Each matrix's :class:`~repro.machine.stats.MatrixStats` is resolved
    once through the collection's stats cache and shared across all
    *spaces* (and later by :func:`build_dataset`), so a profiling run
    generates every matrix exactly once regardless of how many spaces or
    pipeline stages consume it.  ``jobs`` fans matrix generation across a
    worker pool; ``store``/``store_key`` make the stage resumable from an
    :class:`~repro.experiments.store.ArtifactStore`.
    """
    from repro.experiments.stages import run_profile_stage

    return run_profile_stage(
        collection, spaces, specs=specs, jobs=jobs, store=store, key=store_key
    )


def build_dataset(
    collection: MatrixCollection,
    specs: Sequence[MatrixSpec],
    profiling: ProfilingResult,
    space_name: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Assemble ``(X, y)``: Table-I features and optimal-format labels.

    Features come from the collection's cached stats, so a dataset built
    after :func:`profile_collection` performs zero matrix regeneration.
    """
    X = np.stack(
        [extract_features_from_stats(collection.stats(s)) for s in specs]
    )
    y = profiling.labels(space_name, [s.name for s in specs])
    return X, y


# ----------------------------------------------------------------------
# training + tuning
# ----------------------------------------------------------------------

#: Full grid in the spirit of Table III (large: use for overnight runs).
DEFAULT_RF_GRID: Mapping[str, Sequence[object]] = {
    "n_estimators": [20, 40, 60],
    "max_depth": [10, 14, 18, 22],
    "min_samples_leaf": [1, 2],
    "min_samples_split": [2, 10],
    "criterion": ["gini", "entropy"],
    "bootstrap": [True, False],
}

#: Reduced grid keeping every tuned axis but fewer levels (CI-friendly).
SMALL_RF_GRID: Mapping[str, Sequence[object]] = {
    "n_estimators": [20, 40],
    "max_depth": [12, 20],
    "min_samples_leaf": [1, 2],
    "criterion": ["gini", "entropy"],
}

#: Decision-tree grid (Section VII-D trains and tunes both algorithms).
DEFAULT_DT_GRID: Mapping[str, Sequence[object]] = {
    "max_depth": [8, 12, 16, 20, None],
    "min_samples_leaf": [1, 2, 5],
    "min_samples_split": [2, 5, 10],
    "criterion": ["gini", "entropy"],
}


@dataclass
class TrainedModel:
    """Baseline + grid-search-tuned classifier pair for one space.

    Mirrors one row of the paper's Table III: the baseline model uses the
    library-default hyperparameters, the tuned model the grid-search
    winner; both are scored on the held-out test set with accuracy and
    balanced accuracy.
    """

    algorithm: str
    system: str
    backend: str
    baseline: object
    tuned: object
    baseline_params: Dict[str, object]
    tuned_params: Dict[str, object]
    cv_best_score: float
    test_scores: Dict[str, float]

    @property
    def oracle_model(self) -> OracleModel:
        """Deployable tuned model for the online stage."""
        return OracleModel.from_estimator(
            self.tuned, system=self.system, backend=self.backend
        )

    @property
    def baseline_oracle_model(self) -> OracleModel:
        """Deployable baseline model (for overhead comparisons)."""
        return OracleModel.from_estimator(
            self.baseline, system=self.system, backend=self.backend
        )


def train_tuned_model(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    *,
    algorithm: str = "random_forest",
    grid: Mapping[str, Sequence[object]] | None = None,
    cv: int = 5,
    scoring: str = "accuracy",
    seed: int = 0,
    system: str = "",
    backend: str = "",
) -> TrainedModel:
    """Train the baseline, grid-search the tuned model, score both.

    Compatibility wrapper over
    :func:`repro.experiments.stages.train_model`.  Follows Section VII-D:
    5-fold CV grid search on the training split, refit on the full
    training set, report accuracy and balanced accuracy on the untouched
    test split.
    """
    from repro.experiments.stages import train_model

    return train_model(
        X_train,
        y_train,
        X_test,
        y_test,
        algorithm=algorithm,
        grid=grid,
        cv=cv,
        scoring=scoring,
        seed=seed,
        system=system,
        backend=backend,
    )


# ----------------------------------------------------------------------
# model database
# ----------------------------------------------------------------------


#: Separator between the system / backend / algorithm fields of a model
#: file name.  A double underscore cannot appear inside any field (enforced
#: by :meth:`ModelDatabase.path_for`), so splitting on it is unambiguous
#: even for names like ``open_mp`` or ``random_forest`` that contain ``_``.
_KEY_SEPARATOR = "__"


class ModelDatabase:
    """Directory of Oracle model files keyed by (system, backend, algorithm).

    The paper ships pre-trained models for its test systems; users point
    the online tuners at a database path and load by key.  Keys are encoded
    in the file name with a ``__`` field separator; legacy single-``_``
    files (which parse ambiguously when a field itself contains ``_``) are
    still listed by :meth:`available` on a best-effort basis.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, system: str, backend: str, algorithm: str) -> str:
        """Model-file path for a (system, backend, algorithm) key."""
        fields = (system.lower(), backend.lower(), algorithm)
        for name, value in zip(("system", "backend", "algorithm"), fields):
            if _KEY_SEPARATOR in value:
                raise ValidationError(
                    f"{name} {value!r} must not contain {_KEY_SEPARATOR!r} "
                    "(reserved as the model-file key separator)"
                )
            if not value:
                raise ValidationError(f"{name} must be non-empty")
        return os.path.join(self.root, _KEY_SEPARATOR.join(fields) + ".model")

    def save(self, model: OracleModel, *, algorithm: str | None = None) -> str:
        """Store *model*; returns the file path."""
        algo = algorithm or model.kind
        if not model.system or not model.backend:
            raise ValidationError(
                "OracleModel must carry system and backend metadata to be "
                "stored in a ModelDatabase"
            )
        path = self.path_for(model.system, model.backend, algo)
        save_model(path, model)
        return path

    def _legacy_path_for(self, system: str, backend: str, algorithm: str) -> str:
        """Pre-separator-fix file location (single ``_`` between fields)."""
        return os.path.join(
            self.root, f"{system.lower()}_{backend.lower()}_{algorithm}.model"
        )

    def load(self, system: str, backend: str, algorithm: str) -> OracleModel:
        """Load the model for a key; raises if absent.

        Falls back to the legacy single-``_`` file location so databases
        written before the separator fix keep loading.
        """
        path = self.path_for(system, backend, algorithm)
        if not os.path.exists(path):
            legacy = self._legacy_path_for(system, backend, algorithm)
            if os.path.exists(legacy):
                return load_model(legacy)
            raise TuningError(
                f"no model for ({system}, {backend}, {algorithm}) in "
                f"{self.root}"
            )
        return load_model(path)

    def available(self) -> List[Tuple[str, str, str]]:
        """All (system, backend, algorithm) keys present on disk.

        Files written by :meth:`path_for` split unambiguously on the
        ``__`` separator; older single-``_`` files fall back to the legacy
        parse (first two fields cannot contain ``_`` there).
        """
        out = []
        for fname in sorted(os.listdir(self.root)):
            if not fname.endswith(".model"):
                continue
            stem = fname[: -len(".model")]
            parts = stem.split(_KEY_SEPARATOR)
            if len(parts) == 3 and all(parts):
                out.append((parts[0], parts[1], parts[2]))
                continue
            # legacy layout: system_backend_algorithm with single "_"
            legacy = stem.split("_")
            if len(legacy) >= 3 and all(legacy):
                out.append((legacy[0], legacy[1], "_".join(legacy[2:])))
        return out
