"""Extension tuners beyond the paper's three (related-work variants).

* :class:`ConfidenceFallbackTuner` — SMAT-style (Li et al., PLDI'13, the
  paper's ref [13]): use the ML prediction when the ensemble's vote
  confidence clears a threshold, otherwise fall back to the accurate but
  expensive run-first tuner.
* :class:`OverheadConsciousTuner` — in the spirit of Zhao et al.
  (IPDPS'18, ref [27]): account for the format-*conversion* cost and the
  planned iteration count; only leave the current format when the
  predicted per-iteration gain amortises the switch.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ExecutionSpace
from repro.core.features import extract_features, extract_features_from_stats
from repro.core.tuners.base import (
    MatrixLike,
    Tuner,
    TuningReport,
    choose_kernel_backend,
)
from repro.core.tuners.ml import MLTuner, ModelLike, _coerce_model
from repro.core.tuners.run_first import RunFirstTuner
from repro.errors import TuningError
from repro.formats.base import FORMAT_IDS, format_name
from repro.formats.dynamic import DynamicMatrix
from repro.machine.stats import MatrixStats

__all__ = ["ConfidenceFallbackTuner", "OverheadConsciousTuner"]


class ConfidenceFallbackTuner(Tuner):
    """ML prediction with a run-first fallback below a confidence bar.

    Parameters
    ----------
    model:
        An ensemble model (forest) whose vote fractions act as the
        confidence signal.
    threshold:
        Minimum winning-vote fraction to accept the ML decision; below it
        the run-first tuner decides (and pays its cost).
    run_first:
        The fallback tuner (default: 10-repetition run-first).
    """

    def __init__(
        self,
        model: ModelLike,
        *,
        threshold: float = 0.6,
        run_first: RunFirstTuner | None = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise TuningError(f"threshold must be in (0, 1], got {threshold}")
        self.model = _coerce_model(model)
        self.threshold = threshold
        self.run_first = run_first if run_first is not None else RunFirstTuner()

    def _confidence(self, features: np.ndarray) -> tuple[int, float]:
        """(winning class id, winning vote fraction)."""
        votes = np.zeros(self.model.classes.shape[0])
        x = features[None, :]
        for tree in self.model.trees:
            proba = tree.predict_proba(x)
            votes[int(np.argmax(proba[0]))] += 1.0
        votes /= len(self.model.trees)
        best = int(np.argmax(votes))
        return int(self.model.classes[best]), float(votes[best])

    def tune(
        self,
        matrix: MatrixLike,
        space: ExecutionSpace,
        *,
        stats: MatrixStats | None = None,
        matrix_key: str = "",
    ) -> TuningReport:
        if stats is not None:
            features = extract_features_from_stats(stats)
        else:
            features = extract_features(matrix)
            stats = self._resolve_stats(matrix, None)
        fmt_id, confidence = self._confidence(features)
        t_fe = space.time_feature_extraction(stats)
        t_pred = space.time_prediction(
            n_estimators=self.model.n_estimators,
            avg_depth=self.model.mean_depth,
        )
        if confidence >= self.threshold:
            return TuningReport(
                format_id=fmt_id,
                t_feature_extraction=t_fe,
                t_prediction=t_pred,
                details={"confidence": confidence, "fallback": False},
                backend=choose_kernel_backend(
                    space, stats, format_name(fmt_id), matrix_key=matrix_key
                ),
            )
        # low confidence: pay the run-first price for a measured answer
        fallback = self.run_first.tune(
            matrix, space, stats=stats, matrix_key=matrix_key
        )
        return TuningReport(
            format_id=fallback.format_id,
            t_feature_extraction=t_fe,
            t_prediction=t_pred,
            t_profiling=fallback.t_profiling,
            details={
                "confidence": confidence,
                "fallback": True,
                "ml_choice": fmt_id,
            },
            backend=fallback.backend,
        )


class OverheadConsciousTuner(Tuner):
    """Conversion-aware wrapper: switch only when it amortises.

    Wraps an ML tuner; given the number of SpMV iterations the caller
    plans to run, the predicted format is adopted only if

    ``iterations * (T_active - T_predicted) > T_conversion``

    estimated with the space's cost model.  Otherwise the matrix stays in
    its active format (``format_id`` echoes the active format).
    """

    def __init__(self, inner: MLTuner, *, planned_iterations: int = 1000) -> None:
        if planned_iterations < 1:
            raise TuningError("planned_iterations must be >= 1")
        self.inner = inner
        self.planned_iterations = int(planned_iterations)

    def tune(
        self,
        matrix: MatrixLike,
        space: ExecutionSpace,
        *,
        stats: MatrixStats | None = None,
        matrix_key: str = "",
    ) -> TuningReport:
        stats = self._resolve_stats(matrix, stats)
        report = self.inner.tune(matrix, space, stats=stats, matrix_key=matrix_key)
        active = (
            matrix.active_format
            if isinstance(matrix, DynamicMatrix)
            else matrix.format
        )
        predicted = report.format_name
        if predicted == active:
            return report
        t_active = space.time_spmv(stats, active, matrix_key=matrix_key)
        t_pred_fmt = space.time_spmv(stats, predicted, matrix_key=matrix_key)
        t_convert = space.time_conversion(stats, active, predicted)
        gain = self.planned_iterations * (t_active - t_pred_fmt)
        if gain > t_convert:
            details = dict(report.details)
            details.update({"switched": True, "conversion_seconds": t_convert})
            return TuningReport(
                format_id=report.format_id,
                t_feature_extraction=report.t_feature_extraction,
                t_prediction=report.t_prediction,
                details=details,
                backend=report.backend,
            )
        details = dict(report.details)
        details.update(
            {
                "switched": False,
                "ml_choice": report.format_id,
                "conversion_seconds": t_convert,
                "predicted_gain_seconds": gain,
            }
        )
        return TuningReport(
            format_id=FORMAT_IDS[active],
            t_feature_extraction=report.t_feature_extraction,
            t_prediction=report.t_prediction,
            details=details,
            backend=choose_kernel_backend(
                space, stats, active, matrix_key=matrix_key
            ),
        )
