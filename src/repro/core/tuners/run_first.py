"""The run-first tuner: try every format, keep the fastest.

This is the paper's accuracy ceiling and cost anti-pattern (Section III):
it must convert the matrix to each candidate format and time N iterations
of the operation in each, so its overhead grows with the number of
supported formats — the expense that motivates the ML tuners.
"""

from __future__ import annotations

from typing import Sequence

from repro.backends.base import ExecutionSpace
from repro.core.tuners.base import MatrixLike, Tuner, TuningReport
from repro.errors import TuningError
from repro.formats.base import FORMAT_IDS, format_id
from repro.formats.dynamic import DynamicMatrix
from repro.kernels import check_kernel_backend
from repro.machine.stats import MatrixStats
from repro.utils.validation import check_positive

__all__ = ["RunFirstTuner"]


class RunFirstTuner(Tuner):
    """Measure-everything tuner.

    Parameters
    ----------
    repetitions:
        SpMV iterations timed per candidate format (the paper's
        ``N-iterations``).
    formats:
        Candidate pool; defaults to all six formats.
    backends:
        Kernel-backend candidate pool (:mod:`repro.kernels` names).
        ``None`` follows the space: a pinned space trials only its own
        backend (the historical behaviour), an ``"auto"`` space trials
        every candidate of
        :meth:`~repro.backends.base.ExecutionSpace.kernel_backend_candidates`.
        An explicit sequence trials exactly those backends, turning the
        decision into an argmin over the full format × backend grid —
        with each JIT backend's first-touch warm-up charged to the
        trial cost.
    """

    def __init__(
        self,
        repetitions: int = 10,
        formats: Sequence[str] | None = None,
        backends: Sequence[str] | None = None,
    ) -> None:
        check_positive(repetitions, name="repetitions")
        self.repetitions = int(repetitions)
        self.formats = (
            tuple(f.upper() for f in formats)
            if formats is not None
            else tuple(FORMAT_IDS)
        )
        for f in self.formats:
            format_id(f)  # validates
        if not self.formats:
            raise TuningError("run-first tuner needs at least one format")
        if backends is not None:
            self.backends = tuple(check_kernel_backend(b) for b in backends)
            if not self.backends:
                raise TuningError("run-first tuner needs at least one backend")
        else:
            self.backends = None

    def _candidate_backends(self, space: ExecutionSpace) -> Sequence[str]:
        if self.backends is not None:
            return self.backends
        if space.kernel_backend_spec == "auto":
            return space.kernel_backend_candidates()
        return (space.kernel_backend,)

    def tune(
        self,
        matrix: MatrixLike,
        space: ExecutionSpace,
        *,
        stats: MatrixStats | None = None,
        matrix_key: str = "",
    ) -> TuningReport:
        stats = self._resolve_stats(matrix, stats)
        active = (
            matrix.active_format
            if isinstance(matrix, DynamicMatrix)
            else matrix.format
        )
        backends = self._candidate_backends(space)
        trial_grid: dict[str, dict[str, float]] = {kb: {} for kb in backends}
        total_cost = 0.0
        for fmt in self.formats:
            t_convert = space.time_conversion(stats, active, fmt)
            total_cost += t_convert
            for kb in backends:
                t_iter = space.time_spmv(
                    stats, fmt, matrix_key=matrix_key, kernel_backend=kb
                )
                trial_grid[kb][fmt] = t_iter
                total_cost += (
                    self.repetitions * t_iter
                    + space.cost_model.kernel_warmup_time(kb)
                )
        best_fmt, best_kb = min(
            ((fmt, kb) for fmt in self.formats for kb in backends),
            key=lambda pair: trial_grid[pair[1]][pair[0]],
        )
        details: dict[str, object] = {
            "trial_times": trial_grid[backends[0]],
            "repetitions": self.repetitions,
        }
        if len(backends) > 1:
            details["trial_grid"] = trial_grid
            details["backends"] = tuple(backends)
        return TuningReport(
            format_id=FORMAT_IDS[best_fmt],
            t_profiling=total_cost,
            details=details,
            backend=best_kb,
        )
