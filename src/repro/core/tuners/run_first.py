"""The run-first tuner: try every format, keep the fastest.

This is the paper's accuracy ceiling and cost anti-pattern (Section III):
it must convert the matrix to each candidate format and time N iterations
of the operation in each, so its overhead grows with the number of
supported formats — the expense that motivates the ML tuners.
"""

from __future__ import annotations

from typing import Sequence

from repro.backends.base import ExecutionSpace
from repro.core.tuners.base import MatrixLike, Tuner, TuningReport
from repro.errors import TuningError
from repro.formats.base import FORMAT_IDS, format_id
from repro.formats.dynamic import DynamicMatrix
from repro.machine.stats import MatrixStats
from repro.utils.validation import check_positive

__all__ = ["RunFirstTuner"]


class RunFirstTuner(Tuner):
    """Measure-everything tuner.

    Parameters
    ----------
    repetitions:
        SpMV iterations timed per candidate format (the paper's
        ``N-iterations``).
    formats:
        Candidate pool; defaults to all six formats.
    """

    def __init__(
        self,
        repetitions: int = 10,
        formats: Sequence[str] | None = None,
    ) -> None:
        check_positive(repetitions, name="repetitions")
        self.repetitions = int(repetitions)
        self.formats = (
            tuple(f.upper() for f in formats)
            if formats is not None
            else tuple(FORMAT_IDS)
        )
        for f in self.formats:
            format_id(f)  # validates
        if not self.formats:
            raise TuningError("run-first tuner needs at least one format")

    def tune(
        self,
        matrix: MatrixLike,
        space: ExecutionSpace,
        *,
        stats: MatrixStats | None = None,
        matrix_key: str = "",
    ) -> TuningReport:
        stats = self._resolve_stats(matrix, stats)
        active = (
            matrix.active_format
            if isinstance(matrix, DynamicMatrix)
            else matrix.format
        )
        trial_times = {}
        total_cost = 0.0
        for fmt in self.formats:
            t_convert = space.time_conversion(stats, active, fmt)
            t_iter = space.time_spmv(stats, fmt, matrix_key=matrix_key)
            trial_times[fmt] = t_iter
            total_cost += t_convert + self.repetitions * t_iter
        best = min(trial_times, key=trial_times.get)  # type: ignore[arg-type]
        return TuningReport(
            format_id=FORMAT_IDS[best],
            t_profiling=total_cost,
            details={
                "trial_times": trial_times,
                "repetitions": self.repetitions,
            },
        )
