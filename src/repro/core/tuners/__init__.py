"""The three Oracle tuners (paper Section VI-A).

* :class:`RunFirstTuner` — converts to every candidate format, times
  N iterations of the operation each, picks the fastest.  Most accurate,
  most expensive.
* :class:`DecisionTreeTuner` — traverses a single loaded tree model.
* :class:`RandomForestTuner` — traverses an ensemble and majority-votes.
"""

from repro.core.tuners.base import Tuner, TuningReport
from repro.core.tuners.run_first import RunFirstTuner
from repro.core.tuners.ml import DecisionTreeTuner, MLTuner, RandomForestTuner
from repro.core.tuners.hybrid import ConfidenceFallbackTuner, OverheadConsciousTuner

__all__ = [
    "Tuner",
    "TuningReport",
    "RunFirstTuner",
    "MLTuner",
    "DecisionTreeTuner",
    "RandomForestTuner",
    "ConfidenceFallbackTuner",
    "OverheadConsciousTuner",
]
