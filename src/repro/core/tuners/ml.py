"""ML tuners: decision-tree and random-forest format prediction.

Both tuners load an :class:`~repro.core.model_io.OracleModel` (from a file
path, an open model object, or a fitted estimator), extract the Table-I
features from the live matrix *in its active format*, and traverse the
tree(s).  The random-forest tuner majority-votes across the ensemble
(Section VI-A).  Reported overheads:

* ``t_feature_extraction`` — the modelled device-side cost of the online
  statistics passes (Section VI-C);
* ``t_prediction`` — the modelled host-side tree traversal, proportional
  to ``n_estimators * mean_depth``.
"""

from __future__ import annotations

import os
from typing import Union

from repro.backends.base import ExecutionSpace
from repro.core.features import extract_features, extract_features_from_stats
from repro.core.model_io import OracleModel, load_model
from repro.core.tuners.base import (
    MatrixLike,
    Tuner,
    TuningReport,
    choose_kernel_backend,
)
from repro.errors import TuningError
from repro.formats.base import format_name
from repro.kernels import check_kernel_backend
from repro.machine.stats import MatrixStats
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree.classifier import DecisionTreeClassifier

__all__ = ["MLTuner", "DecisionTreeTuner", "RandomForestTuner"]

ModelLike = Union[OracleModel, str, os.PathLike, DecisionTreeClassifier, RandomForestClassifier]


def _coerce_model(model: ModelLike) -> OracleModel:
    if isinstance(model, OracleModel):
        return model
    if isinstance(model, (DecisionTreeClassifier, RandomForestClassifier)):
        return OracleModel.from_estimator(model)
    return load_model(model)


class MLTuner(Tuner):
    """Shared machinery of the two model-driven tuners.

    Parameters
    ----------
    model:
        The oracle model (path, open model, or fitted estimator).
    kernel_backend:
        Kernel-backend policy for the decisions: an explicit
        :mod:`repro.kernels` backend name pins every decision, ``"auto"``
        argmins the modelled per-backend time for the predicted format,
        ``None`` (default) defers — first to the model's own
        ``metadata["kernel_backend"]`` stamp (set by backend-aware
        training), then to the space's configured backend.
    """

    #: expected model kind; subclasses override ("decision_tree" / ...).
    expected_kind: str | None = None

    def __init__(
        self, model: ModelLike, *, kernel_backend: str | None = None
    ) -> None:
        self.model = _coerce_model(model)
        if kernel_backend is not None:
            kernel_backend = str(kernel_backend).strip().lower()
            if kernel_backend != "auto":
                kernel_backend = check_kernel_backend(kernel_backend)
        self.kernel_backend = kernel_backend
        if (
            self.expected_kind is not None
            and self.model.kind != self.expected_kind
        ):
            raise TuningError(
                f"{type(self).__name__} needs a {self.expected_kind!r} "
                f"model, got {self.model.kind!r}"
            )

    def _backend_request(self) -> str | None:
        """The explicit backend request, if any (tuner arg > model stamp)."""
        if self.kernel_backend is not None:
            return self.kernel_backend
        stamped = self.model.metadata.get("kernel_backend", "")
        return str(stamped).strip().lower() or None

    # ------------------------------------------------------------------
    @property
    def n_estimators(self) -> int:
        """Trees traversed per prediction."""
        return self.model.n_estimators

    @property
    def model_version(self) -> str:
        """The deployed model's version stamp ("" for unversioned models).

        Models published through the adaptive
        :class:`~repro.adaptive.registry.ModelRegistry` carry their
        registry version in ``metadata["version"]``; the serving layer
        surfaces it in ``stats()["model"]``.
        """
        return str(self.model.metadata.get("version", ""))

    def describe(self) -> dict:
        """Provenance summary for metrics endpoints and audit logs."""
        return {
            "kind": self.model.kind,
            "n_estimators": self.model.n_estimators,
            "system": self.model.system,
            "backend": self.model.backend,
            "metadata": dict(self.model.metadata),
        }

    def tune(
        self,
        matrix: MatrixLike,
        space: ExecutionSpace,
        *,
        stats: MatrixStats | None = None,
        matrix_key: str = "",
    ) -> TuningReport:
        if stats is not None:
            features = extract_features_from_stats(stats)
        else:
            features = extract_features(matrix)
            stats = self._resolve_stats(matrix, None)
        fmt_id = self.model.predict_one(features)
        t_fe = space.time_feature_extraction(stats)
        t_pred = space.time_prediction(
            n_estimators=self.model.n_estimators,
            avg_depth=self.model.mean_depth,
        )
        backend = choose_kernel_backend(
            space,
            stats,
            format_name(fmt_id),
            matrix_key=matrix_key,
            requested=self._backend_request(),
        )
        return TuningReport(
            format_id=fmt_id,
            t_feature_extraction=t_fe,
            t_prediction=t_pred,
            details={"features": features, "n_estimators": self.model.n_estimators},
            backend=backend,
        )


class DecisionTreeTuner(MLTuner):
    """Single-tree tuner: fastest prediction, slightly lower accuracy."""

    expected_kind = "decision_tree"


class RandomForestTuner(MLTuner):
    """Ensemble tuner: majority voting over the forest's trees."""

    expected_kind = "random_forest"
