"""Tuner interface and the tuning report."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Union

from repro.formats.base import SparseMatrix, format_name
from repro.formats.dynamic import DynamicMatrix
from repro.backends.base import ExecutionSpace
from repro.machine.stats import MatrixStats

__all__ = ["Tuner", "TuningReport", "choose_kernel_backend"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


def choose_kernel_backend(
    space: ExecutionSpace,
    stats: MatrixStats,
    fmt: str,
    *,
    matrix_key: str = "",
    requested: str | None = None,
) -> str:
    """The kernel backend a decision for *fmt* should execute on.

    A pinned space (or an explicit *requested* name) decides directly;
    ``"auto"`` argmins the modelled per-backend times for the chosen
    format over :meth:`ExecutionSpace.kernel_backend_candidates` — the
    backend half of the tuners' (format × backend) decision.
    """
    spec = requested if requested is not None else space.kernel_backend_spec
    spec = str(spec).strip().lower()
    if spec != "auto":
        return spec
    candidates = space.kernel_backend_candidates()
    times = {
        kb: space.time_spmv(
            stats, fmt, matrix_key=matrix_key, kernel_backend=kb
        )
        for kb in candidates
    }
    return min(times, key=times.get)  # type: ignore[arg-type]


@dataclass(frozen=True)
class TuningReport:
    """Outcome of one tuning decision.

    Attributes
    ----------
    format_id:
        Predicted / measured optimal format id.
    t_feature_extraction:
        Modelled seconds spent extracting features on the target space
        (zero for the run-first tuner).
    t_prediction:
        Modelled seconds spent evaluating the model (zero for run-first).
    t_profiling:
        Modelled seconds spent on conversions + trial runs (run-first
        only; zero for ML tuners).
    details:
        Tuner-specific extras (per-format trial times, feature vector, ...).
    backend:
        Selected *kernel backend* (:mod:`repro.kernels` generation) the
        decision should execute on.  Defaults to the reference tier;
        backend-aware tuners stamp the second half of their
        (format × backend) argmin here.
    """

    format_id: int
    t_feature_extraction: float = 0.0
    t_prediction: float = 0.0
    t_profiling: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)
    backend: str = "numpy"

    @property
    def format_name(self) -> str:
        """Canonical name of the selected format."""
        return format_name(self.format_id)

    @property
    def overhead_seconds(self) -> float:
        """Total modelled tuning overhead (T_FE + T_PRED + profiling)."""
        return self.t_feature_extraction + self.t_prediction + self.t_profiling


class Tuner(abc.ABC):
    """Base class for format-selection tuners."""

    @abc.abstractmethod
    def tune(
        self,
        matrix: MatrixLike,
        space: ExecutionSpace,
        *,
        stats: MatrixStats | None = None,
        matrix_key: str = "",
    ) -> TuningReport:
        """Select the optimal format for *matrix* on *space*.

        ``stats`` may be supplied to avoid recomputing matrix statistics;
        ``matrix_key`` keys the deterministic timing noise.
        """

    @staticmethod
    def _resolve_stats(matrix: MatrixLike, stats: MatrixStats | None) -> MatrixStats:
        if stats is not None:
            return stats
        concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        return MatrixStats.from_matrix(concrete)
