"""Execution spaces: the Morpheus backend abstraction.

An :class:`ExecutionSpace` pairs a simulated device (from
:mod:`repro.machine`) with a Morpheus backend name (``serial`` / ``openmp``
/ ``cuda`` / ``hip``).  Running SpMV through a space computes the numerical
result with the format's real NumPy kernel and *times* it with the
analytic cost model — the host/device substitution described in DESIGN.md.
"""

from repro.backends.base import ExecutionSpace, SpMVResult
from repro.backends.registry import available_spaces, make_space

__all__ = ["ExecutionSpace", "SpMVResult", "make_space", "available_spaces"]
