"""Convenience constructors for execution spaces."""

from __future__ import annotations

from typing import List

from repro.backends.base import ExecutionSpace
from repro.machine.cost_model import CostModel
from repro.machine.systems import SYSTEM_BACKENDS, get_system

__all__ = ["make_space", "available_spaces"]


def make_space(
    system: str,
    backend: str,
    *,
    cost_model: CostModel | None = None,
    kernel_backend: str = "numpy",
) -> ExecutionSpace:
    """Build the execution space for ``system/backend`` by name.

    *kernel_backend* selects the real kernel generation
    (:mod:`repro.kernels`) the space executes with — ``"numpy"`` (the
    reference default), a compiled tier, or ``"auto"`` for the best
    available one.

    Examples
    --------
    >>> make_space("cirrus", "cuda").name
    'cirrus/cuda'
    """
    return ExecutionSpace(
        get_system(system),
        backend,
        cost_model=cost_model,
        kernel_backend=kernel_backend,
    )


def available_spaces(
    *,
    cost_model: CostModel | None = None,
    kernel_backend: str = "numpy",
) -> List[ExecutionSpace]:
    """All eleven evaluation (system, backend) spaces, paper order."""
    shared = cost_model if cost_model is not None else CostModel()
    return [
        make_space(
            sys_name, backend, cost_model=shared, kernel_backend=kernel_backend
        )
        for sys_name, backend in SYSTEM_BACKENDS
    ]
