"""Convenience constructors for execution spaces."""

from __future__ import annotations

from typing import List

from repro.backends.base import ExecutionSpace
from repro.machine.cost_model import CostModel
from repro.machine.systems import SYSTEM_BACKENDS, get_system

__all__ = ["make_space", "available_spaces"]


def make_space(
    system: str, backend: str, *, cost_model: CostModel | None = None
) -> ExecutionSpace:
    """Build the execution space for ``system/backend`` by name.

    Examples
    --------
    >>> make_space("cirrus", "cuda").name
    'cirrus/cuda'
    """
    return ExecutionSpace(get_system(system), backend, cost_model=cost_model)


def available_spaces(*, cost_model: CostModel | None = None) -> List[ExecutionSpace]:
    """All eleven evaluation (system, backend) spaces, paper order."""
    shared = cost_model if cost_model is not None else CostModel()
    return [
        make_space(sys_name, backend, cost_model=shared)
        for sys_name, backend in SYSTEM_BACKENDS
    ]
