"""Modelled execution spaces: real arithmetic under a simulated clock.

Naming note — two distinct "backend" axes meet here, and they must not be
confused:

* The **modelled backend** of an :class:`ExecutionSpace` (``serial`` /
  ``openmp`` / ``cuda`` / ``hip``) selects which device archetype of a
  simulated :class:`~repro.machine.systems.System` the roofline cost
  model prices.  It decides what the *clock* says, never which code runs;
  this is how the paper's hardware zoo is reproduced on any host.
* The **kernel backend** (``numpy`` / ``numba`` / ``native``, see
  :mod:`repro.kernels`) selects which real implementation generation
  produces the numbers on *this* host.  It decides which code runs, and
  on CPU archetypes it also feeds back into the modelled time through the
  cost model's per-format speedup factors — making (format × kernel
  backend) the tuner's full decision space.

``ExecutionSpace.backend`` is always the modelled axis;
``ExecutionSpace.kernel_backend`` is always the real axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix
from repro.kernels import (
    available_backends,
    check_kernel_backend,
    default_backend,
)
from repro.machine.arch import ArchSpec, GPUSpec
from repro.machine.cost_model import CostModel
from repro.machine.stats import MatrixStats
from repro.machine.systems import System

__all__ = ["ExecutionSpace", "SpMVResult"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


@dataclass(frozen=True)
class SpMVResult:
    """Outcome of one SpMV run: numerical result + modelled runtime."""

    y: np.ndarray
    seconds: float
    format: str


class ExecutionSpace:
    """A modelled (system, backend) pair that can run sparse kernels.

    The central "where does this run" object: kernels execute for real
    while *time* comes from the space's roofline-style cost model, so
    performance questions have deterministic answers on any host.
    Spaces are cheap, stateless handles — build them with
    :func:`repro.backends.make_space` and share them freely.

    Two kinds of methods:

    * ``run_*`` (:meth:`run_spmv`, :meth:`run_spmm`) execute a kernel
      and return the numerical result plus its modelled seconds;
    * ``time_*`` (:meth:`time_spmv`, :meth:`time_all_formats`,
      :meth:`time_format_backends`, :meth:`time_feature_extraction`,
      :meth:`time_prediction`, :meth:`time_conversion`) price an
      operation from :class:`~repro.machine.stats.MatrixStats` alone,
      without touching a matrix — the tuners and the profiling stage
      live on these.

    Serving layers sit on top: :meth:`engine` binds a cached
    :class:`~repro.runtime.engine.WorkloadEngine` to this space, and a
    :class:`~repro.service.TuningService` serves concurrent traffic
    against it.

    Parameters
    ----------
    system:
        The simulated system hosting the device.
    backend:
        The *modelled* backend: one of ``"serial"``, ``"openmp"``,
        ``"cuda"``, ``"hip"``; must be available on *system*.
    cost_model:
        The timing model; defaults to a fresh :class:`CostModel` with the
        standard noise settings.
    kernel_backend:
        The *real* kernel generation executing on this host (see module
        docstring): a :mod:`repro.kernels` backend name, or ``"auto"``
        to resolve the best available tier at use time.  Defaults to
        ``"numpy"``, the reference tier — compiled tiers are opt-in so
        modelled numbers stay reproducible run to run.

    Examples
    --------
    >>> from repro.backends import make_space
    >>> space = make_space("cirrus", "cuda")
    >>> space.name
    'cirrus/cuda'
    """

    def __init__(
        self,
        system: System,
        backend: str,
        cost_model: CostModel | None = None,
        *,
        kernel_backend: str = "numpy",
    ) -> None:
        self.system = system
        self.backend = backend.lower()
        self.device: ArchSpec = system.device_for(self.backend)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        requested = str(kernel_backend).strip().lower()
        if requested != "auto":
            requested = check_kernel_backend(requested)
        self._kernel_backend = requested

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Identifier like ``"cirrus/cuda"``."""
        return f"{self.system.name}/{self.backend}"

    @property
    def kernel_backend(self) -> str:
        """The resolved kernel backend (``"auto"`` → best available now)."""
        if self._kernel_backend == "auto":
            return default_backend()
        return self._kernel_backend

    @property
    def kernel_backend_spec(self) -> str:
        """The configured kernel backend: a name, or literal ``"auto"``."""
        return self._kernel_backend

    def kernel_backend_candidates(self) -> Tuple[str, ...]:
        """Kernel backends worth trialling on this space, best first.

        GPU archetypes model device kernels no host generation touches,
        so their only candidate is the reference tier; CPU archetypes
        trial every available backend.
        """
        if isinstance(self.device, GPUSpec):
            return ("numpy",)
        return available_backends()

    # ------------------------------------------------------------------
    def run_spmv(
        self,
        matrix: MatrixLike,
        x: np.ndarray,
        *,
        matrix_key: str = "",
        repetitions: int = 1,
        stats: MatrixStats | None = None,
        kernel_backend: Optional[str] = None,
    ) -> SpMVResult:
        """Execute ``y = A @ x`` and report the modelled device time.

        ``repetitions`` scales the reported time (the kernel is evaluated
        once; SpMV is deterministic).  *kernel_backend* overrides the
        space default for this call; the kernel resolves with clean
        fallback, and the modelled seconds price the backend actually
        requested.
        """
        kb = self._resolve_kb(kernel_backend)
        concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        if kb == "numpy":
            y = concrete.spmv(x)
        else:
            from repro.runtime.registry import REGISTRY

            kernel, _ = REGISTRY.resolve("spmv", concrete.format, kb)
            y = kernel(concrete, np.ascontiguousarray(x, dtype=np.float64))
        if stats is None:
            stats = MatrixStats.from_matrix(concrete)
        seconds = repetitions * self.cost_model.spmv_time(
            stats, concrete.format, self.device, self.backend,
            matrix_key=matrix_key, kernel_backend=kb,
        )
        return SpMVResult(y=y, seconds=seconds, format=concrete.format)

    def run_spmm(
        self,
        matrix: MatrixLike,
        X: np.ndarray,
        *,
        matrix_key: str = "",
        repetitions: int = 1,
        stats: MatrixStats | None = None,
        kernel_backend: Optional[str] = None,
    ) -> SpMVResult:
        """Execute ``Y = A @ X`` for an ``(ncols, k)`` block, batched.

        The kernel runs once through the runtime's batched executor; the
        modelled time scales the single-SpMV cost by the SpMM traffic
        factor (matrix traffic paid once across the ``k`` vectors).
        """
        from repro.runtime.batch import batched_spmv
        from repro.spmv.spmm import spmm_time_factor

        kb = self._resolve_kb(kernel_backend)
        concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        Y = batched_spmv(concrete, X, backend=kb)
        if stats is None:
            stats = MatrixStats.from_matrix(concrete)
        seconds = (
            repetitions
            * spmm_time_factor(max(1, Y.shape[1] if Y.ndim == 2 else 1))
            * self.cost_model.spmv_time(
                stats, concrete.format, self.device, self.backend,
                matrix_key=matrix_key, kernel_backend=kb,
            )
        )
        return SpMVResult(y=Y, seconds=seconds, format=concrete.format)

    def engine(self, tuner=None, **kwargs) -> "object":
        """A :class:`~repro.runtime.engine.WorkloadEngine` bound to this space."""
        from repro.runtime.engine import WorkloadEngine

        return WorkloadEngine(self, tuner=tuner, **kwargs)

    def time_spmv(
        self,
        stats: MatrixStats,
        fmt: str,
        *,
        matrix_key: str = "",
        kernel_backend: Optional[str] = None,
    ) -> float:
        """Modelled seconds for one SpMV without executing the kernel."""
        return self.cost_model.spmv_time(
            stats, fmt, self.device, self.backend, matrix_key=matrix_key,
            kernel_backend=self._resolve_kb(kernel_backend),
        )

    def time_all_formats(
        self,
        stats: MatrixStats,
        *,
        matrix_key: str = "",
        kernel_backend: Optional[str] = None,
    ) -> dict[str, float]:
        """Modelled single-SpMV seconds for each of the six formats."""
        return self.cost_model.spmv_times(
            stats, self.device, self.backend, matrix_key=matrix_key,
            kernel_backend=self._resolve_kb(kernel_backend),
        )

    def time_format_backends(
        self, stats: MatrixStats, *, matrix_key: str = ""
    ) -> dict[str, dict[str, float]]:
        """Modelled ``{kernel_backend: {format: seconds}}`` over candidates.

        The full (format × kernel backend) decision surface the
        backend-aware tuners argmin over; candidates come from
        :meth:`kernel_backend_candidates`.
        """
        return self.cost_model.spmv_times_by_backend(
            stats,
            self.device,
            self.backend,
            self.kernel_backend_candidates(),
            matrix_key=matrix_key,
        )

    def time_feature_extraction(self, stats: MatrixStats) -> float:
        """Modelled seconds for the Oracle's online feature extraction."""
        return self.cost_model.feature_extraction_time(
            stats, self.device, self.backend
        )

    def time_prediction(self, *, n_estimators: int, avg_depth: float) -> float:
        """Modelled seconds for an ensemble prediction on this space's host."""
        return self.cost_model.prediction_time(
            self.device, self.backend, n_estimators=n_estimators, avg_depth=avg_depth
        )

    def time_conversion(
        self, stats: MatrixStats, source: str, target: str
    ) -> float:
        """Modelled seconds for a format conversion on this space."""
        return self.cost_model.conversion_time(
            stats, source, target, self.device, self.backend
        )

    # ------------------------------------------------------------------
    def _resolve_kb(self, kernel_backend: Optional[str]) -> str:
        if kernel_backend is None:
            return self.kernel_backend
        normalised = str(kernel_backend).strip().lower()
        if normalised == "auto":
            return default_backend()
        return check_kernel_backend(normalised)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ExecutionSpace {self.name} device={self.device.name!r} "
            f"kernels={self._kernel_backend!r}>"
        )
