"""Execution-space core: run real kernels under a simulated clock."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix
from repro.machine.arch import ArchSpec
from repro.machine.cost_model import CostModel
from repro.machine.stats import MatrixStats
from repro.machine.systems import System

__all__ = ["ExecutionSpace", "SpMVResult"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


@dataclass(frozen=True)
class SpMVResult:
    """Outcome of one SpMV run: numerical result + modelled runtime."""

    y: np.ndarray
    seconds: float
    format: str


class ExecutionSpace:
    """A (system, backend) pair that can run sparse kernels.

    The central "where does this run" object: kernels execute for real
    (NumPy/scipy arithmetic) while *time* comes from the space's
    roofline-style cost model, so performance questions have
    deterministic answers on any host.  Spaces are cheap, stateless
    handles — build them with :func:`repro.backends.make_space` and
    share them freely.

    Two kinds of methods:

    * ``run_*`` (:meth:`run_spmv`, :meth:`run_spmm`) execute a kernel
      and return the numerical result plus its modelled seconds;
    * ``time_*`` (:meth:`time_spmv`, :meth:`time_all_formats`,
      :meth:`time_feature_extraction`, :meth:`time_prediction`,
      :meth:`time_conversion`) price an operation from
      :class:`~repro.machine.stats.MatrixStats` alone, without touching
      a matrix — the tuners and the profiling stage live on these.

    Serving layers sit on top: :meth:`engine` binds a cached
    :class:`~repro.runtime.engine.WorkloadEngine` to this space, and a
    :class:`~repro.service.TuningService` serves concurrent traffic
    against it.

    Parameters
    ----------
    system:
        The simulated system hosting the device.
    backend:
        One of ``"serial"``, ``"openmp"``, ``"cuda"``, ``"hip"``; must be
        available on *system*.
    cost_model:
        The timing model; defaults to a fresh :class:`CostModel` with the
        standard noise settings.

    Examples
    --------
    >>> from repro.backends import make_space
    >>> space = make_space("cirrus", "cuda")
    >>> space.name
    'cirrus/cuda'
    """

    def __init__(
        self,
        system: System,
        backend: str,
        cost_model: CostModel | None = None,
    ) -> None:
        self.system = system
        self.backend = backend.lower()
        self.device: ArchSpec = system.device_for(self.backend)
        self.cost_model = cost_model if cost_model is not None else CostModel()

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Identifier like ``"cirrus/cuda"``."""
        return f"{self.system.name}/{self.backend}"

    # ------------------------------------------------------------------
    def run_spmv(
        self,
        matrix: MatrixLike,
        x: np.ndarray,
        *,
        matrix_key: str = "",
        repetitions: int = 1,
        stats: MatrixStats | None = None,
    ) -> SpMVResult:
        """Execute ``y = A @ x`` and report the modelled device time.

        ``repetitions`` scales the reported time (the kernel is evaluated
        once; SpMV is deterministic).
        """
        concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        y = concrete.spmv(x)
        if stats is None:
            stats = MatrixStats.from_matrix(concrete)
        seconds = repetitions * self.cost_model.spmv_time(
            stats, concrete.format, self.device, self.backend, matrix_key=matrix_key
        )
        return SpMVResult(y=y, seconds=seconds, format=concrete.format)

    def run_spmm(
        self,
        matrix: MatrixLike,
        X: np.ndarray,
        *,
        matrix_key: str = "",
        repetitions: int = 1,
        stats: MatrixStats | None = None,
    ) -> SpMVResult:
        """Execute ``Y = A @ X`` for an ``(ncols, k)`` block, batched.

        The kernel runs once through the runtime's batched executor; the
        modelled time scales the single-SpMV cost by the SpMM traffic
        factor (matrix traffic paid once across the ``k`` vectors).
        """
        from repro.runtime.batch import batched_spmv
        from repro.spmv.spmm import spmm_time_factor

        concrete = matrix.concrete if isinstance(matrix, DynamicMatrix) else matrix
        Y = batched_spmv(concrete, X)
        if stats is None:
            stats = MatrixStats.from_matrix(concrete)
        seconds = (
            repetitions
            * spmm_time_factor(max(1, Y.shape[1] if Y.ndim == 2 else 1))
            * self.cost_model.spmv_time(
                stats, concrete.format, self.device, self.backend,
                matrix_key=matrix_key,
            )
        )
        return SpMVResult(y=Y, seconds=seconds, format=concrete.format)

    def engine(self, tuner=None, **kwargs) -> "object":
        """A :class:`~repro.runtime.engine.WorkloadEngine` bound to this space."""
        from repro.runtime.engine import WorkloadEngine

        return WorkloadEngine(self, tuner=tuner, **kwargs)

    def time_spmv(
        self, stats: MatrixStats, fmt: str, *, matrix_key: str = ""
    ) -> float:
        """Modelled seconds for one SpMV without executing the kernel."""
        return self.cost_model.spmv_time(
            stats, fmt, self.device, self.backend, matrix_key=matrix_key
        )

    def time_all_formats(
        self, stats: MatrixStats, *, matrix_key: str = ""
    ) -> dict[str, float]:
        """Modelled single-SpMV seconds for each of the six formats."""
        return self.cost_model.spmv_times(
            stats, self.device, self.backend, matrix_key=matrix_key
        )

    def time_feature_extraction(self, stats: MatrixStats) -> float:
        """Modelled seconds for the Oracle's online feature extraction."""
        return self.cost_model.feature_extraction_time(
            stats, self.device, self.backend
        )

    def time_prediction(self, *, n_estimators: int, avg_depth: float) -> float:
        """Modelled seconds for an ensemble prediction on this space's host."""
        return self.cost_model.prediction_time(
            self.device, self.backend, n_estimators=n_estimators, avg_depth=avg_depth
        )

    def time_conversion(
        self, stats: MatrixStats, source: str, target: str
    ) -> float:
        """Modelled seconds for a format conversion on this space."""
        return self.cost_model.conversion_time(
            stats, source, target, self.device, self.backend
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ExecutionSpace {self.name} device={self.device.name!r}>"
