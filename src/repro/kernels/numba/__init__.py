"""The ``numba`` kernel backend — generation 2, JIT-compiled row loops.

Probed at runtime: this package's ``__init__`` is import-safe without
Numba installed, but :func:`register` (and the kernel modules it pulls in)
require it.  Gate every use behind
:func:`repro.kernels.probe_backends` / :func:`repro.kernels.available_backends`.

Unlike the ahead-of-time ``native`` backend, Numba compiles each kernel on
first touch — a per-process warm-up cost of roughly a second per
``(operation, format)`` that :meth:`KernelRegistry.warmup` measures and the
engine amortises and reports in its stats.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BACKEND", "GENERATION", "register", "delta_kernels"]

#: Backend identifier used in the dispatch table.
BACKEND = "numba"

#: Kernel generation (2 = compiled tiers).
GENERATION = 2


def delta_kernels():
    """The compiled delta-merge kernel module (imports numba)."""
    from repro.kernels.numba import delta

    return delta


def register(registry) -> None:
    """Register the Numba container adapters on *registry*.

    Importing :mod:`repro.kernels.numba.kernels` (and therefore Numba)
    happens here, not at package import — callers must have probed the
    backend first.
    """
    from repro.kernels.numba import kernels as k

    @registry.register("spmv", "COO", BACKEND)
    def _coo_spmv(m, x: np.ndarray) -> np.ndarray:
        return k.coo_spmv(m.nrows, m.row, m.col, m.data, np.ascontiguousarray(x))

    @registry.register("spmv", "CSR", BACKEND)
    def _csr_spmv(m, x: np.ndarray) -> np.ndarray:
        return k.csr_spmv(m.row_ptr, m.col_idx, m.data, np.ascontiguousarray(x))

    @registry.register("spmv", "DIA", BACKEND)
    def _dia_spmv(m, x: np.ndarray) -> np.ndarray:
        return k.dia_spmv(
            m.nrows, m.ncols, m.offsets, m.data, np.ascontiguousarray(x)
        )

    @registry.register("spmv", "ELL", BACKEND)
    def _ell_spmv(m, x: np.ndarray) -> np.ndarray:
        return k.ell_spmv(m.col_idx, m.data, np.ascontiguousarray(x))

    @registry.register("spmv", "HYB", BACKEND)
    def _hyb_spmv(m, x: np.ndarray) -> np.ndarray:
        x = np.ascontiguousarray(x)
        y = k.ell_spmv(m.ell.col_idx, m.ell.data, x)
        if m.coo.nnz:
            y = y + k.coo_spmv(m.nrows, m.coo.row, m.coo.col, m.coo.data, x)
        return y

    @registry.register("spmv", "HDC", BACKEND)
    def _hdc_spmv(m, x: np.ndarray) -> np.ndarray:
        x = np.ascontiguousarray(x)
        return k.dia_spmv(
            m.nrows, m.ncols, m.dia.offsets, m.dia.data, x
        ) + k.csr_spmv(m.csr.row_ptr, m.csr.col_idx, m.csr.data, x)

    @registry.register("spmm", "COO", BACKEND)
    def _coo_spmm(m, X: np.ndarray) -> np.ndarray:
        return k.coo_spmm(m.nrows, m.row, m.col, m.data, np.ascontiguousarray(X))

    @registry.register("spmm", "CSR", BACKEND)
    def _csr_spmm(m, X: np.ndarray) -> np.ndarray:
        return k.csr_spmm(m.row_ptr, m.col_idx, m.data, np.ascontiguousarray(X))

    @registry.register("spmm", "DIA", BACKEND)
    def _dia_spmm(m, X: np.ndarray) -> np.ndarray:
        return k.dia_spmm(
            m.nrows, m.ncols, m.offsets, m.data, np.ascontiguousarray(X)
        )

    @registry.register("spmm", "ELL", BACKEND)
    def _ell_spmm(m, X: np.ndarray) -> np.ndarray:
        return k.ell_spmm(m.col_idx, m.data, np.ascontiguousarray(X))

    @registry.register("spmm", "HYB", BACKEND)
    def _hyb_spmm(m, X: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X)
        Y = k.ell_spmm(m.ell.col_idx, m.ell.data, X)
        if m.coo.nnz:
            Y = Y + k.coo_spmm(m.nrows, m.coo.row, m.coo.col, m.coo.data, X)
        return Y

    @registry.register("spmm", "HDC", BACKEND)
    def _hdc_spmm(m, X: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X)
        return k.dia_spmm(
            m.nrows, m.ncols, m.dia.offsets, m.dia.data, X
        ) + k.csr_spmm(m.csr.row_ptr, m.csr.col_idx, m.csr.data, X)
