"""Numba kernels for the delta-overlay hot paths.

Two loops in :mod:`repro.formats.delta` stay scalar in the NumPy tier:

* the duplicate-run fold inside :meth:`MatrixDelta.canonical` (sequential
  op semantics over each duplicated coordinate), and
* the structural rebuild at the tail of :func:`merge_keyed` / overlay
  compaction (interleaving kept base entries with inserts while skipping
  deletes).

Both are order-sensitive merges, so their compiled twins perform the exact
same arithmetic in the exact same order as the NumPy formulation — the
outputs are bitwise identical, not merely close.  Like
:mod:`repro.kernels.numba.kernels` this module imports :mod:`numba` at
module level; only import it behind the capability probe.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["fold_duplicate_runs", "merge_rebuild"]

# op codes mirrored from repro.formats.delta (cannot import it here:
# delta.py is what dispatches *into* this module)
_OP_SET, _OP_ADD, _OP_DEL = 0, 1, 2


@njit(cache=True)
def fold_duplicate_runs(op, value, starts, ends):
    """Fold each duplicate-coordinate run ``[s, e)`` onto its first slot.

    In-place twin of the Python loop in ``MatrixDelta.canonical``: a later
    SET/DEL supersedes, ADD accumulates onto SET/ADD and re-creates after
    DEL.  ``op`` and ``value`` must be writable copies.
    """
    for r in range(starts.shape[0]):
        s = starts[r]
        e = ends[r]
        if e - s == 1:
            continue
        mode = int(op[s])
        val = value[s]
        for i in range(s + 1, e):
            o = int(op[i])
            v = value[i]
            if o == _OP_SET or o == _OP_DEL:
                mode = o
                val = v
            elif mode == _OP_DEL:
                mode = _OP_SET
                val = v
            else:
                val = val + v
        op[s] = mode
        value[s] = val


@njit(cache=True)
def merge_rebuild(key, col, data, del_pos, ins_key, ins_col, ins_val):
    """Single-pass structural merge: drop ``del_pos``, weave in inserts.

    ``key`` is strictly increasing, ``del_pos`` is a sorted list of base
    indices to drop, and ``ins_key`` (sorted, disjoint from ``key``) /
    ``ins_col`` / ``ins_val`` are the entries to insert in key order.
    Returns the merged ``(key, col, data)`` in canonical order — the same
    arrays the two-scatter NumPy formulation produces, bitwise.
    """
    n = key.shape[0]
    nd = del_pos.shape[0]
    ni = ins_key.shape[0]
    out_n = n - nd + ni
    out_key = np.empty(out_n, dtype=np.int64)
    out_col = np.empty(out_n, dtype=np.int64)
    out_data = np.empty(out_n, dtype=np.float64)
    di = 0
    ii = 0
    w = 0
    for p in range(n):
        while ii < ni and ins_key[ii] < key[p]:
            out_key[w] = ins_key[ii]
            out_col[w] = ins_col[ii]
            out_data[w] = ins_val[ii]
            ii += 1
            w += 1
        if di < nd and del_pos[di] == p:
            di += 1
            continue
        out_key[w] = key[p]
        out_col[w] = col[p]
        out_data[w] = data[p]
        w += 1
    while ii < ni:
        out_key[w] = ins_key[ii]
        out_col[w] = ins_col[ii]
        out_data[w] = ins_val[ii]
        ii += 1
        w += 1
    return out_key, out_col, out_data
