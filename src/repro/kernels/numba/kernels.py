"""Numba-JIT SpMV / SpMM kernels — generation 2, row-loop formulation.

Each kernel mirrors the traversal semantics of its NumPy reference twin
(:mod:`repro.kernels.numpy.kernels`) but as explicit row loops, the shape
Numba compiles to tight machine code.  Summation *order* within a row can
differ from the vectorised reference (sequential vs. prefix-sum), so
bitwise equality against the reference is only guaranteed on
integer-valued float64 data where every partial sum is exact; for general
floats the backends agree to an ``allclose`` tolerance.

This module imports :mod:`numba` at module level — only import it after the
capability probe (:func:`repro.kernels.probe_backends`) says the backend is
available.  ``REPRO_NUMBA_PARALLEL=1`` switches the row loops to
``prange`` multi-threading; the default is single-threaded so benchmark
speedups are per-core, matching the paper's serial-backend comparisons.
"""

from __future__ import annotations

import os

import numpy as np
from numba import njit, prange

_PARALLEL = os.environ.get("REPRO_NUMBA_PARALLEL", "").strip().lower() in (
    "1",
    "true",
    "yes",
    "on",
)

__all__ = [
    "PARALLEL",
    "coo_spmv",
    "csr_spmv",
    "dia_spmv",
    "ell_spmv",
    "coo_spmm",
    "csr_spmm",
    "dia_spmm",
    "ell_spmm",
]

#: Whether the row loops were compiled with ``parallel=True``.
PARALLEL = _PARALLEL


# ----------------------------------------------------------------------
# single-vector kernels: y = A @ x
# ----------------------------------------------------------------------


@njit(cache=True, parallel=_PARALLEL)
def csr_spmv(row_ptr, col_idx, data, x):
    nrows = row_ptr.shape[0] - 1
    y = np.zeros(nrows, dtype=np.float64)
    for i in prange(nrows):
        acc = 0.0
        for p in range(row_ptr[i], row_ptr[i + 1]):
            acc += data[p] * x[col_idx[p]]
        y[i] = acc
    return y


@njit(cache=True)
def coo_spmv(nrows, row, col, data, x):
    # scatter-add: inherently sequential (write conflicts across entries)
    y = np.zeros(nrows, dtype=np.float64)
    for p in range(row.shape[0]):
        y[row[p]] += data[p] * x[col[p]]
    return y


@njit(cache=True, parallel=_PARALLEL)
def ell_spmv(col_idx, ell_data, x):
    nrows, width = ell_data.shape
    y = np.zeros(nrows, dtype=np.float64)
    for i in prange(nrows):
        acc = 0.0
        for s in range(width):
            c = col_idx[i, s]
            if c >= 0:
                acc += ell_data[i, s] * x[c]
        y[i] = acc
    return y


@njit(cache=True)
def dia_spmv(nrows, ncols, offsets, dia_data, x):
    y = np.zeros(nrows, dtype=np.float64)
    for k in range(offsets.shape[0]):
        off = offsets[k]
        j_lo = off if off > 0 else 0
        j_hi = min(ncols, nrows + off)
        for j in range(j_lo, j_hi):
            y[j - off] += dia_data[k, j] * x[j]
    return y


# ----------------------------------------------------------------------
# block kernels: Y = A @ X for an (ncols, k) dense block
# ----------------------------------------------------------------------


@njit(cache=True, parallel=_PARALLEL)
def csr_spmm(row_ptr, col_idx, data, X):
    nrows = row_ptr.shape[0] - 1
    k = X.shape[1]
    Y = np.zeros((nrows, k), dtype=np.float64)
    for i in prange(nrows):
        for p in range(row_ptr[i], row_ptr[i + 1]):
            c = col_idx[p]
            v = data[p]
            for j in range(k):
                Y[i, j] += v * X[c, j]
    return Y


@njit(cache=True)
def coo_spmm(nrows, row, col, data, X):
    k = X.shape[1]
    Y = np.zeros((nrows, k), dtype=np.float64)
    for p in range(row.shape[0]):
        r = row[p]
        c = col[p]
        v = data[p]
        for j in range(k):
            Y[r, j] += v * X[c, j]
    return Y


@njit(cache=True, parallel=_PARALLEL)
def ell_spmm(col_idx, ell_data, X):
    nrows, width = ell_data.shape
    k = X.shape[1]
    Y = np.zeros((nrows, k), dtype=np.float64)
    for i in prange(nrows):
        for s in range(width):
            c = col_idx[i, s]
            if c >= 0:
                v = ell_data[i, s]
                for j in range(k):
                    Y[i, j] += v * X[c, j]
    return Y


@njit(cache=True)
def dia_spmm(nrows, ncols, offsets, dia_data, X):
    k = X.shape[1]
    Y = np.zeros((nrows, k), dtype=np.float64)
    for d in range(offsets.shape[0]):
        off = offsets[d]
        j_lo = off if off > 0 else 0
        j_hi = min(ncols, nrows + off)
        for j in range(j_lo, j_hi):
            v = dia_data[d, j]
            for c in range(k):
                Y[j - off, c] += v * X[j, c]
    return Y
