"""Build and load the native C kernel library via the system compiler.

The C source below is embedded so the backend has no packaging footprint:
on first probe it is written to a content-addressed cache directory
(``$REPRO_NATIVE_CACHE`` or ``~/.cache/repro/native``), compiled with the
first working system compiler (``cc``/``gcc``/``clang``) as
``-O3 -shared -fPIC``, and loaded through :mod:`ctypes`.  Subsequent
processes reuse the cached shared object, so unlike the Numba backend
there is no per-kernel warm-up — the whole library is ahead-of-time.

Every kernel takes int64 index arrays and float64 value arrays (the only
dtypes the format containers store) and is single-threaded, matching the
paper's per-core backend comparisons.  A missing compiler or a failed
build marks the backend unavailable — it never raises at import.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np
from numpy.ctypeslib import ndpointer

from repro.errors import BackendError

__all__ = ["SOURCE", "load", "build_detail"]

SOURCE = r"""
#include <stdint.h>

#define EXPORT __attribute__((visibility("default")))

EXPORT void csr_spmv(int64_t nrows, const int64_t *row_ptr,
                     const int64_t *col_idx, const double *data,
                     const double *x, double *y) {
    for (int64_t i = 0; i < nrows; ++i) {
        double acc = 0.0;
        for (int64_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p)
            acc += data[p] * x[col_idx[p]];
        y[i] = acc;
    }
}

EXPORT void csr_spmm(int64_t nrows, int64_t k, const int64_t *row_ptr,
                     const int64_t *col_idx, const double *data,
                     const double *X, double *Y) {
    for (int64_t i = 0; i < nrows; ++i) {
        double *yr = Y + i * k;
        for (int64_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
            const double *xr = X + col_idx[p] * k;
            double v = data[p];
            for (int64_t j = 0; j < k; ++j)
                yr[j] += v * xr[j];
        }
    }
}

EXPORT void coo_spmv(int64_t nnz, const int64_t *row, const int64_t *col,
                     const double *data, const double *x, double *y) {
    for (int64_t p = 0; p < nnz; ++p)
        y[row[p]] += data[p] * x[col[p]];
}

EXPORT void coo_spmm(int64_t nnz, int64_t k, const int64_t *row,
                     const int64_t *col, const double *data, const double *X,
                     double *Y) {
    for (int64_t p = 0; p < nnz; ++p) {
        double *yr = Y + row[p] * k;
        const double *xr = X + col[p] * k;
        double v = data[p];
        for (int64_t j = 0; j < k; ++j)
            yr[j] += v * xr[j];
    }
}

EXPORT void ell_spmv(int64_t nrows, int64_t width, const int64_t *col_idx,
                     const double *data, const double *x, double *y) {
    for (int64_t i = 0; i < nrows; ++i) {
        const int64_t *ci = col_idx + i * width;
        const double *dr = data + i * width;
        double acc = 0.0;
        for (int64_t s = 0; s < width; ++s) {
            int64_t c = ci[s];
            if (c >= 0)
                acc += dr[s] * x[c];
        }
        y[i] = acc;
    }
}

EXPORT void ell_spmm(int64_t nrows, int64_t width, int64_t k,
                     const int64_t *col_idx, const double *data,
                     const double *X, double *Y) {
    for (int64_t i = 0; i < nrows; ++i) {
        const int64_t *ci = col_idx + i * width;
        const double *dr = data + i * width;
        double *yr = Y + i * k;
        for (int64_t s = 0; s < width; ++s) {
            int64_t c = ci[s];
            if (c >= 0) {
                const double *xr = X + c * k;
                double v = dr[s];
                for (int64_t j = 0; j < k; ++j)
                    yr[j] += v * xr[j];
            }
        }
    }
}

EXPORT void dia_spmv(int64_t nrows, int64_t ncols, int64_t ndiags,
                     const int64_t *offsets, const double *data,
                     const double *x, double *y) {
    for (int64_t d = 0; d < ndiags; ++d) {
        int64_t off = offsets[d];
        int64_t j_lo = off > 0 ? off : 0;
        int64_t j_hi = nrows + off < ncols ? nrows + off : ncols;
        const double *dr = data + d * ncols;
        for (int64_t j = j_lo; j < j_hi; ++j)
            y[j - off] += dr[j] * x[j];
    }
}

EXPORT void dia_spmm(int64_t nrows, int64_t ncols, int64_t ndiags, int64_t k,
                     const int64_t *offsets, const double *data,
                     const double *X, double *Y) {
    for (int64_t d = 0; d < ndiags; ++d) {
        int64_t off = offsets[d];
        int64_t j_lo = off > 0 ? off : 0;
        int64_t j_hi = nrows + off < ncols ? nrows + off : ncols;
        const double *dr = data + d * ncols;
        for (int64_t j = j_lo; j < j_hi; ++j) {
            double *yr = Y + (j - off) * k;
            const double *xr = X + j * k;
            double v = dr[j];
            for (int64_t c = 0; c < k; ++c)
                yr[c] += v * xr[c];
        }
    }
}
"""

_I64 = ctypes.c_int64
_PI64 = ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_PF64 = ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")

_SIGNATURES = {
    "csr_spmv": (_I64, _PI64, _PI64, _PF64, _PF64, _PF64),
    "csr_spmm": (_I64, _I64, _PI64, _PI64, _PF64, _PF64, _PF64),
    "coo_spmv": (_I64, _PI64, _PI64, _PF64, _PF64, _PF64),
    "coo_spmm": (_I64, _I64, _PI64, _PI64, _PF64, _PF64, _PF64),
    "ell_spmv": (_I64, _I64, _PI64, _PF64, _PF64, _PF64),
    "ell_spmm": (_I64, _I64, _I64, _PI64, _PF64, _PF64, _PF64),
    "dia_spmv": (_I64, _I64, _I64, _PI64, _PF64, _PF64, _PF64),
    "dia_spmm": (_I64, _I64, _I64, _I64, _PI64, _PF64, _PF64, _PF64),
}

_lib: Optional[ctypes.CDLL] = None
_detail: str = "not probed"


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "native"


def _compile(compiler: str, cache: Path, digest: str) -> Path:
    so_path = cache / f"libreprokernels-{digest}.so"
    if so_path.exists():
        return so_path
    cache.mkdir(parents=True, exist_ok=True)
    c_path = cache / f"reprokernels-{digest}.c"
    c_path.write_text(SOURCE)
    # compile to a temp name, then atomically rename: concurrent probes
    # in sibling processes must never load a half-written library
    fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=str(cache))
    os.close(fd)
    try:
        proc = subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC", "-o", tmp_name,
             str(c_path), "-lm"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            raise BackendError(
                f"native kernel build failed ({compiler}): "
                f"{proc.stderr.strip()[:500]}"
            )
        os.replace(tmp_name, so_path)
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
    return so_path


def load(*, refresh: bool = False) -> ctypes.CDLL:
    """Compile (once, cached on disk) and load the native kernel library.

    Raises :class:`~repro.errors.BackendError` when no compiler is found
    or the build/load fails; the capability probe turns that into an
    "unavailable" entry rather than propagating.
    """
    global _lib, _detail
    if _lib is not None and not refresh:
        return _lib
    compiler = _find_compiler()
    if compiler is None:
        _detail = "no C compiler on PATH (tried cc, gcc, clang)"
        raise BackendError(_detail)
    digest = hashlib.sha256(
        (SOURCE + compiler).encode()
    ).hexdigest()[:16]
    try:
        so_path = _compile(compiler, _cache_dir(), digest)
        lib = ctypes.CDLL(str(so_path))
    except BackendError:
        raise
    except Exception as exc:  # OSError from CDLL, mkdir failures, ...
        _detail = f"native kernel library unusable: {exc}"
        raise BackendError(_detail) from exc
    for name, argtypes in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = None
    _lib = lib
    _detail = f"{os.path.basename(compiler)} -O3 via ctypes ({so_path.name})"
    return lib


def build_detail() -> str:
    """Human-readable outcome of the last :func:`load` attempt."""
    return _detail
