"""Raw-array wrappers over the native C kernel library.

Same signatures as the NumPy reference kernels
(:mod:`repro.kernels.numpy.kernels`): callers hand in the format's bare
arrays, the wrapper allocates the output and invokes the ctypes-bound C
function.  Row sums are sequential left-to-right, like the Numba tier —
bitwise-identical to the reference on integer-valued float64 data,
``allclose`` on general floats.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.native import builder

__all__ = [
    "coo_spmv",
    "csr_spmv",
    "dia_spmv",
    "ell_spmv",
    "coo_spmm",
    "csr_spmm",
    "dia_spmm",
    "ell_spmm",
]


def _f64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.float64)


def _i64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def csr_spmv(row_ptr, col_idx, data, x) -> np.ndarray:
    nrows = row_ptr.shape[0] - 1
    y = np.empty(nrows, dtype=np.float64)
    builder.load().csr_spmv(
        nrows, _i64(row_ptr), _i64(col_idx), _f64(data), _f64(x), y
    )
    return y


def coo_spmv(nrows, row, col, data, x) -> np.ndarray:
    y = np.zeros(nrows, dtype=np.float64)
    builder.load().coo_spmv(
        row.shape[0], _i64(row), _i64(col), _f64(data), _f64(x), y
    )
    return y


def ell_spmv(col_idx, ell_data, x, valid=None) -> np.ndarray:
    nrows, width = ell_data.shape
    y = np.empty(nrows, dtype=np.float64)
    builder.load().ell_spmv(
        nrows, width, _i64(col_idx), _f64(ell_data), _f64(x), y
    )
    return y


def dia_spmv(nrows, ncols, offsets, dia_data, x) -> np.ndarray:
    y = np.zeros(nrows, dtype=np.float64)
    builder.load().dia_spmv(
        nrows, ncols, offsets.shape[0], _i64(offsets), _f64(dia_data),
        _f64(x), y,
    )
    return y


def csr_spmm(row_ptr, col_idx, data, X) -> np.ndarray:
    nrows = row_ptr.shape[0] - 1
    X = _f64(X)
    Y = np.zeros((nrows, X.shape[1]), dtype=np.float64)
    builder.load().csr_spmm(
        nrows, X.shape[1], _i64(row_ptr), _i64(col_idx), _f64(data), X, Y
    )
    return Y


def coo_spmm(nrows, row, col, data, X) -> np.ndarray:
    X = _f64(X)
    Y = np.zeros((nrows, X.shape[1]), dtype=np.float64)
    builder.load().coo_spmm(
        row.shape[0], X.shape[1], _i64(row), _i64(col), _f64(data), X, Y
    )
    return Y


def ell_spmm(col_idx, ell_data, X, valid=None) -> np.ndarray:
    nrows, width = ell_data.shape
    X = _f64(X)
    Y = np.zeros((nrows, X.shape[1]), dtype=np.float64)
    builder.load().ell_spmm(
        nrows, width, X.shape[1], _i64(col_idx), _f64(ell_data), X, Y
    )
    return Y


def dia_spmm(nrows, ncols, offsets, dia_data, X) -> np.ndarray:
    X = _f64(X)
    Y = np.zeros((nrows, X.shape[1]), dtype=np.float64)
    builder.load().dia_spmm(
        nrows, ncols, offsets.shape[0], X.shape[1], _i64(offsets),
        _f64(dia_data), X, Y,
    )
    return Y
