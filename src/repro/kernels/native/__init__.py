"""The ``native`` kernel backend — generation 2, ahead-of-time C.

A small C99 kernel library compiled on first probe with the system
compiler and bound through :mod:`ctypes`
(:mod:`repro.kernels.native.builder`).  Probed at runtime like the Numba
backend, but with no per-kernel JIT warm-up: the shared object is built
once per source digest and cached on disk, so first-touch cost is the
build (seconds) and every later process pays only a ``dlopen``.

Gate every use behind :func:`repro.kernels.probe_backends` /
:func:`repro.kernels.available_backends` — :func:`register` triggers a
compile when the cache is cold.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BACKEND", "GENERATION", "register"]

#: Backend identifier used in the dispatch table.
BACKEND = "native"

#: Kernel generation (2 = compiled tiers).
GENERATION = 2


def register(registry) -> None:
    """Register the native container adapters on *registry*.

    Importing the wrapper module triggers the (cached) build; callers
    must have probed the backend first.
    """
    from repro.kernels.native import kernels as k

    @registry.register("spmv", "COO", BACKEND)
    def _coo_spmv(m, x: np.ndarray) -> np.ndarray:
        return k.coo_spmv(m.nrows, m.row, m.col, m.data, x)

    @registry.register("spmv", "CSR", BACKEND)
    def _csr_spmv(m, x: np.ndarray) -> np.ndarray:
        return k.csr_spmv(m.row_ptr, m.col_idx, m.data, x)

    @registry.register("spmv", "DIA", BACKEND)
    def _dia_spmv(m, x: np.ndarray) -> np.ndarray:
        return k.dia_spmv(m.nrows, m.ncols, m.offsets, m.data, x)

    @registry.register("spmv", "ELL", BACKEND)
    def _ell_spmv(m, x: np.ndarray) -> np.ndarray:
        return k.ell_spmv(m.col_idx, m.data, x)

    @registry.register("spmv", "HYB", BACKEND)
    def _hyb_spmv(m, x: np.ndarray) -> np.ndarray:
        y = k.ell_spmv(m.ell.col_idx, m.ell.data, x)
        if m.coo.nnz:
            y = y + k.coo_spmv(m.nrows, m.coo.row, m.coo.col, m.coo.data, x)
        return y

    @registry.register("spmv", "HDC", BACKEND)
    def _hdc_spmv(m, x: np.ndarray) -> np.ndarray:
        return k.dia_spmv(
            m.nrows, m.ncols, m.dia.offsets, m.dia.data, x
        ) + k.csr_spmv(m.csr.row_ptr, m.csr.col_idx, m.csr.data, x)

    @registry.register("spmm", "COO", BACKEND)
    def _coo_spmm(m, X: np.ndarray) -> np.ndarray:
        return k.coo_spmm(m.nrows, m.row, m.col, m.data, X)

    @registry.register("spmm", "CSR", BACKEND)
    def _csr_spmm(m, X: np.ndarray) -> np.ndarray:
        return k.csr_spmm(m.row_ptr, m.col_idx, m.data, X)

    @registry.register("spmm", "DIA", BACKEND)
    def _dia_spmm(m, X: np.ndarray) -> np.ndarray:
        return k.dia_spmm(m.nrows, m.ncols, m.offsets, m.data, X)

    @registry.register("spmm", "ELL", BACKEND)
    def _ell_spmm(m, X: np.ndarray) -> np.ndarray:
        return k.ell_spmm(m.col_idx, m.data, X)

    @registry.register("spmm", "HYB", BACKEND)
    def _hyb_spmm(m, X: np.ndarray) -> np.ndarray:
        Y = k.ell_spmm(m.ell.col_idx, m.ell.data, X)
        if m.coo.nnz:
            Y = Y + k.coo_spmm(m.nrows, m.coo.row, m.coo.col, m.coo.data, X)
        return Y

    @registry.register("spmm", "HDC", BACKEND)
    def _hdc_spmm(m, X: np.ndarray) -> np.ndarray:
        return k.dia_spmm(
            m.nrows, m.ncols, m.dia.offsets, m.dia.data, X
        ) + k.csr_spmm(m.csr.row_ptr, m.csr.col_idx, m.csr.data, X)
