"""The ``numpy`` kernel backend — generation 1, always available.

Pure-NumPy vectorised kernels (:mod:`repro.kernels.numpy.kernels`) plus the
container adapters that register them on a kernel registry under backend id
``"numpy"``.  This generation defines the reference semantics: every
compiled generation must produce output equal to these kernels (bitwise on
integer-valued data, where summation order cannot change the result).

The HYB/HDC adapters compose through the *registry* (same backend), so a
caller that overrides e.g. the ``("spmv", "ELL", "numpy")`` entry improves
HYB automatically — the behaviour the pre-backend registry had.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.numpy.kernels import (  # noqa: F401  (re-exported API)
    coo_spmm,
    coo_spmv,
    csr_spmm,
    csr_spmv,
    dia_spmm,
    dia_spmv,
    ell_spmm,
    ell_spmv,
    hdc_spmv,
    hyb_spmv,
)

__all__ = [
    "BACKEND",
    "GENERATION",
    "register",
    "coo_spmv",
    "csr_spmv",
    "dia_spmv",
    "ell_spmv",
    "hyb_spmv",
    "hdc_spmv",
    "coo_spmm",
    "csr_spmm",
    "dia_spmm",
    "ell_spmm",
]

#: Backend identifier used in the dispatch table.
BACKEND = "numpy"

#: Kernel generation (1 = reference tier).
GENERATION = 1


def register(registry) -> None:
    """Register the NumPy container adapters on *registry*."""

    @registry.register("spmv", "COO", BACKEND)
    def _coo_spmv(m, x: np.ndarray) -> np.ndarray:
        return coo_spmv(m.nrows, m.row, m.col, m.data, x)

    @registry.register("spmv", "CSR", BACKEND)
    def _csr_spmv(m, x: np.ndarray) -> np.ndarray:
        return csr_spmv(m.row_ptr, m.col_idx, m.data, x)

    @registry.register("spmv", "DIA", BACKEND)
    def _dia_spmv(m, x: np.ndarray) -> np.ndarray:
        return dia_spmv(m.nrows, m.ncols, m.offsets, m.data, x)

    @registry.register("spmv", "ELL", BACKEND)
    def _ell_spmv(m, x: np.ndarray) -> np.ndarray:
        return ell_spmv(m.col_idx, m.data, x, valid=m._valid)

    @registry.register("spmv", "HYB", BACKEND)
    def _hyb_spmv(m, x: np.ndarray) -> np.ndarray:
        y = registry.get("spmv", "ELL", BACKEND)(m.ell, x)
        if m.coo.nnz:
            y = y + registry.get("spmv", "COO", BACKEND)(m.coo, x)
        return y

    @registry.register("spmv", "HDC", BACKEND)
    def _hdc_spmv(m, x: np.ndarray) -> np.ndarray:
        return registry.get("spmv", "DIA", BACKEND)(m.dia, x) + registry.get(
            "spmv", "CSR", BACKEND
        )(m.csr, x)

    @registry.register("spmm", "COO", BACKEND)
    def _coo_spmm(m, X: np.ndarray) -> np.ndarray:
        return coo_spmm(m.nrows, m.row, m.col, m.data, X)

    @registry.register("spmm", "CSR", BACKEND)
    def _csr_spmm(m, X: np.ndarray) -> np.ndarray:
        return csr_spmm(m.row_ptr, m.col_idx, m.data, X)

    @registry.register("spmm", "DIA", BACKEND)
    def _dia_spmm(m, X: np.ndarray) -> np.ndarray:
        return dia_spmm(m.nrows, m.ncols, m.offsets, m.data, X)

    @registry.register("spmm", "ELL", BACKEND)
    def _ell_spmm(m, X: np.ndarray) -> np.ndarray:
        return ell_spmm(m.col_idx, m.data, X, valid=m._valid)

    @registry.register("spmm", "HYB", BACKEND)
    def _hyb_spmm(m, X: np.ndarray) -> np.ndarray:
        Y = registry.get("spmm", "ELL", BACKEND)(m.ell, X)
        if m.coo.nnz:
            Y = Y + registry.get("spmm", "COO", BACKEND)(m.coo, X)
        return Y

    @registry.register("spmm", "HDC", BACKEND)
    def _hdc_spmm(m, X: np.ndarray) -> np.ndarray:
        return registry.get("spmm", "DIA", BACKEND)(m.dia, X) + registry.get(
            "spmm", "CSR", BACKEND
        )(m.csr, X)
