"""Raw-array SpMV / SpMM kernels — the NumPy reference generation.

One vectorised kernel per (operation, simple format), operating on the
format's bare arrays the way a C kernel library would.  These functions are
the reference semantics every compiled kernel generation
(:mod:`repro.kernels.numba`, :mod:`repro.kernels.native`) is checked
against: the kernel registry (:mod:`repro.runtime.registry`) maps
``(operation, format, backend)`` to thin container adapters, and the
``"numpy"`` backend's adapters wrap these functions.  Composite formats
(HYB, HDC) have no dedicated kernels — the registry composes their block
kernels.

Correctness is cross-checked against scipy and dense references in the test
suite; the kernels must never rely on column order within a row.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "coo_spmv",
    "csr_spmv",
    "dia_spmv",
    "ell_spmv",
    "hyb_spmv",
    "hdc_spmv",
    "coo_spmm",
    "csr_spmm",
    "dia_spmm",
    "ell_spmm",
]


# ----------------------------------------------------------------------
# single-vector kernels: y = A @ x
# ----------------------------------------------------------------------


def coo_spmv(
    nrows: int,
    row: np.ndarray,
    col: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """COO kernel: scatter-add of per-entry products."""
    return np.bincount(row, weights=data * x[col], minlength=nrows)


def csr_spmv(
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """CSR kernel via prefix sums of the per-entry products.

    The cumulative-sum formulation handles empty rows uniformly (unlike
    ``np.add.reduceat``) and keeps the kernel fully vectorised.
    """
    nrows = row_ptr.shape[0] - 1
    nnz = data.shape[0]
    if nnz == 0:
        return np.zeros(nrows, dtype=np.float64)
    products = data * x[col_idx]
    prefix = np.empty(nnz + 1, dtype=np.float64)
    prefix[0] = 0.0
    np.cumsum(products, out=prefix[1:])
    return prefix[row_ptr[1:]] - prefix[row_ptr[:-1]]


def dia_spmv(
    nrows: int,
    ncols: int,
    offsets: np.ndarray,
    dia_data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """DIA kernel: one vectorised pass per diagonal.

    The per-diagonal loop mirrors production DIA kernels; ``ndiags`` is
    small exactly when DIA is the right format.
    """
    y = np.zeros(nrows, dtype=np.float64)
    for k, off in enumerate(offsets):
        j_lo = max(0, int(off))
        j_hi = min(ncols, nrows + int(off))
        if j_hi <= j_lo:
            continue
        y[j_lo - int(off): j_hi - int(off)] += dia_data[k, j_lo:j_hi] * x[j_lo:j_hi]
    return y


def ell_spmv(
    col_idx: np.ndarray,
    ell_data: np.ndarray,
    x: np.ndarray,
    valid: np.ndarray | None = None,
) -> np.ndarray:
    """ELL kernel: masked gather over the fixed-width slots.

    ``valid`` is the padding mask (``col_idx >= 0``); callers that cache it
    (the ELL container) pass it in to skip recomputation.
    """
    if ell_data.shape[1] == 0:
        return np.zeros(ell_data.shape[0], dtype=np.float64)
    if valid is None:
        valid = col_idx >= 0
    gathered = x[np.where(valid, col_idx, 0)]
    return (ell_data * np.where(valid, gathered, 0.0)).sum(axis=1)


def hyb_spmv(
    nrows: int,
    ell_col_idx: np.ndarray,
    ell_data: np.ndarray,
    coo_row: np.ndarray,
    coo_col: np.ndarray,
    coo_data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """HYB kernel: ELL block plus COO overflow block."""
    y = ell_spmv(ell_col_idx, ell_data, x)
    if coo_row.shape[0]:
        y += coo_spmv(nrows, coo_row, coo_col, coo_data, x)
    return y


def hdc_spmv(
    nrows: int,
    ncols: int,
    offsets: np.ndarray,
    dia_data: np.ndarray,
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    csr_data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """HDC kernel: true-diagonal DIA block plus CSR remainder."""
    y = dia_spmv(nrows, ncols, offsets, dia_data, x)
    y += csr_spmv(row_ptr, col_idx, csr_data, x)
    return y


# ----------------------------------------------------------------------
# block kernels: Y = A @ X for an (ncols, k) dense block
# ----------------------------------------------------------------------


def coo_spmm(
    nrows: int,
    row: np.ndarray,
    col: np.ndarray,
    data: np.ndarray,
    X: np.ndarray,
) -> np.ndarray:
    """COO block kernel: one scatter-add pass per right-hand side."""
    out = np.zeros((nrows, X.shape[1]), dtype=np.float64)
    if row.shape[0] == 0:
        return out
    contrib = data[:, None] * X[col]
    # one bincount per column keeps everything vectorised without add.at
    for j in range(X.shape[1]):
        out[:, j] = np.bincount(row, weights=contrib[:, j], minlength=nrows)
    return out


def csr_spmm(
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    data: np.ndarray,
    X: np.ndarray,
) -> np.ndarray:
    """CSR block kernel: the prefix-sum trick applied column-block wide."""
    nrows = row_ptr.shape[0] - 1
    nnz = data.shape[0]
    if nnz == 0:
        return np.zeros((nrows, X.shape[1]), dtype=np.float64)
    products = data[:, None] * X[col_idx]
    prefix = np.zeros((nnz + 1, X.shape[1]), dtype=np.float64)
    np.cumsum(products, axis=0, out=prefix[1:])
    return prefix[row_ptr[1:]] - prefix[row_ptr[:-1]]


def dia_spmm(
    nrows: int,
    ncols: int,
    offsets: np.ndarray,
    dia_data: np.ndarray,
    X: np.ndarray,
) -> np.ndarray:
    """DIA block kernel: one vectorised pass per diagonal, all columns."""
    out = np.zeros((nrows, X.shape[1]), dtype=np.float64)
    for k, off in enumerate(offsets):
        j_lo = max(0, int(off))
        j_hi = min(ncols, nrows + int(off))
        if j_hi <= j_lo:
            continue
        out[j_lo - int(off): j_hi - int(off)] += (
            dia_data[k, j_lo:j_hi, None] * X[j_lo:j_hi]
        )
    return out


def ell_spmm(
    col_idx: np.ndarray,
    ell_data: np.ndarray,
    X: np.ndarray,
    valid: np.ndarray | None = None,
) -> np.ndarray:
    """ELL block kernel: masked gather over slots, all columns at once."""
    if ell_data.shape[1] == 0:
        return np.zeros((ell_data.shape[0], X.shape[1]), dtype=np.float64)
    if valid is None:
        valid = col_idx >= 0
    gathered = X[np.where(valid, col_idx, 0)]            # (m, w, k)
    gathered *= np.where(valid, ell_data, 0.0)[:, :, None]
    return gathered.sum(axis=1)
