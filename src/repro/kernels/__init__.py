"""Kernel backends: side-by-side generations behind a capability probe.

This package holds every kernel implementation the dispatch layer
(:mod:`repro.runtime.registry`) can route to, one sub-package per
*kernel backend*:

========  ==========  =====================================================
backend   generation  implementation
========  ==========  =====================================================
numpy     1           vectorised NumPy — the always-available reference
native    2           ahead-of-time C via the system compiler + ctypes
numba     2           Numba ``@njit`` row loops, JIT on first touch
========  ==========  =====================================================

A *kernel backend* is a real implementation tier executing on this host.
It is deliberately distinct from the **modelled** backend axis of
:class:`repro.backends.base.ExecutionSpace` (``serial``/``openmp``/
``cuda``/``hip``), which simulates the paper's hardware zoo through the
roofline cost model.  The two axes compose: a space models *where* the
paper ran, the kernel backend decides *which code path* produces the
numbers here.

Capability probing
------------------
:func:`probe_backends` discovers, once per process, which compiled tiers
actually work — Numba importable, a C compiler present and the library
building — and :func:`available_backends` lists the usable ones in
preference order (``numba``, ``native``, ``numpy``).  Unavailable or
masked backends are never registered as *default* choices; dispatch falls
back down the preference order and always lands on ``numpy``.

Masking
-------
Two knobs restrict the compiled tiers without uninstalling anything, for
tests and CI fallback drills:

* ``REPRO_KERNEL_BACKENDS=numpy,native`` — environment allowlist, read at
  every query;
* :func:`set_enabled_backends` / :func:`only_backends` — in-process
  override with the same semantics.

The ``numpy`` reference tier can never be masked.

Adding a generation
-------------------
Drop a sub-package ``repro/kernels/<name>/`` exposing ``BACKEND``,
``GENERATION`` and ``register(registry)``, add its probe to
:func:`probe_backends` and its name to :data:`PREFERENCE`; see
``docs/backends.md`` for the walk-through.
"""

from __future__ import annotations

import contextlib
import importlib
import importlib.util
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import BackendError

__all__ = [
    "PREFERENCE",
    "ENV_ALLOWLIST",
    "KernelBackendInfo",
    "probe_backends",
    "backend_info",
    "available_backends",
    "default_backend",
    "is_available",
    "check_kernel_backend",
    "require_backend",
    "set_enabled_backends",
    "enabled_backends",
    "only_backends",
    "gpu_backend_available",
    "modelled_speedup",
    "modelled_warmup_seconds",
    "register_default_backends",
    "delta_kernels",
]

#: Resolution preference, best first.  ``numpy`` is the terminal fallback.
PREFERENCE: Tuple[str, ...] = ("numba", "native", "numpy")

#: Environment allowlist variable (comma-separated backend names).
ENV_ALLOWLIST = "REPRO_KERNEL_BACKENDS"


@dataclass(frozen=True)
class KernelBackendInfo:
    """Probe outcome for one kernel backend."""

    name: str
    generation: int
    available: bool
    compiled: bool
    jit: bool
    detail: str


_probed: Optional[Dict[str, KernelBackendInfo]] = None
_enabled_override: Optional[Tuple[str, ...]] = None


def _probe_numba() -> KernelBackendInfo:
    spec = importlib.util.find_spec("numba")
    if spec is None:
        return KernelBackendInfo(
            "numba", 2, False, True, True, "numba is not installed"
        )
    try:
        numba = importlib.import_module("numba")
    except Exception as exc:  # pragma: no cover - broken install
        return KernelBackendInfo(
            "numba", 2, False, True, True, f"numba import failed: {exc}"
        )
    version = getattr(numba, "__version__", "unknown")
    return KernelBackendInfo(
        "numba", 2, True, True, True, f"numba {version}, JIT on first touch"
    )


def _probe_native() -> KernelBackendInfo:
    from repro.kernels.native import builder

    try:
        builder.load()
    except BackendError as exc:
        return KernelBackendInfo("native", 2, False, True, False, str(exc))
    return KernelBackendInfo(
        "native", 2, True, True, False, builder.build_detail()
    )


def probe_backends(*, refresh: bool = False) -> Dict[str, KernelBackendInfo]:
    """Probe every known backend once per process (``refresh`` re-probes)."""
    global _probed
    if _probed is None or refresh:
        _probed = {
            "numpy": KernelBackendInfo(
                "numpy", 1, True, False, False,
                "vectorised NumPy reference (always available)",
            ),
            "native": _probe_native(),
            "numba": _probe_numba(),
        }
    return dict(_probed)


def gpu_backend_available() -> bool:
    """True when a device-resident GPU kernel backend can be registered.

    The registry currently carries CPU generations only; the GPU
    execution spaces (cuda/hip) are *modelled* through the cost model,
    not executed on a device.  A real GPU tier needs CuPy, so this
    probes for an importable ``cupy`` — benchmarks asserting on-device
    behaviour call it to skip cleanly on CPU-only hosts.
    """
    return importlib.util.find_spec("cupy") is not None


def backend_info(name: str) -> KernelBackendInfo:
    """Probe outcome for one backend; raises on unknown names."""
    return probe_backends()[check_kernel_backend(name)]


def check_kernel_backend(name: str) -> str:
    """Normalise a kernel-backend name, raising on unknown ones."""
    normalised = str(name).strip().lower()
    if normalised not in PREFERENCE:
        raise BackendError(
            f"unknown kernel backend {name!r}; known: {sorted(PREFERENCE)}"
        )
    return normalised


def _env_allowlist() -> Optional[Tuple[str, ...]]:
    raw = os.environ.get(ENV_ALLOWLIST)
    if raw is None or not raw.strip():
        return None
    names = tuple(
        part.strip().lower() for part in raw.split(",") if part.strip()
    )
    return tuple(n for n in names if n in PREFERENCE)


def available_backends() -> Tuple[str, ...]:
    """Usable kernel backends in preference order; ``numpy`` always last.

    A backend is usable when its probe succeeded *and* neither the
    :data:`ENV_ALLOWLIST` variable nor :func:`set_enabled_backends`
    masks it.  ``numpy`` cannot be masked.
    """
    probed = probe_backends()
    allow_env = _env_allowlist()
    allow_run = _enabled_override
    out = []
    for name in PREFERENCE:
        if not probed[name].available:
            continue
        if name != "numpy":
            if allow_env is not None and name not in allow_env:
                continue
            if allow_run is not None and name not in allow_run:
                continue
        out.append(name)
    return tuple(out)


def default_backend() -> str:
    """The best available backend (what ``kernel_backend="auto"`` picks)."""
    return available_backends()[0]


def is_available(name: str) -> bool:
    """Whether *name* is a usable (probed + unmasked) backend."""
    return check_kernel_backend(name) in available_backends()


def require_backend(name: str) -> str:
    """Normalise *name* and raise unless it is currently usable."""
    normalised = check_kernel_backend(name)
    if normalised not in available_backends():
        raise BackendError(
            f"kernel backend {normalised!r} is not available: "
            f"{probe_backends()[normalised].detail}"
        )
    return normalised


def set_enabled_backends(names: Optional[Iterable[str]]) -> None:
    """Mask compiled backends in-process (``None`` clears the mask).

    Same semantics as the :data:`ENV_ALLOWLIST` variable: only listed
    compiled backends stay usable; ``numpy`` is always usable.
    """
    global _enabled_override
    if names is None:
        _enabled_override = None
        return
    _enabled_override = tuple(check_kernel_backend(n) for n in names)


def enabled_backends() -> Optional[Tuple[str, ...]]:
    """The current in-process mask, or ``None`` when unmasked."""
    return _enabled_override


@contextlib.contextmanager
def only_backends(*names: str):
    """Context manager scoping :func:`set_enabled_backends`."""
    previous = _enabled_override
    set_enabled_backends(names)
    try:
        yield
    finally:
        set_enabled_backends(previous)


# ----------------------------------------------------------------------
# modelled costs: how the simulated-clock cost model sees the backends
# ----------------------------------------------------------------------

#: Modelled per-format speedup over the numpy reference tier on CPU
#: archetypes.  Calibrated from the bench_kernels backend table: row-loop
#: compiled kernels help most where the reference pays for masked gathers
#: and temporaries (ELL/HYB), least where NumPy already calls into C
#: (COO's bincount).
_MODELLED_SPEEDUP: Dict[str, Dict[str, float]] = {
    "numba": {
        "COO": 3.0, "CSR": 6.0, "DIA": 4.0,
        "ELL": 7.0, "HYB": 6.0, "HDC": 5.0,
    },
    "native": {
        "COO": 2.5, "CSR": 5.0, "DIA": 3.0,
        "ELL": 6.0, "HYB": 5.0, "HDC": 4.0,
    },
}

#: Modelled first-touch warm-up per (operation, format), seconds.
_MODELLED_WARMUP = {"numpy": 0.0, "native": 0.0, "numba": 1.2}


def modelled_speedup(backend: str, fmt: str) -> float:
    """Modelled speedup of *backend* over numpy for *fmt* (CPU archetypes)."""
    normalised = check_kernel_backend(backend)
    return _MODELLED_SPEEDUP.get(normalised, {}).get(str(fmt).upper(), 1.0)


def modelled_warmup_seconds(backend: str) -> float:
    """Modelled per-kernel warm-up cost of *backend* in seconds."""
    return _MODELLED_WARMUP[check_kernel_backend(backend)]


# ----------------------------------------------------------------------
# registration and compiled helpers
# ----------------------------------------------------------------------


def register_default_backends(registry) -> None:
    """Register every *probe-available* backend's kernels on *registry*.

    Masked-but-available backends are still registered — masking is a
    resolution-time filter (:func:`available_backends`), so lifting a
    mask mid-process does not require re-registration.
    """
    from repro.kernels import numpy as numpy_backend

    numpy_backend.register(registry)
    probed = probe_backends()
    for name in ("native", "numba"):
        if not probed[name].available:
            continue
        module = importlib.import_module(f"repro.kernels.{name}")
        try:
            module.register(registry)
        except Exception as exc:  # pragma: no cover - late build breakage
            global _probed
            assert _probed is not None
            _probed[name] = KernelBackendInfo(
                name, 2, False, True, name == "numba",
                f"registration failed: {exc}",
            )


def delta_kernels():
    """The compiled delta-merge kernels, or ``None`` without Numba.

    Consulted by :mod:`repro.formats.delta` on every merge, so masking
    the numba backend also routes delta folding back to the NumPy path.
    """
    if "numba" not in available_backends():
        return None
    from repro.kernels import numba as numba_backend

    return numba_backend.delta_kernels()
