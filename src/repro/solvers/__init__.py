"""Iterative solvers over DynamicMatrix operators.

The paper motivates the auto-tuner with iterative solvers whose runtime is
dominated by SpMV (Section I).  These reference implementations exercise
that access pattern against the public API: thousands of ``spmv`` calls on
one operator, which a single up-front tuning decision accelerates.
"""

from repro.solvers.cg import ConjugateGradientResult, conjugate_gradient
from repro.solvers.jacobi import JacobiResult, jacobi
from repro.solvers.power import PowerIterationResult, power_iteration

__all__ = [
    "conjugate_gradient",
    "ConjugateGradientResult",
    "jacobi",
    "JacobiResult",
    "power_iteration",
    "PowerIterationResult",
]
