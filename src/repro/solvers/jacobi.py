"""Jacobi iteration for diagonally dominant systems.

Each sweep applies ``A`` once through the runtime's batched executor
(:func:`repro.runtime.batch.matvec`); an ``(n, k)`` right-hand-side block
runs all ``k`` solves per sweep with a single batched SpMV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix
from repro.runtime.batch import matvec

__all__ = ["jacobi", "JacobiResult"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


@dataclass(frozen=True)
class JacobiResult:
    """Solution plus convergence bookkeeping.

    For a block right-hand side ``x`` is ``(n, k)``, ``residual_norm`` is
    the worst column's residual and ``converged`` requires every column.
    """

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    spmv_calls: int


def _diagonal(A: MatrixLike) -> np.ndarray:
    concrete = A.concrete if isinstance(A, DynamicMatrix) else A
    return concrete.diagonal()


def jacobi(
    A: MatrixLike,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 10_000,
) -> JacobiResult:
    """Solve ``A x = b`` with the (damped-free) Jacobi splitting.

    ``x_{k+1} = x_k + D^{-1} (b - A x_k)`` — one SpMV per sweep.
    Converges for strictly diagonally dominant operators.  ``b`` may be a
    length-``n`` vector or an ``(n, k)`` block of right-hand sides.
    """
    nrows, ncols = A.shape
    if nrows != ncols:
        raise ValidationError(f"Jacobi needs a square operator, got {nrows}x{ncols}")
    b = np.ascontiguousarray(b, dtype=np.float64)
    block = b.ndim == 2
    if block:
        if b.shape[0] != nrows:
            raise ValidationError(f"b must have shape ({nrows}, k), got {b.shape}")
    elif b.shape != (nrows,):
        raise ValidationError(f"b must have shape ({nrows},), got {b.shape}")
    diag = _diagonal(A)
    if np.any(diag == 0.0):
        raise ValidationError("Jacobi requires a zero-free diagonal")
    inv_diag = 1.0 / diag
    if block:
        inv_diag = inv_diag[:, None]
    x = (
        np.zeros(b.shape)
        if x0 is None
        else np.ascontiguousarray(x0, dtype=np.float64).copy()
    )
    if x.shape != b.shape:
        raise ValidationError(f"x0 must have shape {b.shape}, got {x.shape}")
    if block:
        b_norms = np.linalg.norm(b, axis=0)
        targets = tol * np.where(b_norms > 0.0, b_norms, 1.0)
    else:
        targets = tol * (float(np.linalg.norm(b)) or 1.0)
    spmv_calls = 0
    residual = np.inf
    col_residuals = np.full(b.shape[1] if block else 0, np.inf)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        r = b - matvec(A, x)
        spmv_calls += 1
        if block:
            col_residuals = np.linalg.norm(r, axis=0)
            residual = float(col_residuals.max()) if r.shape[1] else 0.0
            if np.all(col_residuals <= targets):
                break
        else:
            residual = float(np.linalg.norm(r))
            if residual <= targets:
                break
        x += inv_diag * r
    converged = (
        bool(np.all(col_residuals <= targets)) if block else residual <= targets
    )
    return JacobiResult(
        x=x,
        iterations=iterations,
        residual_norm=residual,
        converged=converged,
        spmv_calls=spmv_calls,
    )
