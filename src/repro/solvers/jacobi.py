"""Jacobi iteration for diagonally dominant systems."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix

__all__ = ["jacobi", "JacobiResult"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


@dataclass(frozen=True)
class JacobiResult:
    """Solution plus convergence bookkeeping."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    spmv_calls: int


def _diagonal(A: MatrixLike) -> np.ndarray:
    concrete = A.concrete if isinstance(A, DynamicMatrix) else A
    return concrete.diagonal()


def jacobi(
    A: MatrixLike,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 10_000,
) -> JacobiResult:
    """Solve ``A x = b`` with the (damped-free) Jacobi splitting.

    ``x_{k+1} = x_k + D^{-1} (b - A x_k)`` — one SpMV per sweep.
    Converges for strictly diagonally dominant operators.
    """
    nrows, ncols = A.shape
    if nrows != ncols:
        raise ValidationError(f"Jacobi needs a square operator, got {nrows}x{ncols}")
    b = np.ascontiguousarray(b, dtype=np.float64)
    if b.shape != (nrows,):
        raise ValidationError(f"b must have shape ({nrows},), got {b.shape}")
    diag = _diagonal(A)
    if np.any(diag == 0.0):
        raise ValidationError("Jacobi requires a zero-free diagonal")
    inv_diag = 1.0 / diag
    x = (
        np.zeros(nrows)
        if x0 is None
        else np.ascontiguousarray(x0, dtype=np.float64).copy()
    )
    b_norm = float(np.linalg.norm(b)) or 1.0
    target = tol * b_norm
    spmv_calls = 0
    residual = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        r = b - A.spmv(x)
        spmv_calls += 1
        residual = float(np.linalg.norm(r))
        if residual <= target:
            break
        x += inv_diag * r
    return JacobiResult(
        x=x,
        iterations=iterations,
        residual_norm=residual,
        converged=residual <= target,
        spmv_calls=spmv_calls,
    )
