"""Power iteration for the dominant eigenpair.

The hot loop routes ``A @ v`` through the runtime's batched executor
(:func:`repro.runtime.batch.matvec`), reusing the matrix's cached
compiled operator across iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix
from repro.runtime.batch import matvec
from repro.utils.rng import ensure_generator

__all__ = ["power_iteration", "PowerIterationResult"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


@dataclass(frozen=True)
class PowerIterationResult:
    """Dominant eigenpair estimate plus bookkeeping."""

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    converged: bool
    spmv_calls: int


def power_iteration(
    A: MatrixLike,
    *,
    tol: float = 1e-10,
    max_iterations: int = 5_000,
    seed: int | None = 0,
) -> PowerIterationResult:
    """Estimate the dominant eigenvalue/vector of a square operator.

    One SpMV per iteration (PageRank-style workloads on the graph
    matrices in the corpus).
    """
    nrows, ncols = A.shape
    if nrows != ncols:
        raise ValidationError(
            f"power iteration needs a square operator, got {nrows}x{ncols}"
        )
    rng = ensure_generator(seed)
    v = rng.standard_normal(nrows)
    v /= np.linalg.norm(v)
    eigenvalue = 0.0
    spmv_calls = 0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        w = matvec(A, v)
        spmv_calls += 1
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            # v is in the null space; the dominant eigenvalue is 0
            return PowerIterationResult(0.0, v, iterations, True, spmv_calls)
        w /= norm
        new_eigenvalue = float(w @ matvec(A, w))
        spmv_calls += 1
        if abs(new_eigenvalue - eigenvalue) <= tol * max(1.0, abs(new_eigenvalue)):
            eigenvalue = new_eigenvalue
            v = w
            converged = True
            break
        eigenvalue = new_eigenvalue
        v = w
    return PowerIterationResult(
        eigenvalue=eigenvalue,
        eigenvector=v,
        iterations=iterations,
        converged=converged,
        spmv_calls=spmv_calls,
    )
