"""Conjugate gradient for symmetric positive-definite sparse systems."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix

__all__ = ["conjugate_gradient", "ConjugateGradientResult"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


@dataclass(frozen=True)
class ConjugateGradientResult:
    """Solution plus convergence bookkeeping."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    spmv_calls: int


def conjugate_gradient(
    A: MatrixLike,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int | None = None,
) -> ConjugateGradientResult:
    """Solve ``A x = b`` for SPD ``A`` with (unpreconditioned) CG.

    One SpMV per iteration — the workload class the auto-tuner's overhead
    is amortised against (Section VII-E).

    Parameters
    ----------
    A:
        Square SPD operator (any format / DynamicMatrix).
    b:
        Right-hand side.
    x0:
        Initial guess (zeros by default).
    tol:
        Relative residual tolerance ``||r|| <= tol * ||b||``.
    max_iterations:
        Cap (default ``10 * n``).
    """
    nrows, ncols = A.shape
    if nrows != ncols:
        raise ValidationError(f"CG needs a square operator, got {nrows}x{ncols}")
    b = np.ascontiguousarray(b, dtype=np.float64)
    if b.shape != (nrows,):
        raise ValidationError(f"b must have shape ({nrows},), got {b.shape}")
    if max_iterations is None:
        max_iterations = 10 * nrows
    x = (
        np.zeros(nrows)
        if x0 is None
        else np.ascontiguousarray(x0, dtype=np.float64).copy()
    )
    spmv_calls = 0
    r = b - A.spmv(x)
    spmv_calls += 1
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    target = tol * b_norm
    iterations = 0
    while iterations < max_iterations:
        if np.sqrt(rs_old) <= target:
            break
        Ap = A.spmv(p)
        spmv_calls += 1
        pAp = float(p @ Ap)
        if pAp <= 0:
            raise ValidationError(
                "operator is not positive definite (p^T A p <= 0)"
            )
        alpha = rs_old / pAp
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
        iterations += 1
    residual = float(np.sqrt(rs_old))
    return ConjugateGradientResult(
        x=x,
        iterations=iterations,
        residual_norm=residual,
        converged=residual <= target,
        spmv_calls=spmv_calls,
    )
