"""Conjugate gradient for symmetric positive-definite sparse systems.

The hot loop routes every application of ``A`` through the runtime's
batched executor (:func:`repro.runtime.batch.matvec`), so repeated
iterations reuse the matrix's cached compiled operator — and a 2-D
right-hand-side block ``(n, k)`` runs all ``k`` solves simultaneously as a
block CG with per-column step sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.dynamic import DynamicMatrix
from repro.runtime.batch import matvec

__all__ = ["conjugate_gradient", "ConjugateGradientResult"]

MatrixLike = Union[SparseMatrix, DynamicMatrix]


@dataclass(frozen=True)
class ConjugateGradientResult:
    """Solution plus convergence bookkeeping.

    For a block right-hand side ``x`` is ``(n, k)``, ``residual_norm`` is
    the worst column's residual and ``converged`` requires every column.
    """

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    spmv_calls: int


def conjugate_gradient(
    A: MatrixLike,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int | None = None,
) -> ConjugateGradientResult:
    """Solve ``A x = b`` for SPD ``A`` with (unpreconditioned) CG.

    One SpMV per iteration — the workload class the auto-tuner's overhead
    is amortised against (Section VII-E).

    Parameters
    ----------
    A:
        Square SPD operator (any format / DynamicMatrix).
    b:
        Right-hand side: a length-``n`` vector, or an ``(n, k)`` block to
        solve ``k`` systems at once (one batched SpMV per iteration).
    x0:
        Initial guess (zeros by default), same shape as ``b``.
    tol:
        Relative residual tolerance ``||r|| <= tol * ||b||`` (per column
        for a block).
    max_iterations:
        Cap (default ``10 * n``).
    """
    nrows, ncols = A.shape
    if nrows != ncols:
        raise ValidationError(f"CG needs a square operator, got {nrows}x{ncols}")
    b = np.ascontiguousarray(b, dtype=np.float64)
    if b.ndim == 2:
        if b.shape[0] != nrows:
            raise ValidationError(
                f"b must have shape ({nrows}, k), got {b.shape}"
            )
        return _block_cg(A, b, x0=x0, tol=tol, max_iterations=max_iterations)
    if b.shape != (nrows,):
        raise ValidationError(f"b must have shape ({nrows},), got {b.shape}")
    if max_iterations is None:
        max_iterations = 10 * nrows
    x = (
        np.zeros(nrows)
        if x0 is None
        else np.ascontiguousarray(x0, dtype=np.float64).copy()
    )
    spmv_calls = 0
    r = b - matvec(A, x)
    spmv_calls += 1
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    target = tol * b_norm
    iterations = 0
    while iterations < max_iterations:
        if np.sqrt(rs_old) <= target:
            break
        Ap = matvec(A, p)
        spmv_calls += 1
        pAp = float(p @ Ap)
        if pAp <= 0:
            raise ValidationError(
                "operator is not positive definite (p^T A p <= 0)"
            )
        alpha = rs_old / pAp
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
        iterations += 1
    residual = float(np.sqrt(rs_old))
    return ConjugateGradientResult(
        x=x,
        iterations=iterations,
        residual_norm=residual,
        converged=residual <= target,
        spmv_calls=spmv_calls,
    )


def _block_cg(
    A: MatrixLike,
    B: np.ndarray,
    *,
    x0: np.ndarray | None,
    tol: float,
    max_iterations: int | None,
) -> ConjugateGradientResult:
    """Solve the ``k`` independent systems of an ``(n, k)`` block together.

    Classic CG vectorised over columns: each column keeps its own step
    sizes, converged columns freeze (``alpha = 0``) while the rest keep
    iterating, and every iteration costs a single batched SpMV.
    """
    nrows, k = B.shape
    if max_iterations is None:
        max_iterations = 10 * nrows
    if x0 is None:
        X = np.zeros((nrows, k))
    else:
        X = np.ascontiguousarray(x0, dtype=np.float64).copy()
        if X.shape != B.shape:
            raise ValidationError(
                f"x0 must have shape {B.shape}, got {X.shape}"
            )
    spmv_calls = 0
    R = B - matvec(A, X)
    spmv_calls += 1
    P = R.copy()
    rs_old = np.einsum("ij,ij->j", R, R)
    b_norms = np.linalg.norm(B, axis=0)
    targets = tol * np.where(b_norms > 0.0, b_norms, 1.0)
    active = np.sqrt(rs_old) > targets
    iterations = 0
    while iterations < max_iterations and active.any():
        AP = matvec(A, P)
        spmv_calls += 1
        pAp = np.einsum("ij,ij->j", P, AP)
        if np.any(active & (pAp <= 0.0)):
            raise ValidationError(
                "operator is not positive definite (p^T A p <= 0)"
            )
        safe = np.where(pAp > 0.0, pAp, 1.0)
        alpha = np.where(active, rs_old / safe, 0.0)
        X += alpha * P
        R -= alpha * AP
        rs_new = np.einsum("ij,ij->j", R, R)
        beta = np.where(active & (rs_old > 0.0), rs_new / np.where(rs_old > 0.0, rs_old, 1.0), 0.0)
        P = R + beta * P
        rs_old = np.where(active, rs_new, rs_old)
        active = np.sqrt(rs_new) > targets
        iterations += 1
    residuals = np.sqrt(np.einsum("ij,ij->j", R, R))
    return ConjugateGradientResult(
        x=X,
        iterations=iterations,
        residual_norm=float(residuals.max()) if k else 0.0,
        converged=bool(np.all(residuals <= targets)),
        spmv_calls=spmv_calls,
    )
