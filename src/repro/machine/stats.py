"""Per-matrix structural statistics consumed by the performance models.

:class:`MatrixStats` is computed once per matrix (one pass over a COO/CSR
view) and carries everything the cost model and the feature extractor need:
shape, the row-length distribution, the diagonal census and the derived
per-format storage sizes (ELL width, DIA padding, HYB/HDC split sizes).

Keeping this separate from the containers means profiling 2200 matrices does
not require materialising six containers each — the stats fully determine
the modelled runtime of every format.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.formats.base import SparseMatrix
from repro.formats.hdc import default_hdc_threshold
from repro.formats.hyb import default_hyb_split

__all__ = ["MatrixStats"]

#: Bytes per stored value (float64).
VAL_BYTES = 8
#: Bytes per stored index (int64).
IDX_BYTES = 8


@dataclass(frozen=True)
class MatrixStats:
    """Structural summary of a sparse matrix.

    All fields are plain Python scalars so instances are cheap to cache,
    hash-friendly and trivially serialisable.
    """

    nrows: int
    ncols: int
    nnz: int
    # row-length distribution
    row_nnz_mean: float
    row_nnz_min: int
    row_nnz_max: int
    row_nnz_std: float
    n_empty_rows: int
    # diagonal census
    ndiags: int
    ntrue_diags: int
    true_diag_nnz: int
    # hybrid split sizes (computed with the formats' default parameters)
    hyb_k: int
    hyb_ell_nnz: int
    hyb_coo_nnz: int

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        matrix: SparseMatrix,
        *,
        true_diag_threshold: int | None = None,
    ) -> "MatrixStats":
        """Compute statistics from any concrete format container."""
        row_nnz = matrix.row_nnz()
        diag_nnz = matrix.diagonal_nnz()
        return cls.from_distributions(
            matrix.nrows,
            matrix.ncols,
            row_nnz,
            diag_nnz,
            true_diag_threshold=true_diag_threshold,
        )

    @classmethod
    def from_distributions(
        cls,
        nrows: int,
        ncols: int,
        row_nnz: np.ndarray,
        diag_nnz: np.ndarray,
        *,
        true_diag_threshold: int | None = None,
    ) -> "MatrixStats":
        """Build from pre-computed row / diagonal non-zero histograms."""
        nnz = int(row_nnz.sum())
        if true_diag_threshold is None:
            true_diag_threshold = default_hdc_threshold(nrows, ncols)
        true_mask = diag_nnz >= true_diag_threshold
        hyb_k = default_hyb_split(row_nnz)
        ell_per_row = np.minimum(row_nnz, hyb_k)
        hyb_ell_nnz = int(ell_per_row.sum())
        return cls(
            nrows=int(nrows),
            ncols=int(ncols),
            nnz=nnz,
            row_nnz_mean=float(row_nnz.mean()) if nrows else 0.0,
            row_nnz_min=int(row_nnz.min()) if nrows else 0,
            row_nnz_max=int(row_nnz.max()) if nrows else 0,
            row_nnz_std=float(row_nnz.std()) if nrows else 0.0,
            n_empty_rows=int((row_nnz == 0).sum()),
            ndiags=int(diag_nnz.shape[0]),
            ntrue_diags=int(true_mask.sum()),
            true_diag_nnz=int(diag_nnz[true_mask].sum()),
            hyb_k=int(hyb_k),
            hyb_ell_nnz=hyb_ell_nnz,
            hyb_coo_nnz=nnz - hyb_ell_nnz,
        )

    # ------------------------------------------------------------------
    # plain-dict serialisation (artifact stores, worker-pool transfer)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Field dict of plain scalars (JSON-safe, :meth:`from_dict` inverse)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "MatrixStats":
        """Rebuild from a :meth:`to_dict` payload (extra keys ignored)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})

    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        """Fill fraction ``nnz / (nrows * ncols)`` (the paper's ρ)."""
        denom = self.nrows * self.ncols
        return self.nnz / denom if denom else 0.0

    @property
    def ell_width(self) -> int:
        """ELL row width, ``max(row_nnz)``."""
        return self.row_nnz_max

    @property
    def ell_padded(self) -> int:
        """Stored slots in ELL, ``nrows * ell_width``."""
        return self.nrows * self.ell_width

    @property
    def ell_padding_ratio(self) -> float:
        """Padded slots / useful slots for ELL (>= 1; 1 means no waste)."""
        return self.ell_padded / self.nnz if self.nnz else 1.0

    @property
    def dia_padded(self) -> int:
        """Stored slots in DIA, ``ndiags * ncols``."""
        return self.ndiags * self.ncols

    @property
    def dia_padding_ratio(self) -> float:
        """Padded slots / useful slots for DIA."""
        return self.dia_padded / self.nnz if self.nnz else 1.0

    @property
    def hdc_dia_nnz(self) -> int:
        """Entries stored in HDC's DIA block."""
        return self.true_diag_nnz

    @property
    def hdc_csr_nnz(self) -> int:
        """Entries stored in HDC's CSR block."""
        return self.nnz - self.true_diag_nnz

    @property
    def hdc_dia_padded(self) -> int:
        """Stored slots in HDC's DIA block."""
        return self.ntrue_diags * self.ncols

    @property
    def row_imbalance(self) -> float:
        """``max(row_nnz) / mean(row_nnz)`` — load-imbalance proxy (>= 1)."""
        if self.row_nnz_mean <= 0:
            return 1.0
        return max(1.0, self.row_nnz_max / self.row_nnz_mean)

    @property
    def row_cv(self) -> float:
        """Coefficient of variation of row lengths (irregularity proxy)."""
        if self.row_nnz_mean <= 0:
            return 0.0
        return self.row_nnz_std / self.row_nnz_mean

    # ------------------------------------------------------------------
    # exact storage footprints (bytes) per format
    # ------------------------------------------------------------------
    def format_bytes(self, fmt: str) -> int:
        """Bytes occupied by this matrix stored in format *fmt*."""
        f = fmt.upper()
        if f == "COO":
            return self.nnz * (2 * IDX_BYTES + VAL_BYTES)
        if f == "CSR":
            return self.nnz * (IDX_BYTES + VAL_BYTES) + (self.nrows + 1) * IDX_BYTES
        if f == "DIA":
            return self.dia_padded * VAL_BYTES + self.ndiags * IDX_BYTES
        if f == "ELL":
            return self.ell_padded * (IDX_BYTES + VAL_BYTES)
        if f == "HYB":
            ell_bytes = self.nrows * self.hyb_k * (IDX_BYTES + VAL_BYTES)
            coo_bytes = self.hyb_coo_nnz * (2 * IDX_BYTES + VAL_BYTES)
            return ell_bytes + coo_bytes
        if f == "HDC":
            dia_bytes = self.hdc_dia_padded * VAL_BYTES + self.ntrue_diags * IDX_BYTES
            csr_bytes = (
                self.hdc_csr_nnz * (IDX_BYTES + VAL_BYTES)
                + (self.nrows + 1) * IDX_BYTES
            )
            return dia_bytes + csr_bytes
        raise ValueError(f"unknown format {fmt!r}")
