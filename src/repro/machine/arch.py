"""Architecture specifications for the simulated execution targets.

The numeric fields are transcriptions of published hardware characteristics
(vendor datasheets / STREAM and BabelStream measurements reported in the
open literature) for the processors in the paper's Table II.  They
parameterise the roofline cost model; absolute fidelity is not required —
the *ratios* between architectures and the format-sensitivity knobs
(warp width, cache, launch latency) are what shape the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = ["ArchSpec", "CPUSpec", "GPUSpec"]


@dataclass(frozen=True)
class ArchSpec:
    """Common fields of a compute device used for SpMV.

    Attributes
    ----------
    name:
        Human-readable device name, e.g. ``"AMD EPYC 7742"``.
    kind:
        ``"cpu"`` or ``"gpu"``.
    peak_bw_gbs:
        Achievable main-memory bandwidth of the full device in GB/s
        (STREAM-triad-like, not theoretical peak).
    peak_gflops:
        Double-precision throughput of the full device in GFLOP/s.
    llc_mib:
        Last-level cache (CPU) or L2 (GPU) capacity in MiB; decides whether
        the gathered ``x`` vector is cache-resident.
    """

    name: str
    kind: str
    peak_bw_gbs: float
    peak_gflops: float
    llc_mib: float

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise ValidationError(f"kind must be 'cpu' or 'gpu', got {self.kind!r}")
        for attr in ("peak_bw_gbs", "peak_gflops", "llc_mib"):
            if getattr(self, attr) <= 0:
                raise ValidationError(f"{attr} must be positive")

    @property
    def peak_bw_bytes(self) -> float:
        """Bandwidth in bytes/second."""
        return self.peak_bw_gbs * 1e9

    @property
    def peak_flops(self) -> float:
        """FLOP/s of the full device."""
        return self.peak_gflops * 1e9

    @property
    def llc_bytes(self) -> float:
        """Last-level cache capacity in bytes."""
        return self.llc_mib * 1024 * 1024


@dataclass(frozen=True)
class CPUSpec(ArchSpec):
    """A multicore CPU (possibly a dual-socket node).

    Attributes
    ----------
    cores:
        Total physical cores across the node's sockets.
    single_core_bw_frac:
        Fraction of node bandwidth one core can sustain (serial backend).
    row_loop_overhead_ns:
        Fixed per-row cost of the row loop (branch + pointer arithmetic);
        dominates for matrices with very short rows.
    omp_fork_us:
        One-off cost of an OpenMP parallel region (fork/join + barrier).
    simd_width:
        Double-precision SIMD lanes; regular formats (DIA/ELL) vectorise
        fully, irregular row remainders do not.
    """

    kind: str = field(default="cpu", init=False)
    cores: int = 1
    single_core_bw_frac: float = 0.15
    row_loop_overhead_ns: float = 1.5
    omp_fork_us: float = 6.0
    simd_width: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cores < 1:
            raise ValidationError("cores must be >= 1")
        if not (0.0 < self.single_core_bw_frac <= 1.0):
            raise ValidationError("single_core_bw_frac must be in (0, 1]")


@dataclass(frozen=True)
class GPUSpec(ArchSpec):
    """A discrete GPU accelerator.

    Attributes
    ----------
    sms:
        Streaming multiprocessors / compute units.
    warp_size:
        SIMT width (32 for NVIDIA, 64 for AMD wavefronts); CSR-scalar row
        assignment under-uses a warp whenever rows are short, and wider
        wavefronts hurt more (the paper's HIP speedups exceed CUDA's).
    launch_us:
        Kernel-launch latency; hybrid formats pay it twice.
    max_resident_threads:
        Device-wide resident-thread capacity, bounding occupancy for small
        matrices.
    gather_penalty:
        Bandwidth degradation factor for fully uncoalesced gathers
        (random access to ``x`` or scattered row segments).
    """

    kind: str = field(default="gpu", init=False)
    sms: int = 80
    warp_size: int = 32
    launch_us: float = 6.0
    max_resident_threads: int = 160_000
    gather_penalty: float = 12.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sms < 1 or self.warp_size < 1:
            raise ValidationError("sms and warp_size must be >= 1")
        if self.gather_penalty < 1.0:
            raise ValidationError("gather_penalty must be >= 1")
