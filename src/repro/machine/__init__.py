"""Architecture specifications and analytic SpMV performance models.

This subpackage is the reproduction's substitute for the paper's hardware
testbed (ARCHER2, Cirrus, Isambard — Table II).  Each
:class:`~repro.machine.arch.ArchSpec` carries published hardware parameters
(bandwidth, core counts, cache, warp width, launch latency) and the
:class:`~repro.machine.cost_model.CostModel` maps
``(matrix statistics, storage format, architecture, backend)`` to a
simulated SpMV runtime via a roofline-style model with format-specific
efficiency terms.  See DESIGN.md §3 for why this substitution preserves the
paper's evaluation shape.
"""

from repro.machine.arch import ArchSpec, CPUSpec, GPUSpec
from repro.machine.stats import MatrixStats
from repro.machine.cost_model import CostModel
from repro.machine.systems import (
    SYSTEMS,
    SYSTEM_BACKENDS,
    System,
    get_system,
    iter_system_backends,
)

__all__ = [
    "ArchSpec",
    "CPUSpec",
    "GPUSpec",
    "MatrixStats",
    "CostModel",
    "System",
    "SYSTEMS",
    "SYSTEM_BACKENDS",
    "get_system",
    "iter_system_backends",
]
