"""The paper's test systems (Table II) as a registry of simulated devices.

Each :class:`System` names the devices reachable from one of the paper's
(system, queue) combinations and the Morpheus backends that run on them.
The eleven (system, backend) pairs of Tables III/IV are exactly
``list(iter_system_backends())``.

Hardware numbers are drawn from vendor datasheets and published STREAM /
BabelStream results for the node types in Table II:

====================  =========================  ======================
System                CPU                         GPU
====================  =========================  ======================
ARCHER2               2x AMD EPYC 7742 (128c)     —
Cirrus (standard)     2x Intel Xeon E5-2695 (36c) —
Cirrus (gpu)          2x Xeon Gold 6248           4x NVIDIA V100 16GB
Isambard A64FX        1x Fujitsu A64FX (48c)      —
Isambard XCI          1x Marvell ThunderX2 (32c)  —
Isambard P3 Ampere    1x AMD EPYC 7543P           4x NVIDIA A100 40GB
Isambard P3 Instinct  1x AMD EPYC 7543P           4x AMD Instinct MI100
====================  =========================  ======================

A single GPU is modelled per run (the paper's kernels are single-device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import BackendError
from repro.machine.arch import ArchSpec, CPUSpec, GPUSpec

__all__ = [
    "System",
    "SYSTEMS",
    "SYSTEM_BACKENDS",
    "get_system",
    "iter_system_backends",
]

# ----------------------------------------------------------------------
# devices
# ----------------------------------------------------------------------

EPYC_7742_NODE = CPUSpec(
    name="2x AMD EPYC 7742",
    peak_bw_gbs=340.0,
    peak_gflops=3500.0,
    llc_mib=512.0,
    cores=128,
    single_core_bw_frac=0.07,
    row_loop_overhead_ns=1.2,
    omp_fork_us=9.0,
    simd_width=4,
)

XEON_E5_2695_NODE = CPUSpec(
    name="2x Intel Xeon E5-2695",
    peak_bw_gbs=115.0,
    peak_gflops=1100.0,
    llc_mib=90.0,
    cores=36,
    single_core_bw_frac=0.12,
    row_loop_overhead_ns=1.6,
    omp_fork_us=5.0,
    simd_width=4,
)

A64FX_NODE = CPUSpec(
    name="Fujitsu A64FX",
    peak_bw_gbs=840.0,
    peak_gflops=2700.0,
    llc_mib=32.0,
    cores=48,
    single_core_bw_frac=0.06,
    row_loop_overhead_ns=2.8,
    omp_fork_us=7.0,
    simd_width=8,
)

THUNDERX2_NODE = CPUSpec(
    name="Marvell ThunderX2",
    peak_bw_gbs=110.0,
    peak_gflops=560.0,
    llc_mib=32.0,
    cores=32,
    single_core_bw_frac=0.10,
    row_loop_overhead_ns=2.0,
    omp_fork_us=5.0,
    simd_width=2,
)

EPYC_7543P_NODE = CPUSpec(
    name="AMD EPYC 7543P",
    peak_bw_gbs=170.0,
    peak_gflops=1800.0,
    llc_mib=256.0,
    cores=32,
    single_core_bw_frac=0.11,
    row_loop_overhead_ns=1.2,
    omp_fork_us=5.0,
    simd_width=4,
)

V100 = GPUSpec(
    name="NVIDIA V100 16GB",
    peak_bw_gbs=790.0,
    peak_gflops=7000.0,
    llc_mib=6.0,
    sms=80,
    warp_size=32,
    launch_us=7.0,
    max_resident_threads=163_840,
    gather_penalty=12.0,
)

A100 = GPUSpec(
    name="NVIDIA A100 40GB",
    peak_bw_gbs=1400.0,
    peak_gflops=9700.0,
    llc_mib=40.0,
    sms=108,
    warp_size=32,
    launch_us=6.0,
    max_resident_threads=221_184,
    gather_penalty=10.0,
)

MI100 = GPUSpec(
    name="AMD Instinct MI100",
    peak_bw_gbs=1000.0,
    peak_gflops=11500.0,
    llc_mib=8.0,
    sms=120,
    warp_size=64,
    launch_us=10.0,
    max_resident_threads=245_760,
    gather_penalty=16.0,
)


# ----------------------------------------------------------------------
# systems
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class System:
    """A (site, queue) combination with its devices per backend."""

    name: str
    devices: Dict[str, ArchSpec]

    def device_for(self, backend: str) -> ArchSpec:
        """The device a Morpheus backend targets on this system."""
        key = backend.lower()
        if key not in self.devices:
            raise BackendError(
                f"system {self.name!r} has no {backend!r} backend; "
                f"available: {sorted(self.devices)}"
            )
        return self.devices[key]

    @property
    def backends(self) -> Tuple[str, ...]:
        """Backends available on this system, in canonical order."""
        order = ("serial", "openmp", "cuda", "hip")
        return tuple(b for b in order if b in self.devices)


SYSTEMS: Dict[str, System] = {
    "archer2": System(
        "archer2",
        {"serial": EPYC_7742_NODE, "openmp": EPYC_7742_NODE},
    ),
    "cirrus": System(
        "cirrus",
        {
            "serial": XEON_E5_2695_NODE,
            "openmp": XEON_E5_2695_NODE,
            "cuda": V100,
        },
    ),
    "a64fx": System(
        "a64fx",
        {"serial": A64FX_NODE, "openmp": A64FX_NODE},
    ),
    "xci": System(
        "xci",
        {"serial": THUNDERX2_NODE, "openmp": THUNDERX2_NODE},
    ),
    "p3": System(
        "p3",
        {"cuda": A100, "hip": MI100},
    ),
}

#: The eleven (system, backend) pairs of the paper's Tables III/IV.
SYSTEM_BACKENDS: Tuple[Tuple[str, str], ...] = (
    ("archer2", "serial"),
    ("archer2", "openmp"),
    ("cirrus", "serial"),
    ("cirrus", "openmp"),
    ("cirrus", "cuda"),
    ("a64fx", "serial"),
    ("a64fx", "openmp"),
    ("p3", "cuda"),
    ("p3", "hip"),
    ("xci", "serial"),
    ("xci", "openmp"),
)


def get_system(name: str) -> System:
    """Look up a system by (case-insensitive) name."""
    key = name.lower()
    if key not in SYSTEMS:
        raise BackendError(
            f"unknown system {name!r}; expected one of {sorted(SYSTEMS)}"
        )
    return SYSTEMS[key]


def iter_system_backends() -> Iterator[Tuple[System, str]]:
    """Yield the paper's eleven (System, backend) evaluation pairs."""
    for sys_name, backend in SYSTEM_BACKENDS:
        yield SYSTEMS[sys_name], backend
