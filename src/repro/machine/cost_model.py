"""Roofline-style SpMV performance models for the six storage formats.

This module is the analytical heart of the hardware substitution (DESIGN.md
§3).  For a matrix summarised by :class:`~repro.machine.stats.MatrixStats`,
a storage format, and a device :class:`~repro.machine.arch.ArchSpec`, it
predicts the runtime of one SpMV:

``T = max(T_memory, T_compute) + T_fixed``

with format- and device-specific effective-bandwidth degradations:

* **CSR on GPUs** runs the scalar (thread-per-row) kernel: consecutive
  threads read row segments ``avg_row * 16`` bytes apart (uncoalesced once
  rows exceed a cache sector) and a warp is held hostage by its longest row
  (divergence).  This is what produces the paper's orders-of-magnitude
  penalties for power-law matrices (Section VII-C, mawi discussion).
* **COO on GPUs** uses a flat segmented reduction — perfectly coalesced and
  balanced, so it is the robust choice for wildly irregular matrices.
* **ELL / DIA** are fully coalesced / unit-stride but pay for padding.
* **Hybrid formats** pay their two blocks plus an extra kernel launch.
* **CPU OpenMP** time is ``max(bandwidth bound, critical path of the
  longest row)`` plus a fork/join constant; COO needs atomics and scales
  worse; DIA/ELL are perfectly balanced.

Every returned time includes a small deterministic log-normal "measurement"
noise keyed by ``(matrix_key, format, device, backend)`` so profiling labels
have the run-to-run jitter character of real measurements (configurable,
``noise_sigma=0`` disables it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.errors import BackendError
from repro.formats.base import FORMAT_IDS
from repro.formats.convert import convert_cost_weight
from repro.kernels import (
    check_kernel_backend,
    modelled_speedup,
    modelled_warmup_seconds,
)
from repro.machine.arch import ArchSpec, CPUSpec, GPUSpec
from repro.machine.stats import IDX_BYTES, VAL_BYTES, MatrixStats
from repro.utils.rng import stable_hash

__all__ = ["CostModel"]

ENTRY_BYTES = IDX_BYTES + VAL_BYTES  # one (index, value) pair
#: Threads cooperating per row in the vector-style CSR GPU kernel.
CSR_SUB_WARP = 8.0
#: Cap on the divergence penalty of the CSR GPU kernel.
MAX_DIVERGENCE = 128.0
#: Cap on the occupancy penalty for under-filled devices.
MAX_OCC_PENALTY = 8.0

_VALID_BACKENDS = ("serial", "openmp", "cuda", "hip")


@dataclass(frozen=True)
class CostModel:
    """Analytic SpMV timing model.

    Parameters
    ----------
    noise_sigma:
        Standard deviation of the log-normal run-to-run noise factor.
        ``0.0`` makes the model fully deterministic.
    noise_seed:
        Base seed mixed into the per-(matrix, format, device) noise key.
    """

    noise_sigma: float = 0.04
    noise_seed: int = 2023

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def spmv_time(
        self,
        stats: MatrixStats,
        fmt: str,
        arch: ArchSpec,
        backend: str,
        *,
        matrix_key: str = "",
        kernel_backend: str = "numpy",
    ) -> float:
        """Modelled seconds for one ``y = A @ x`` in format *fmt*.

        *backend* is the modelled execution backend of the archetype
        (serial/openmp/cuda/hip); *kernel_backend* is the real kernel
        generation (:mod:`repro.kernels`) producing the numbers.  On CPU
        archetypes a compiled kernel backend divides the base time by
        its per-format modelled speedup; GPU archetypes model device
        kernels, which no host kernel generation touches, so the factor
        is 1.  The ``numpy`` reference keeps the historical noise key,
        making it bit-stable against pre-backend model outputs.
        """
        fmt = fmt.upper()
        if fmt not in FORMAT_IDS:
            raise BackendError(f"unknown format {fmt!r}")
        self._check_backend(arch, backend)
        kb = check_kernel_backend(kernel_backend)
        if stats.nnz == 0:
            return self._fixed_cost(arch, backend)
        if isinstance(arch, GPUSpec):
            base = self._gpu_time(stats, fmt, arch)
            factor = 1.0
        else:
            assert isinstance(arch, CPUSpec)
            if backend == "serial":
                base = self._cpu_serial_time(stats, fmt, arch)
            else:
                base = self._cpu_openmp_time(stats, fmt, arch)
            factor = 1.0 / modelled_speedup(kb, fmt)
        noise_key = (matrix_key, fmt, arch.name, backend)
        if kb != "numpy":
            noise_key = noise_key + (kb,)
        return base * factor * self._noise(*noise_key)

    def spmv_times(
        self,
        stats: MatrixStats,
        arch: ArchSpec,
        backend: str,
        *,
        matrix_key: str = "",
        kernel_backend: str = "numpy",
    ) -> Dict[str, float]:
        """Modelled time for every format; keys are canonical format names."""
        return {
            fmt: self.spmv_time(
                stats,
                fmt,
                arch,
                backend,
                matrix_key=matrix_key,
                kernel_backend=kernel_backend,
            )
            for fmt in FORMAT_IDS
        }

    def spmv_times_by_backend(
        self,
        stats: MatrixStats,
        arch: ArchSpec,
        backend: str,
        kernel_backends: Sequence[str],
        *,
        matrix_key: str = "",
    ) -> Dict[str, Dict[str, float]]:
        """Nested ``{kernel_backend: {format: seconds}}`` timings."""
        return {
            kb: self.spmv_times(
                stats, arch, backend, matrix_key=matrix_key, kernel_backend=kb
            )
            for kb in kernel_backends
        }

    def kernel_warmup_time(self, kernel_backend: str) -> float:
        """Modelled per-(operation, format) first-touch warm-up seconds."""
        return modelled_warmup_seconds(kernel_backend)

    def feature_extraction_time(
        self, stats: MatrixStats, arch: ArchSpec, backend: str
    ) -> float:
        """Modelled seconds for the online 10-feature extraction (T_FE).

        Extraction makes a small number of passes over the index structure
        (row census, diagonal census, reductions over the row-length array).
        On CPUs only part of the work parallelises; on GPUs each statistic
        is a launched reduction kernel.
        """
        self._check_backend(arch, backend)
        idx_traffic = stats.nnz * IDX_BYTES + stats.nrows * IDX_BYTES
        # row census + diagonal census + row-array reductions; the diagonal
        # census is a random-access histogram, several times slower per byte
        # than a stream, hence the effective pass count exceeds 3
        passes = 3.0
        hist_penalty = 2.2
        if isinstance(arch, GPUSpec):
            mem = passes * idx_traffic / arch.peak_bw_bytes
            return mem + 6 * arch.launch_us * 1e-6
        assert isinstance(arch, CPUSpec)
        serial_bw = arch.peak_bw_bytes * arch.single_core_bw_frac
        if backend == "serial":
            return passes * hist_penalty * idx_traffic / serial_bw + 40e-6
        # OpenMP: the heavy passes parallelise with modest efficiency, the
        # histogram merge and bookkeeping stay serial — which is why the
        # paper's Table IV shows OpenMP tuning costs far above Serial's
        # (relative to each backend's own SpMV time).
        par = passes * idx_traffic / (arch.peak_bw_bytes * 0.5)
        ser = 0.5 * passes * hist_penalty * idx_traffic / serial_bw
        return par + ser + 3 * arch.omp_fork_us * 1e-6

    def prediction_time(
        self, arch: ArchSpec, backend: str, *, n_estimators: int, avg_depth: float
    ) -> float:
        """Modelled seconds for the host-side tree-ensemble traversal."""
        self._check_backend(arch, backend)
        per_node = 25e-9  # one comparison + pointer chase
        traversal = n_estimators * max(1.0, avg_depth) * per_node
        voting = n_estimators * 10e-9
        return traversal + voting + 2e-6  # + model dispatch overhead

    def conversion_time(
        self,
        stats: MatrixStats,
        source: str,
        target: str,
        arch: ArchSpec,
        backend: str,
    ) -> float:
        """Modelled seconds for an in-memory format conversion.

        Conversions are bandwidth-bound builds of the target's arrays
        scaled by a per-format difficulty weight; on CPUs they run at
        single-core bandwidth (Morpheus conversions are serial), on GPUs at
        a fraction of device bandwidth plus launch overhead.
        """
        self._check_backend(arch, backend)
        weight = convert_cost_weight(source, target)
        if weight == 0.0:
            return 0.0
        built = stats.format_bytes(target) + stats.format_bytes(source)
        if isinstance(arch, GPUSpec):
            return weight * built / (arch.peak_bw_bytes * 0.4) + 4 * arch.launch_us * 1e-6
        assert isinstance(arch, CPUSpec)
        serial_bw = arch.peak_bw_bytes * arch.single_core_bw_frac
        return weight * built / serial_bw + 20e-6

    # ------------------------------------------------------------------
    # CPU models
    # ------------------------------------------------------------------
    def _cpu_serial_time(self, s: MatrixStats, fmt: str, a: CPUSpec) -> float:
        bw = a.peak_bw_bytes * a.single_core_bw_frac
        flops = a.peak_flops / a.cores
        traffic, fma, rows_looped, irregular = self._work(s, fmt, a)
        t_mem = traffic / bw
        if irregular and not self._x_cached(s, a):
            t_mem *= 1.6  # out-of-cache gathers of x
        t_cpu = fma / flops
        t_loop = rows_looped * a.row_loop_overhead_ns * 1e-9
        if fmt == "COO":
            # row-change branch + indirect accumulate on every entry
            t_loop += s.nnz * 0.4 * a.row_loop_overhead_ns * 1e-9
        return max(t_mem, t_cpu) + t_loop + self._fixed_cost(a, "serial", fmt)

    def _cpu_openmp_time(self, s: MatrixStats, fmt: str, a: CPUSpec) -> float:
        serial_bw = a.peak_bw_bytes * a.single_core_bw_frac
        traffic, fma, rows_looped, irregular = self._work(s, fmt, a)
        # bandwidth-bound floor: the whole node streaming the format arrays
        t_bw = traffic / a.peak_bw_bytes
        if irregular and not self._x_cached(s, a):
            t_bw *= 1.6
        # critical path: with static row partitioning one thread owns the
        # longest row (CSR/HYB/HDC); regular formats are perfectly balanced
        if fmt in ("CSR", "HYB", "HDC"):
            t_crit = s.row_nnz_max * ENTRY_BYTES / serial_bw
        else:
            t_crit = 0.0
        # COO parallelises over flat entry blocks with a per-thread partial
        # result merge: modest overhead, but *no* long-row critical path
        if fmt == "COO":
            t_bw *= 1.4
        if fmt == "HYB" and s.hyb_coo_nnz:
            t_bw += 0.4 * s.hyb_coo_nnz * (2 * IDX_BYTES + VAL_BYTES) / a.peak_bw_bytes
        t_loop = rows_looped * a.row_loop_overhead_ns * 1e-9 / a.cores
        t_cpu = fma / a.peak_flops
        return (
            max(t_bw, t_cpu, t_crit)
            + t_loop
            + self._fixed_cost(a, "openmp", fmt)
        )

    # ------------------------------------------------------------------
    # GPU model
    # ------------------------------------------------------------------
    def _gpu_time(self, s: MatrixStats, fmt: str, a: GPUSpec) -> float:
        launch = a.launch_us * 1e-6
        launch_for = lambda f: launch * self._FIXED_MULT[f]  # noqa: E731
        if fmt == "COO":
            # flat segmented reduction: coalesced, balanced
            traffic = s.format_bytes("COO") + self._x_traffic(s, a, gather=True)
            occ = self._occupancy_penalty(s.nnz, a)
            return 1.3 * traffic / a.peak_bw_bytes * occ + launch_for("COO")
        if fmt == "CSR":
            traffic = s.format_bytes("CSR") + self._x_traffic(s, a, gather=True)
            coal = self._csr_coalescing_penalty(s, a)
            div = self._csr_divergence_penalty(s, a)
            occ = self._occupancy_penalty(s.nrows * CSR_SUB_WARP, a)
            return traffic / a.peak_bw_bytes * coal * div * occ + launch_for("CSR")
        if fmt == "ELL":
            traffic = s.format_bytes("ELL") + self._x_traffic(s, a, gather=True)
            occ = self._occupancy_penalty(s.nrows, a)
            return traffic / a.peak_bw_bytes * occ + launch_for("ELL")
        if fmt == "DIA":
            traffic = s.format_bytes("DIA") + self._x_traffic(s, a, gather=False)
            occ = self._occupancy_penalty(s.nrows, a)
            return traffic / a.peak_bw_bytes * occ + launch_for("DIA")
        if fmt == "HYB":
            ell_traffic = s.nrows * s.hyb_k * ENTRY_BYTES + self._x_traffic(
                s, a, gather=True
            )
            occ = self._occupancy_penalty(s.nrows, a)
            t = ell_traffic / a.peak_bw_bytes * occ + launch
            if s.hyb_coo_nnz:
                coo_traffic = s.hyb_coo_nnz * (2 * IDX_BYTES + VAL_BYTES)
                occ2 = self._occupancy_penalty(s.hyb_coo_nnz, a)
                t += 1.3 * coo_traffic / a.peak_bw_bytes * occ2 + launch
            return t
        if fmt == "HDC":
            dia_traffic = s.hdc_dia_padded * VAL_BYTES + self._x_traffic(
                s, a, gather=False
            )
            occ = self._occupancy_penalty(s.nrows, a)
            t = dia_traffic / a.peak_bw_bytes * occ + launch
            if s.hdc_csr_nnz:
                rest = MatrixStats(
                    nrows=s.nrows,
                    ncols=s.ncols,
                    nnz=s.hdc_csr_nnz,
                    row_nnz_mean=s.hdc_csr_nnz / max(1, s.nrows),
                    row_nnz_min=0,
                    row_nnz_max=max(1, s.row_nnz_max - s.ntrue_diags),
                    row_nnz_std=s.row_nnz_std,
                    n_empty_rows=0,
                    ndiags=s.ndiags - s.ntrue_diags,
                    ntrue_diags=0,
                    true_diag_nnz=0,
                    hyb_k=0,
                    hyb_ell_nnz=0,
                    hyb_coo_nnz=0,
                )
                csr_traffic = rest.format_bytes("CSR") + self._x_traffic(
                    s, a, gather=True
                )
                coal = self._csr_coalescing_penalty(rest, a)
                div = self._csr_divergence_penalty(rest, a)
                occ2 = self._occupancy_penalty(s.nrows * CSR_SUB_WARP, a)
                t += csr_traffic / a.peak_bw_bytes * coal * div * occ2 + launch
            return t
        raise BackendError(f"unknown format {fmt!r}")  # pragma: no cover

    def _csr_coalescing_penalty(self, s: MatrixStats, a: GPUSpec) -> float:
        """Vector-CSR lane waste: short rows under-fill their sub-warp.

        A :data:`CSR_SUB_WARP`-thread group cooperates on each row; rows
        shorter than the group leave lanes idle.  Long rows are read
        coalesced, so there is no long-row stride penalty.
        """
        avg = max(s.row_nnz_mean, 1e-9)
        return float(np.clip(CSR_SUB_WARP / avg, 1.0, CSR_SUB_WARP))

    def _csr_divergence_penalty(self, s: MatrixStats, a: GPUSpec) -> float:
        """A warp runs as long as its slowest (longest) row.

        Uses a blend of the tail ratio (max/mean) and the coefficient of
        variation: uniform matrices pay nothing, power-law matrices pay up
        to :data:`MAX_DIVERGENCE`. Wider wavefronts (AMD) hurt more.
        """
        imb = s.row_imbalance
        cv = s.row_cv
        width_factor = a.warp_size / 32.0
        penalty = 1.0 + 0.15 * (imb - 1.0) * min(1.0, cv) * width_factor
        return float(np.clip(penalty, 1.0, MAX_DIVERGENCE * width_factor))

    def _occupancy_penalty(self, parallel_items: float, a: GPUSpec) -> float:
        """Penalty for not filling the device's resident threads.

        Latency hiding makes achievable bandwidth scale roughly with the
        square root of occupancy at low fill, so the penalty saturates at
        :data:`MAX_OCC_PENALTY` rather than growing linearly.
        """
        if parallel_items <= 0:
            return MAX_OCC_PENALTY
        occ = min(1.0, parallel_items / a.max_resident_threads)
        return float(np.clip(occ**-0.5, 1.0, MAX_OCC_PENALTY))

    def _x_traffic(self, s: MatrixStats, a: ArchSpec, *, gather: bool) -> float:
        """Bytes of input/output vector traffic for one SpMV."""
        xy = (s.nrows + s.ncols) * VAL_BYTES
        if not gather:
            return xy
        if self._x_cached(s, a):
            return xy
        # each non-zero gathers a fresh cache sector's worth in the worst
        # case; damp by density (denser rows reuse neighbouring elements)
        reuse = min(1.0, 4.0 / max(s.row_nnz_mean, 1e-9))
        return xy + s.nnz * VAL_BYTES * reuse

    def _x_cached(self, s: MatrixStats, a: ArchSpec) -> bool:
        return s.ncols * VAL_BYTES <= a.llc_bytes

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _work(
        self, s: MatrixStats, fmt: str, a: CPUSpec
    ) -> tuple[float, float, float, bool]:
        """Return ``(traffic_bytes, flops, rows_looped, irregular_gather)``.

        ``rows_looped`` is the trip count of the outer row/diagonal loop,
        which carries the per-row overhead on CPUs.
        """
        xy = (s.nrows + s.ncols) * VAL_BYTES
        if fmt == "COO":
            return s.format_bytes("COO") + xy, 2.0 * s.nnz, 0.0, True
        if fmt == "CSR":
            return s.format_bytes("CSR") + xy, 2.0 * s.nnz, float(s.nrows), True
        if fmt == "DIA":
            # unit-stride streaming; x is re-read per diagonal unless cached
            extra_x = 0.0 if self._x_cached(s, a) else s.dia_padded * VAL_BYTES * 0.5
            return (
                s.format_bytes("DIA") + xy + extra_x,
                2.0 * s.dia_padded,
                float(s.ndiags),
                False,
            )
        if fmt == "ELL":
            return (
                s.format_bytes("ELL") + xy,
                2.0 * s.ell_padded,
                float(s.nrows),
                True,
            )
        if fmt == "HYB":
            # + one extra stream of the result vector for the second kernel
            extra_y = 2 * s.nrows * VAL_BYTES
            return (
                s.format_bytes("HYB") + xy + extra_y,
                2.0 * (s.nrows * s.hyb_k + s.hyb_coo_nnz),
                float(s.nrows),
                True,
            )
        if fmt == "HDC":
            extra_y = 2 * s.nrows * VAL_BYTES
            return (
                s.format_bytes("HDC") + xy + extra_y,
                2.0 * (s.hdc_dia_padded + s.hdc_csr_nnz),
                float(s.nrows + s.ntrue_diags),
                True,
            )
        raise BackendError(f"unknown format {fmt!r}")  # pragma: no cover

    #: Per-format fixed-cost multipliers: one kernel/region for the simple
    #: formats (plus COO's merge / reduction pass and DIA/ELL setup), two
    #: for the hybrids.  These break the ties of launch-bound tiny matrices
    #: the same way real launch sequences do.
    _FIXED_MULT = {
        "CSR": 1.0,
        "COO": 1.3,
        "DIA": 1.15,
        "ELL": 1.1,
        "HYB": 2.2,
        "HDC": 2.3,
    }

    def _fixed_cost(self, arch: ArchSpec, backend: str, fmt: str = "CSR") -> float:
        mult = self._FIXED_MULT.get(fmt, 1.0)
        if isinstance(arch, GPUSpec):
            return arch.launch_us * 1e-6 * mult
        assert isinstance(arch, CPUSpec)
        if backend == "openmp":
            return arch.omp_fork_us * 1e-6 * mult
        return 0.2e-6 * mult

    def _noise(self, *key_parts: object) -> float:
        if self.noise_sigma <= 0.0:
            return 1.0
        h = stable_hash(self.noise_seed, *key_parts)
        # map the 63-bit hash to a standard normal via inverse uniform
        u = (h + 0.5) / float(1 << 63)
        z = math.sqrt(2.0) * _erfinv(2.0 * u - 1.0)
        return math.exp(self.noise_sigma * z)

    @staticmethod
    def _check_backend(arch: ArchSpec, backend: str) -> None:
        if backend not in _VALID_BACKENDS:
            raise BackendError(
                f"unknown backend {backend!r}; expected one of {_VALID_BACKENDS}"
            )
        is_gpu_backend = backend in ("cuda", "hip")
        if is_gpu_backend != (arch.kind == "gpu"):
            raise BackendError(
                f"backend {backend!r} incompatible with {arch.kind} device "
                f"{arch.name!r}"
            )


def _erfinv(y: float) -> float:
    """Inverse error function (scipy wrapper kept importable lazily)."""
    from scipy.special import erfinv

    return float(erfinv(y))
