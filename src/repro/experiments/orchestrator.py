"""Config-driven, resumable orchestrator for the offline pipeline.

:class:`ExperimentOrchestrator` runs one :class:`ExperimentSpec` through
the staged DAG ``profile -> dataset -> train -> export -> evaluate``.
Each stage's store key is a digest of the stage name and its input
fingerprints (spec content + upstream keys), so

* a killed run re-invoked with the same spec and store resumes from the
  last completed stage with cache hits,
* a second identical run performs **zero** matrix generations and is
  served entirely from the artifact store,
* two suites sharing a corpus and targets but differing in training axes
  share the (expensive) profile artifact.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datasets.collection import (
    MatrixCollection,
    MatrixSpec,
    resolve_family_mix,
)
from repro.errors import ValidationError
from repro.experiments.spec import ExperimentSpec
from repro.experiments.stages import (
    TrainOutcome,
    export_is_current,
    run_dataset_stage,
    run_evaluate_stage,
    run_export_stage,
    run_profile_stage,
    run_train_stage,
)
from repro.experiments.store import ArtifactStore, stage_key

__all__ = ["STAGES", "StageOutcome", "ExperimentResult", "ExperimentOrchestrator"]

#: DAG order; ``run(until=...)`` accepts any prefix endpoint.
STAGES: Tuple[str, ...] = ("profile", "dataset", "train", "export", "evaluate")


@dataclass(frozen=True)
class StageOutcome:
    """One executed stage: its store key, cache disposition and wall time."""

    stage: str
    key: str
    cached: bool
    seconds: float


@dataclass
class ExperimentResult:
    """Everything a completed (or truncated) run produced."""

    spec: ExperimentSpec
    outcomes: List[StageOutcome] = field(default_factory=list)
    profiling: object = None
    datasets: Dict[str, Dict[str, object]] = field(default_factory=dict)
    trained: List[TrainOutcome] = field(default_factory=list)
    model_paths: List[str] = field(default_factory=list)
    report: Optional[dict] = None

    @property
    def cached_stages(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def total_stages(self) -> int:
        return len(self.outcomes)

    @property
    def all_cached(self) -> bool:
        """True when every executed stage was served from the store."""
        return bool(self.outcomes) and all(o.cached for o in self.outcomes)


class ExperimentOrchestrator:
    """Run an :class:`ExperimentSpec` through the resumable stage DAG.

    Parameters
    ----------
    spec:
        The declarative scenario suite to run.
    store:
        Artifact store for stage outputs; pass ``None`` for a one-shot,
        non-resumable in-memory run.
    collection:
        Pre-built corpus (mainly for tests asserting generation counters);
        defaults to ``spec.corpus.build()``.
    jobs:
        Worker processes for the profiling stage's matrix generation.
    model_dir:
        Model-database directory for the export stage; defaults to
        ``<store root>/models/<spec fingerprint>`` so suites sharing a
        store cannot overwrite each other's exported models (a store-less
        run requires an explicit path).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        store: Optional[ArtifactStore] = None,
        *,
        collection: Optional[MatrixCollection] = None,
        jobs: int = 1,
        model_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValidationError(f"jobs must be >= 1, got {jobs}")
        if store is None and model_dir is None:
            raise ValidationError(
                "a store-less orchestrator needs an explicit model_dir"
            )
        self.spec = spec
        self.store = store
        self.jobs = int(jobs)
        if collection is None:
            collection = spec.corpus.build()
        else:
            # a mismatched collection would store artifacts under the
            # spec's fingerprint while holding a different corpus,
            # silently poisoning every later run against this store
            expected = spec.corpus
            matches = (
                collection.n_matrices == expected.n_matrices
                and collection.seed == expected.seed
                and tuple(collection.families)
                == resolve_family_mix(expected.families)
            )
            if not matches:
                raise ValidationError(
                    "collection does not match spec.corpus: expected "
                    f"n_matrices={expected.n_matrices} seed={expected.seed}"
                    f" families={expected.families or 'default'}, got "
                    f"n_matrices={collection.n_matrices} "
                    f"seed={collection.seed}"
                )
        self.collection = collection
        self.model_dir = (
            model_dir
            if model_dir is not None
            else os.path.join(store.root, "models", spec.fingerprint)
        )
        from repro.backends import make_space

        self.spaces = [
            make_space(t.system, t.backend) for t in spec.targets
        ]
        #: Per-space engines the profiling stage dispatches through.
        self.engines: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # stage keys: digests chaining the spec content through the DAG
    # ------------------------------------------------------------------
    def profile_key(self) -> str:
        # test_fraction does not influence profiling (it keys the dataset
        # stage), so suites differing only in the split share the artifact
        corpus = {
            k: v
            for k, v in self.spec.corpus.to_dict().items()
            if k != "test_fraction"
        }
        canonical = json.dumps(corpus, sort_keys=True, separators=(",", ":"))
        return stage_key("profile", canonical, *sorted(self.spec.space_names))

    def dataset_key(self, space_name: str) -> str:
        return stage_key(
            "dataset",
            self.profile_key(),
            space_name,
            repr(self.spec.corpus.test_fraction),
        )

    def train_key(self, space_name: str, algorithm: str) -> str:
        grid = self.spec.resolve_grid(algorithm)
        grid_repr = (
            json.dumps(
                {k: list(v) for k, v in grid.items()},
                sort_keys=True,
                separators=(",", ":"),
                default=str,
            )
            if grid is not None
            else "default"
        )
        return stage_key(
            "train",
            self.dataset_key(space_name),
            algorithm,
            grid_repr,
            str(self.spec.cv),
            str(self.spec.train_seed),
        )

    def _train_cells(self) -> List[Tuple[str, str, str, str]]:
        """(system, backend, space_name, algorithm) in deterministic order."""
        return [
            (t.system, t.backend, t.space_name, algo)
            for t in self.spec.targets
            for algo in self.spec.algorithms
        ]

    def export_key(self) -> str:
        keys = [
            self.train_key(space, algo)
            for _, _, space, algo in self._train_cells()
        ]
        return stage_key("export", self.model_dir, *keys)

    def evaluate_key(self) -> str:
        keys = [
            self.train_key(space, algo)
            for _, _, space, algo in self._train_cells()
        ]
        return stage_key("evaluate", self.profile_key(), *keys)

    # ------------------------------------------------------------------
    def _splits(self) -> Tuple[List[MatrixSpec], List[MatrixSpec]]:
        return self.collection.train_test_split(
            test_fraction=self.spec.corpus.test_fraction
        )

    def run(self, *, until: Optional[str] = None) -> ExperimentResult:
        """Execute the DAG, resuming from the store where possible.

        ``until`` names the last stage to run (a prefix of :data:`STAGES`)
        — the hook that lets tests and operators stop a run "mid-flight"
        and later resume it.
        """
        if until is not None and until not in STAGES:
            raise ValidationError(
                f"unknown stage {until!r}; expected one of {list(STAGES)}"
            )
        if self.store is not None:
            self.store.save_spec(self.spec)
        result = ExperimentResult(spec=self.spec)
        last = STAGES.index(until) if until is not None else len(STAGES) - 1

        # -- profile ----------------------------------------------------
        key = self.profile_key()
        t0 = time.perf_counter()
        result.profiling = run_profile_stage(
            self.collection,
            self.spaces,
            jobs=self.jobs,
            store=self.store,
            key=key,
            engines=self.engines,
        )
        # cached only when the artifact was actually adopted — a stale or
        # mismatched payload falls back to computing
        result.outcomes.append(
            StageOutcome(
                "profile",
                key,
                result.profiling.from_store,
                time.perf_counter() - t0,
            )
        )
        if last < STAGES.index("dataset"):
            return result

        # -- dataset ----------------------------------------------------
        train_specs, test_specs = self._splits()
        for target in self.spec.targets:
            key = self.dataset_key(target.space_name)
            cached = self.store is not None and self.store.has("dataset", key)
            t0 = time.perf_counter()
            result.datasets[target.space_name] = run_dataset_stage(
                self.collection,
                train_specs,
                test_specs,
                result.profiling,
                target.space_name,
                store=self.store,
                key=key,
            )
            result.outcomes.append(
                StageOutcome("dataset", key, cached, time.perf_counter() - t0)
            )
        if last < STAGES.index("train"):
            return result

        # -- train ------------------------------------------------------
        for system, backend, space_name, algorithm in self._train_cells():
            key = self.train_key(space_name, algorithm)
            cached = self.store is not None and self.store.has("train", key)
            t0 = time.perf_counter()
            result.trained.append(
                run_train_stage(
                    result.datasets[space_name],
                    algorithm=algorithm,
                    system=system,
                    backend=backend,
                    grid=self.spec.resolve_grid(algorithm),
                    cv=self.spec.cv,
                    seed=self.spec.train_seed,
                    store=self.store,
                    key=key,
                )
            )
            result.outcomes.append(
                StageOutcome("train", key, cached, time.perf_counter() - t0)
            )
        if last < STAGES.index("export"):
            return result

        # -- export -----------------------------------------------------
        key = self.export_key()
        t0 = time.perf_counter()
        current = (
            export_is_current(self.store, key)
            if self.store is not None
            else None
        )
        cached = current is not None
        result.model_paths = (
            current
            if current is not None
            else run_export_stage(
                result.trained,
                self.model_dir,
                store=self.store,
                key=key,
                check_store=False,  # the lookup above already missed
            )
        )
        result.outcomes.append(
            StageOutcome("export", key, cached, time.perf_counter() - t0)
        )
        if last < STAGES.index("evaluate"):
            return result

        # -- evaluate ---------------------------------------------------
        key = self.evaluate_key()
        cached = self.store is not None and self.store.has("evaluate", key)
        t0 = time.perf_counter()
        result.report = run_evaluate_stage(
            result.profiling,
            result.trained,
            self.spec.space_names,
            store=self.store,
            key=key,
        )
        result.outcomes.append(
            StageOutcome("evaluate", key, cached, time.perf_counter() - t0)
        )
        return result
