"""Declarative experiment specifications with stable content fingerprints.

An :class:`ExperimentSpec` describes one scenario suite of the offline
Sparse.Tree pipeline without touching any data file: the corpus is a
parametric generator config (family mix, size, seed), the targets are
(system, backend) pairs, and the training axes (algorithms, grid, CV) are
plain values.  Everything reduces to a canonical JSON document whose
blake2b digest is the spec's *fingerprint* — the key under which the
orchestrator stores and resumes every stage artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple, Union

from repro.core.pipeline import (
    DEFAULT_DT_GRID,
    DEFAULT_RF_GRID,
    SMALL_RF_GRID,
)
from repro.datasets.collection import MatrixCollection, resolve_family_mix
from repro.errors import ValidationError
from repro.machine.systems import SYSTEMS

__all__ = ["CorpusSpec", "TargetSpec", "ExperimentSpec", "ALGORITHMS", "GRID_PRESETS"]

ALGORITHMS = ("random_forest", "decision_tree")

#: Named hyperparameter grids a spec can reference instead of spelling one
#: out.  ``None`` entries fall back to the algorithm's default grid.
GRID_PRESETS: Dict[str, Mapping[str, Mapping[str, Sequence[object]]]] = {
    "small": {"random_forest": SMALL_RF_GRID, "decision_tree": None},
    "default": {"random_forest": DEFAULT_RF_GRID, "decision_tree": None},
}

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class CorpusSpec:
    """Parametric generator config for one synthetic corpus.

    ``families`` is an optional family -> weight mix overriding the
    default — the scenario-suite lever that opens structurally biased
    corpora (all-banded, graph-heavy, ...) from the same generators.  A
    mapping or (family, weight) pairs in any order are accepted and
    canonicalised, so equal mixes always fingerprint identically.
    """

    n_matrices: int = 120
    seed: int = 42
    families: Tuple[Tuple[str, float], ...] | None = None
    test_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.n_matrices < 1:
            raise ValidationError("corpus n_matrices must be >= 1")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValidationError("corpus test_fraction must be in (0, 1)")
        if self.families is not None:
            # canonicalise through the collection's own mix resolver so
            # "equal fingerprint" and "equal corpus" can never diverge
            object.__setattr__(
                self,
                "families",
                resolve_family_mix(self.families, error=ValidationError),
            )

    def build(self) -> MatrixCollection:
        """Materialise the (lazy) collection this spec describes."""
        return MatrixCollection(
            n_matrices=self.n_matrices,
            seed=self.seed,
            families=dict(self.families) if self.families else None,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_matrices": self.n_matrices,
            "seed": self.seed,
            "families": (
                [[fam, weight] for fam, weight in self.families]
                if self.families is not None
                else None
            ),
            "test_fraction": self.test_fraction,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CorpusSpec":
        # a JSON object, a pair list or null all normalise in
        # __post_init__; an explicit empty mix is rejected there rather
        # than silently falling back to the default
        return cls(
            n_matrices=int(payload.get("n_matrices", 120)),
            seed=int(payload.get("seed", 42)),
            families=payload.get("families", None),
            test_fraction=float(payload.get("test_fraction", 0.2)),
        )


@dataclass(frozen=True)
class TargetSpec:
    """One (system, backend) execution space the suite profiles and trains."""

    system: str
    backend: str

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValidationError(
                f"unknown system {self.system!r}; expected one of "
                f"{sorted(SYSTEMS)}"
            )
        if self.backend not in SYSTEMS[self.system].backends:
            raise ValidationError(
                f"system {self.system!r} has no backend {self.backend!r} "
                f"(available: {list(SYSTEMS[self.system].backends)})"
            )

    @property
    def space_name(self) -> str:
        return f"{self.system}/{self.backend}"

    def to_dict(self) -> Dict[str, object]:
        return {"system": self.system, "backend": self.backend}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TargetSpec":
        return cls(system=str(payload["system"]), backend=str(payload["backend"]))


@dataclass(frozen=True)
class ExperimentSpec:
    """A full scenario suite: corpus x targets x algorithms x grid.

    The spec is pure metadata — building it touches no matrix.  Two specs
    with the same content have the same :attr:`fingerprint` regardless of
    construction order, which is what makes the artifact store resumable:
    a re-invoked run recomputes the same keys and finds its stages.

    Attributes
    ----------
    name:
        Human-readable suite name; part of the canonical content, so
        renaming a suite changes its fingerprint.
    corpus:
        Parametric generator config (:class:`CorpusSpec`): family mix,
        size, seed, train/test split.
    targets:
        The (system, backend) execution spaces to profile and train for.
    algorithms:
        Any of :data:`ALGORITHMS` (``random_forest``,
        ``decision_tree``); one model is trained per target x algorithm.
    grid:
        A :data:`GRID_PRESETS` name (``"small"``, ``"default"``) or an
        explicit ``{param: [values]}`` mapping, canonicalised so equal
        grids fingerprint identically.
    cv / train_seed:
        The Section VII-D training axes (k-fold count, RNG seed).

    Specs round-trip losslessly through :meth:`save`/:meth:`load` (JSON)
    and :meth:`to_dict`/:meth:`from_dict`; see
    ``docs/scenario_suites.md`` for the schema and examples.

    Examples
    --------
    >>> spec = ExperimentSpec(name="smoke")
    >>> spec.fingerprint == ExperimentSpec(name="smoke").fingerprint
    True
    """

    name: str
    corpus: CorpusSpec = field(default_factory=CorpusSpec)
    targets: Tuple[TargetSpec, ...] = (TargetSpec("cirrus", "serial"),)
    algorithms: Tuple[str, ...] = ("random_forest",)
    grid: Union[str, Tuple[Tuple[str, Tuple[object, ...]], ...]] = "small"
    cv: int = 5
    train_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("experiment name must be non-empty")
        if not self.targets:
            raise ValidationError("experiment needs at least one target")
        if len(set(self.targets)) != len(self.targets):
            raise ValidationError("duplicate targets in experiment spec")
        if not self.algorithms:
            raise ValidationError("experiment needs at least one algorithm")
        for algo in self.algorithms:
            if algo not in ALGORITHMS:
                raise ValidationError(
                    f"unknown algorithm {algo!r}; expected one of "
                    f"{list(ALGORITHMS)}"
                )
        if isinstance(self.grid, str):
            if self.grid not in GRID_PRESETS:
                raise ValidationError(
                    f"unknown grid preset {self.grid!r}; expected one of "
                    f"{sorted(GRID_PRESETS)} or an explicit grid mapping"
                )
        else:
            # normalise mapping / pair-list grids to a canonical sorted
            # tuple-of-tuples so equal grids fingerprint identically
            items = (
                sorted(self.grid.items())
                if isinstance(self.grid, Mapping)
                else sorted(self.grid)
            )
            object.__setattr__(
                self,
                "grid",
                tuple((str(param), tuple(values)) for param, values in items),
            )
        if self.cv < 2:
            raise ValidationError("cv must be >= 2")

    # ------------------------------------------------------------------
    def resolve_grid(self, algorithm: str) -> Mapping[str, Sequence[object]] | None:
        """The hyperparameter grid to search for *algorithm*.

        ``None`` means "use the algorithm's default grid" (what
        :func:`repro.core.pipeline.train_tuned_model` does with
        ``grid=None``).
        """
        if isinstance(self.grid, str):
            return GRID_PRESETS[self.grid][algorithm]
        return {param: list(values) for param, values in self.grid}

    @property
    def space_names(self) -> Tuple[str, ...]:
        return tuple(t.space_name for t in self.targets)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        grid: object = self.grid
        if not isinstance(grid, str):
            grid = [[param, list(values)] for param, values in grid]
        return {
            "name": self.name,
            "corpus": self.corpus.to_dict(),
            "targets": [t.to_dict() for t in self.targets],
            "algorithms": list(self.algorithms),
            "grid": grid,
            "cv": self.cv,
            "train_seed": self.train_seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentSpec":
        grid = payload.get("grid", "small")
        if not isinstance(grid, (str, Mapping)):
            grid = tuple((str(param), tuple(values)) for param, values in grid)
        return cls(
            name=str(payload["name"]),
            corpus=CorpusSpec.from_dict(payload.get("corpus", {})),
            targets=tuple(
                TargetSpec.from_dict(t) for t in payload.get("targets", ())
            ),
            algorithms=tuple(
                str(a) for a in payload.get("algorithms", ("random_forest",))
            ),
            grid=grid,
            cv=int(payload.get("cv", 5)),
            train_seed=int(payload.get("train_seed", 0)),
        )

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Stable content hash: canonical JSON -> blake2b hex digest."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()

    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write the spec as a JSON document."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: PathLike) -> "ExperimentSpec":
        """Read a spec written by :meth:`save` (or hand-authored JSON)."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
