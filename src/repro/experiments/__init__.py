"""Resumable, scenario-diverse experiment orchestration.

The experiments layer turns the hard-coded offline pipeline into a
config-driven engine:

* :mod:`~repro.experiments.spec` — :class:`ExperimentSpec`, a declarative
  scenario suite (parametric corpus x targets x algorithms x grids) with
  a stable content fingerprint.
* :mod:`~repro.experiments.store` — :class:`ArtifactStore`, the on-disk
  stage-output cache keyed by input fingerprints (the resume mechanism).
* :mod:`~repro.experiments.stages` — the five pipeline stages; profiling
  dispatches through the cached :class:`~repro.runtime.engine.WorkloadEngine`
  and fans matrix generation across a process pool.
* :mod:`~repro.experiments.orchestrator` —
  :class:`ExperimentOrchestrator`, the staged DAG runner behind
  ``repro run`` / ``repro resume``.
"""

from repro.experiments.orchestrator import (
    STAGES,
    ExperimentOrchestrator,
    ExperimentResult,
    StageOutcome,
)
from repro.experiments.spec import (
    ALGORITHMS,
    GRID_PRESETS,
    CorpusSpec,
    ExperimentSpec,
    TargetSpec,
)
from repro.experiments.stages import (
    TrainOutcome,
    compute_collection_stats,
    run_profile_stage,
)
from repro.experiments.store import ArtifactStore, stage_key

__all__ = [
    "ALGORITHMS",
    "GRID_PRESETS",
    "STAGES",
    "ArtifactStore",
    "CorpusSpec",
    "ExperimentOrchestrator",
    "ExperimentResult",
    "ExperimentSpec",
    "StageOutcome",
    "TargetSpec",
    "TrainOutcome",
    "compute_collection_stats",
    "run_profile_stage",
    "stage_key",
]
