"""On-disk artifact store keyed by stage-input fingerprints.

Every orchestrator stage writes its output here under
``<root>/<stage>/<key>.json`` where ``key`` is a digest of the stage name,
the experiment fingerprint and the upstream stage keys.  A killed or
re-invoked run recomputes the same keys, finds the artifacts, and resumes
with cache hits instead of regeneration — the store is the whole resume
mechanism, there is no separate checkpoint format.

Writes are atomic (temp file + ``os.replace``) so a run killed mid-write
never leaves a truncated artifact that would poison the resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Union

from repro.errors import ValidationError
from repro.experiments.spec import ExperimentSpec

__all__ = ["ArtifactStore", "stage_key"]

PathLike = Union[str, os.PathLike]

_SPEC_DIR = "experiments"
_LATEST = "LATEST"


def stage_key(stage: str, *parts: str) -> str:
    """Digest of a stage name plus its input fingerprints (store key)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(stage.encode())
    for part in parts:
        h.update(b"\x00")
        h.update(str(part).encode())
    return h.hexdigest()


class ArtifactStore:
    """Content-addressed JSON artifact directory with hit/miss accounting.

    The resume mechanism of the experiments layer: stage outputs are
    stored under ``<root>/<stage>/<key>.json`` where *key* is a
    :func:`stage_key` digest of the stage's inputs, so any run that
    recomputes the same keys finds its artifacts (:meth:`get` /
    :meth:`put`, both counted).  Suites' specs are recorded alongside
    (:meth:`save_spec` / :meth:`load_spec`), which is what lets
    ``repro resume`` and ``repro serve --store`` operate on a store
    without the original spec file.  Exported models live under
    ``<root>/models/<spec fingerprint>/``.

    Parameters
    ----------
    root:
        Store directory; created if absent.  Safe to share between
        suites — keys are content digests, so different suites never
        collide and overlapping suites share artifacts.

    Attributes
    ----------
    hits / misses:
        Lookup tallies (see :meth:`summary`); smoke tests assert
        "second run is all hits" through these.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, stage: str, key: str) -> str:
        for field_name, value in (("stage", stage), ("key", key)):
            if (
                not value
                or value in (".", "..")
                or os.sep in value
                or value != os.path.basename(value)
            ):
                raise ValidationError(
                    f"artifact {field_name} {value!r} must be a bare name"
                )
        return os.path.join(self.root, stage, f"{key}.json")

    def has(self, stage: str, key: str) -> bool:
        """True when an artifact exists (does not count as a lookup)."""
        return os.path.exists(self._path(stage, key))

    def get(self, stage: str, key: str) -> Optional[dict]:
        """Load an artifact payload, or ``None`` on a miss."""
        path = self._path(stage, key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        self.hits += 1
        return payload

    def put(self, stage: str, key: str, payload: dict) -> str:
        """Atomically write an artifact; returns its path."""
        path = self._path(stage, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    # ------------------------------------------------------------------
    # experiment specs: stored alongside artifacts so `repro resume` can
    # re-run without the user re-supplying the spec file
    # ------------------------------------------------------------------
    def save_spec(self, spec: ExperimentSpec) -> str:
        """Persist *spec* under its fingerprint and mark it latest."""
        spec_dir = os.path.join(self.root, _SPEC_DIR)
        os.makedirs(spec_dir, exist_ok=True)
        path = os.path.join(spec_dir, f"{spec.fingerprint}.json")
        spec.save(path)
        latest_tmp = os.path.join(self.root, f".{_LATEST}.tmp")
        with open(latest_tmp, "w", encoding="utf-8") as fh:
            fh.write(spec.fingerprint + "\n")
        os.replace(latest_tmp, os.path.join(self.root, _LATEST))
        return path

    def load_spec(self, fingerprint: Optional[str] = None) -> ExperimentSpec:
        """Load a stored spec; defaults to the most recently saved one."""
        if fingerprint is None:
            latest = os.path.join(self.root, _LATEST)
            if not os.path.exists(latest):
                raise ValidationError(
                    f"no experiment spec recorded in {self.root}; run "
                    "`repro run <spec>` first"
                )
            with open(latest, "r", encoding="utf-8") as fh:
                fingerprint = fh.read().strip()
        path = os.path.join(self.root, _SPEC_DIR, f"{fingerprint}.json")
        if not os.path.exists(path):
            raise ValidationError(
                f"no spec with fingerprint {fingerprint!r} in {self.root}"
            )
        return ExperimentSpec.load(path)

    def list_specs(self) -> List[str]:
        """Fingerprints of all stored experiment specs."""
        spec_dir = os.path.join(self.root, _SPEC_DIR)
        if not os.path.isdir(spec_dir):
            return []
        return sorted(
            f[: -len(".json")]
            for f in os.listdir(spec_dir)
            if f.endswith(".json")
        )

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Lookup accounting for reports and smoke assertions."""
        total = self.hits + self.misses
        return {
            "root": self.root,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }
