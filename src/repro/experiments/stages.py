"""Stage implementations of the offline experiment pipeline.

The orchestrator's DAG is ``profile -> dataset -> train -> export ->
evaluate``; each stage here is a plain function that (optionally) consults
an :class:`~repro.experiments.store.ArtifactStore` before computing, and
persists its output after.  The profiling stage dispatches timings through
:meth:`~repro.runtime.engine.WorkloadEngine.profile_formats` (memoised
stats / features / timings) and fans matrix generation out across a
``concurrent.futures`` process pool — generation is the CPU-bound part of
the offline pipeline and the matrices are independent.

:func:`repro.core.pipeline.profile_collection` and
:func:`repro.core.pipeline.train_tuned_model` are thin compatibility
wrappers over :func:`run_profile_stage` and :func:`train_model`.
"""

from __future__ import annotations

import hashlib
import io
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import ExecutionSpace
from repro.core.features import extract_features_from_stats
from repro.core.model_io import OracleModel, load_model, save_model
from repro.datasets.collection import MatrixCollection, MatrixSpec
from repro.errors import TuningError, ValidationError
from repro.formats.base import FORMAT_IDS
from repro.machine.stats import MatrixStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import ProfilingResult, TrainedModel
    from repro.experiments.store import ArtifactStore
    from repro.runtime.engine import WorkloadEngine

__all__ = [
    "compute_collection_stats",
    "run_profile_stage",
    "run_dataset_stage",
    "augment_dataset",
    "train_model",
    "run_train_stage",
    "run_export_stage",
    "run_evaluate_stage",
    "TrainOutcome",
]


# ----------------------------------------------------------------------
# profile stage
# ----------------------------------------------------------------------


def _stats_worker(spec: MatrixSpec) -> Tuple[str, dict]:
    """Generate one matrix and return its stats (runs in a worker process)."""
    return spec.name, MatrixStats.from_matrix(spec.generate()).to_dict()


def _pool_context():
    """Prefer ``fork`` (cheap, inherits the imported package) when available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def compute_collection_stats(
    collection: MatrixCollection,
    specs: Sequence[MatrixSpec] | None = None,
    *,
    jobs: int = 1,
) -> int:
    """Resolve stats for *specs*, fanning generation across ``jobs`` workers.

    Already-cached stats are skipped; returns the number of matrices that
    were actually generated.  With ``jobs <= 1`` the work stays in-process
    (no pool overhead); workers count towards the collection's
    :attr:`~MatrixCollection.stats_computed` through
    :meth:`~MatrixCollection.prime_stats`.
    """
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1, got {jobs}")
    todo = [
        s
        for s in (collection.specs if specs is None else specs)
        if not collection.has_stats(s.name)
    ]
    if not todo:
        return 0
    if jobs == 1 or len(todo) == 1:
        for spec in todo:
            collection.stats(spec)
        return len(todo)
    chunksize = max(1, len(todo) // (4 * jobs))
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(todo)), mp_context=_pool_context()
    ) as pool:
        for name, payload in pool.map(_stats_worker, todo, chunksize=chunksize):
            collection.prime_stats(
                name, MatrixStats.from_dict(payload), computed=True
            )
    return len(todo)


def _profile_payload(
    result: "ProfilingResult",
    collection: MatrixCollection,
    specs: Sequence[MatrixSpec],
) -> dict:
    """Artifact payload: timings, labels *and* the per-matrix stats, so a
    resumed run can feed every downstream stage with zero generation."""
    payload = {
        "times": result.times,
        "optimal": result.optimal,
        "stats": {s.name: collection.stats(s).to_dict() for s in specs},
    }
    if result.backend_times:
        payload["backend_times"] = result.backend_times
        payload["optimal_backend"] = result.optimal_backend
    return payload


def _adopt_profile_payload(
    collection: MatrixCollection,
    specs: Sequence[MatrixSpec],
    spaces: Sequence[ExecutionSpace],
    payload: dict,
    *,
    profile_backends: bool = False,
) -> Optional["ProfilingResult"]:
    """Rebuild a ProfilingResult from a stored payload, priming the
    collection's stats cache.  Returns ``None`` if the payload does not
    cover the requested matrices/spaces (treated as a store miss) — a
    backend-aware request is a miss on payloads written without the
    backend tables."""
    from repro.core.pipeline import ProfilingResult

    names = [s.name for s in specs]
    stats = payload.get("stats", {})
    times = payload.get("times", {})
    optimal = payload.get("optimal", {})
    backend_times = payload.get("backend_times", {})
    optimal_backend = payload.get("optimal_backend", {})
    for space in spaces:
        if space.name not in times or space.name not in optimal:
            return None
        if any(n not in times[space.name] for n in names):
            return None
        if profile_backends:
            if space.name not in backend_times:
                return None
            if any(n not in backend_times[space.name] for n in names):
                return None
    if any(n not in stats for n in names):
        return None
    for name in names:
        collection.prime_stats(
            name, MatrixStats.from_dict(stats[name]), computed=False
        )
    result = ProfilingResult(from_store=True)
    for space in spaces:
        result.times[space.name] = {
            n: dict(times[space.name][n]) for n in names
        }
        result.optimal[space.name] = {
            n: int(optimal[space.name][n]) for n in names
        }
        if space.name in backend_times:
            result.backend_times[space.name] = {
                n: {
                    kb: dict(fmts)
                    for kb, fmts in backend_times[space.name][n].items()
                }
                for n in names
                if n in backend_times[space.name]
            }
            result.optimal_backend[space.name] = {
                n: str(optimal_backend[space.name][n])
                for n in names
                if n in optimal_backend.get(space.name, {})
            }
    return result


def run_profile_stage(
    collection: MatrixCollection,
    spaces: Sequence[ExecutionSpace],
    *,
    specs: Sequence[MatrixSpec] | None = None,
    jobs: int = 1,
    store: Optional["ArtifactStore"] = None,
    key: Optional[str] = None,
    engines: Optional[Dict[str, "WorkloadEngine"]] = None,
    profile_backends: bool = False,
) -> "ProfilingResult":
    """Profiling runs: label the optimal format for every (matrix, space).

    Matrix generation fans out across ``jobs`` worker processes; the
    per-format timings dispatch through each space's
    :class:`~repro.runtime.engine.WorkloadEngine` so stats and timings are
    memoised per matrix key.  With a *store* and *key* the stage is
    resumable: a stored artifact restores timings, labels and stats
    without generating a single matrix.

    With ``profile_backends=True`` the stage also measures every kernel
    backend the space would trial
    (:meth:`~repro.runtime.engine.WorkloadEngine.profile_backends`): the
    optimal label becomes the format of the argmin over the full
    (format × kernel backend) surface and the winning backend is
    recorded in ``optimal_backend`` — feeding backend-aware training.
    """
    from repro.core.pipeline import ProfilingResult

    if store is not None and key is None:
        raise ValidationError("a store-backed profile stage needs a key")
    if specs is None:
        specs = collection.specs
    if store is not None:
        payload = store.get("profile", key)
        if payload is not None:
            adopted = _adopt_profile_payload(
                collection, specs, spaces, payload,
                profile_backends=profile_backends,
            )
            if adopted is not None:
                return adopted
    compute_collection_stats(collection, specs, jobs=jobs)
    result = ProfilingResult()
    for space in spaces:
        if engines is None:
            engine = space.engine()
        else:
            engine = engines.setdefault(space.name, space.engine())
        result.times[space.name] = {}
        result.optimal[space.name] = {}
        if profile_backends:
            result.backend_times[space.name] = {}
            result.optimal_backend[space.name] = {}
        for spec in specs:
            times = engine.profile_formats(
                key=spec.name, stats=collection.stats(spec)
            )
            result.times[space.name][spec.name] = times
            best = min(times, key=times.get)  # type: ignore[arg-type]
            if profile_backends:
                grid = engine.profile_backends(
                    key=spec.name, stats=collection.stats(spec)
                )
                result.backend_times[space.name][spec.name] = grid
                best_kb, best = min(
                    (
                        (kb, fmt)
                        for kb, fmts in sorted(grid.items())
                        for fmt in fmts
                    ),
                    key=lambda pair: grid[pair[0]][pair[1]],
                )
                result.optimal_backend[space.name][spec.name] = best_kb
            result.optimal[space.name][spec.name] = FORMAT_IDS[best]
    if store is not None:
        store.put("profile", key, _profile_payload(result, collection, specs))
    return result


# ----------------------------------------------------------------------
# dataset stage
# ----------------------------------------------------------------------


def run_dataset_stage(
    collection: MatrixCollection,
    train_specs: Sequence[MatrixSpec],
    test_specs: Sequence[MatrixSpec],
    profiling: "ProfilingResult",
    space_name: str,
    *,
    store: Optional["ArtifactStore"] = None,
    key: Optional[str] = None,
) -> Dict[str, np.ndarray]:
    """Assemble the per-space ``(X, y)`` train/test arrays (Table I)."""
    if store is not None and key is not None:
        payload = store.get("dataset", key)
        if payload is not None:
            return {
                name: np.asarray(payload[name])
                for name in ("X_train", "y_train", "X_test", "y_test")
            }
    from repro.core.pipeline import build_dataset

    X_train, y_train = build_dataset(
        collection, train_specs, profiling, space_name
    )
    X_test, y_test = build_dataset(collection, test_specs, profiling, space_name)
    dataset = {
        "X_train": X_train,
        "y_train": y_train,
        "X_test": X_test,
        "y_test": y_test,
    }
    if store is not None and key is not None:
        store.put(
            "dataset",
            key,
            {name: arr.tolist() for name, arr in dataset.items()},
        )
    return dataset


def augment_dataset(
    dataset: Dict[str, np.ndarray],
    X_extra: np.ndarray,
    y_extra: np.ndarray,
    *,
    test_fraction: float = 0.2,
    seed: int = 0,
    train_replicas: int = 1,
) -> Dict[str, np.ndarray]:
    """Fold extra labelled samples into a stage dataset's train/test split.

    The adaptive retrain loop augments the offline suite's dataset with
    telemetry-derived samples (features + shadow-measured optimal
    format).  Extras are shuffled deterministically by *seed* and split
    ``test_fraction`` into the test arrays, the rest into train, so the
    retrained model is still scored on held-out samples from the new
    population.  ``train_replicas`` replicates the *train-side* extras
    after the split (recency weighting) — replication happens strictly
    post-split so no row can appear in both train and test and inflate
    the held-out scores.  Returns a new dataset dict; the input is not
    mutated.
    """
    X_extra = np.asarray(X_extra, dtype=np.float64)
    y_extra = np.asarray(y_extra)
    if X_extra.shape[0] != y_extra.shape[0]:
        raise ValidationError(
            f"X_extra has {X_extra.shape[0]} rows but y_extra has "
            f"{y_extra.shape[0]}"
        )
    if not 0.0 <= test_fraction < 1.0:
        raise ValidationError("test_fraction must be in [0, 1)")
    if train_replicas < 1:
        raise ValidationError(
            f"train_replicas must be >= 1, got {train_replicas}"
        )
    out = {name: np.asarray(dataset[name]) for name in
           ("X_train", "y_train", "X_test", "y_test")}
    if X_extra.shape[0] == 0:
        return out
    order = np.random.default_rng(seed).permutation(X_extra.shape[0])
    n_test = int(round(test_fraction * X_extra.shape[0]))
    test_idx, train_idx = order[:n_test], order[n_test:]
    if train_idx.size:
        out["X_train"] = np.concatenate(
            [out["X_train"]]
            + [X_extra[train_idx]] * int(train_replicas)
        )
        out["y_train"] = np.concatenate(
            [out["y_train"]]
            + [y_extra[train_idx]] * int(train_replicas)
        )
    if test_idx.size:
        out["X_test"] = np.concatenate([out["X_test"], X_extra[test_idx]])
        out["y_test"] = np.concatenate([out["y_test"], y_extra[test_idx]])
    return out


# ----------------------------------------------------------------------
# train stage
# ----------------------------------------------------------------------


def _make_estimator(algorithm: str, seed: int) -> object:
    from repro.ml.forest import RandomForestClassifier
    from repro.ml.tree.classifier import DecisionTreeClassifier

    if algorithm == "random_forest":
        # scikit-learn-like defaults: 100 trees, unbounded depth
        return RandomForestClassifier(n_estimators=100, seed=seed)
    if algorithm == "decision_tree":
        return DecisionTreeClassifier(seed=seed)
    raise ValidationError(
        f"unknown algorithm {algorithm!r}; expected "
        "'random_forest' or 'decision_tree'"
    )


def train_model(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    *,
    algorithm: str = "random_forest",
    grid: Mapping[str, Sequence[object]] | None = None,
    cv: int = 5,
    scoring: str = "accuracy",
    seed: int = 0,
    system: str = "",
    backend: str = "",
) -> "TrainedModel":
    """Train the baseline, grid-search the tuned model, score both.

    Follows Section VII-D: 5-fold CV grid search on the training split,
    refit on the full training set, report accuracy and balanced accuracy
    on the untouched test split.
    """
    from repro.core.pipeline import (
        DEFAULT_DT_GRID,
        DEFAULT_RF_GRID,
        TrainedModel,
    )
    from repro.ml.metrics import accuracy_score, balanced_accuracy_score
    from repro.ml.model_selection import GridSearchCV

    if np.unique(y_train).shape[0] < 2:
        raise TuningError(
            "training labels contain a single class; profiling produced a "
            "degenerate dataset"
        )
    baseline = _make_estimator(algorithm, seed)
    baseline.fit(X_train, y_train)

    search_grid = grid
    if search_grid is None:
        search_grid = (
            DEFAULT_RF_GRID if algorithm == "random_forest" else DEFAULT_DT_GRID
        )
    search = GridSearchCV(
        _make_estimator(algorithm, seed),
        search_grid,
        cv=cv,
        scoring=scoring,
        seed=seed,
    )
    search.fit(X_train, y_train)
    tuned = search.best_estimator_

    scores = {
        "baseline_accuracy": accuracy_score(y_test, baseline.predict(X_test)),
        "baseline_balanced_accuracy": balanced_accuracy_score(
            y_test, baseline.predict(X_test)
        ),
        "tuned_accuracy": accuracy_score(y_test, tuned.predict(X_test)),
        "tuned_balanced_accuracy": balanced_accuracy_score(
            y_test, tuned.predict(X_test)
        ),
    }
    return TrainedModel(
        algorithm=algorithm,
        system=system,
        backend=backend,
        baseline=baseline,
        tuned=tuned,
        baseline_params=baseline.get_params(),
        tuned_params=search.best_params_,
        cv_best_score=search.best_score_,
        test_scores=scores,
    )


@dataclass
class TrainOutcome:
    """One trained (space, algorithm) cell, restorable from the store.

    Unlike :class:`~repro.core.pipeline.TrainedModel` this carries the
    deployable :class:`OracleModel` pair rather than live estimators, so
    an artifact round-trip loses nothing the downstream stages need.
    """

    algorithm: str
    system: str
    backend: str
    baseline_params: Dict[str, object]
    tuned_params: Dict[str, object]
    cv_best_score: float
    test_scores: Dict[str, float]
    oracle_model: OracleModel
    baseline_oracle_model: OracleModel
    from_store: bool = False

    @property
    def space_name(self) -> str:
        return f"{self.system}/{self.backend}"


def _model_to_text(model: OracleModel) -> str:
    buf = io.StringIO()
    save_model(buf, model)
    return buf.getvalue()


def _model_from_text(text: str) -> OracleModel:
    return load_model(io.StringIO(text))


def run_train_stage(
    dataset: Dict[str, np.ndarray],
    *,
    algorithm: str,
    system: str,
    backend: str,
    grid: Mapping[str, Sequence[object]] | None,
    cv: int = 5,
    seed: int = 0,
    store: Optional["ArtifactStore"] = None,
    key: Optional[str] = None,
    kernel_backend: Optional[str] = None,
) -> TrainOutcome:
    """Train + grid-search one (space, algorithm) cell, store-resumable.

    *kernel_backend* (typically the profiling run's
    :meth:`~repro.core.pipeline.ProfilingResult.dominant_backend`) is
    stamped into both exported models' ``metadata["kernel_backend"]``:
    the ML tuners read that stamp at serve time, so a model trained
    against backend-aware labels deploys its backend along with itself.
    """
    if store is not None and key is not None:
        payload = store.get("train", key)
        if payload is not None:
            return TrainOutcome(
                algorithm=payload["algorithm"],
                system=payload["system"],
                backend=payload["backend"],
                baseline_params=payload["baseline_params"],
                tuned_params=payload["tuned_params"],
                cv_best_score=payload["cv_best_score"],
                test_scores=payload["test_scores"],
                oracle_model=_model_from_text(payload["tuned_model"]),
                baseline_oracle_model=_model_from_text(
                    payload["baseline_model"]
                ),
                from_store=True,
            )
    tm = train_model(
        dataset["X_train"],
        dataset["y_train"],
        dataset["X_test"],
        dataset["y_test"],
        algorithm=algorithm,
        grid=grid,
        cv=cv,
        seed=seed,
        system=system,
        backend=backend,
    )
    outcome = TrainOutcome(
        algorithm=tm.algorithm,
        system=tm.system,
        backend=tm.backend,
        baseline_params=dict(tm.baseline_params),
        tuned_params=dict(tm.tuned_params),
        cv_best_score=float(tm.cv_best_score),
        test_scores=dict(tm.test_scores),
        oracle_model=tm.oracle_model,
        baseline_oracle_model=tm.baseline_oracle_model,
    )
    if kernel_backend:
        # the stamp rides the model file itself (the "meta" line), so it
        # survives the store round-trip and the export stage unchanged
        outcome.oracle_model.metadata["kernel_backend"] = str(kernel_backend)
        outcome.baseline_oracle_model.metadata["kernel_backend"] = str(
            kernel_backend
        )
    if store is not None and key is not None:
        store.put(
            "train",
            key,
            {
                "algorithm": outcome.algorithm,
                "system": outcome.system,
                "backend": outcome.backend,
                "baseline_params": outcome.baseline_params,
                "tuned_params": outcome.tuned_params,
                "cv_best_score": outcome.cv_best_score,
                "test_scores": outcome.test_scores,
                "tuned_model": _model_to_text(outcome.oracle_model),
                "baseline_model": _model_to_text(
                    outcome.baseline_oracle_model
                ),
            },
        )
    return outcome


# ----------------------------------------------------------------------
# export stage
# ----------------------------------------------------------------------


def _file_digest(path: str) -> str:
    with open(path, "rb") as fh:
        return hashlib.blake2b(fh.read(), digest_size=16).hexdigest()


def export_is_current(store: "ArtifactStore", key: str) -> Optional[List[str]]:
    """Exported model paths when the artifact matches what is on disk.

    Model files live in a shared :class:`ModelDatabase` directory where a
    later suite may legitimately overwrite a key, so the export artifact
    records a content digest per file and only counts as current while
    the files still match — otherwise the stage re-exports.
    """
    payload = store.get("export", key)
    if payload is None:
        return None
    paths = payload.get("paths", [])
    digests = payload.get("digests", {})
    for path in paths:
        if not os.path.exists(path) or digests.get(path) != _file_digest(path):
            return None
    return list(paths)


def run_export_stage(
    outcomes: Sequence[TrainOutcome],
    model_dir: str,
    *,
    store: Optional["ArtifactStore"] = None,
    key: Optional[str] = None,
    check_store: bool = True,
) -> List[str]:
    """Write every tuned model into a :class:`ModelDatabase` directory.

    ``check_store=False`` skips the :func:`export_is_current` lookup for
    callers that just performed it themselves.
    """
    from repro.core.pipeline import ModelDatabase

    if check_store and store is not None and key is not None:
        current = export_is_current(store, key)
        if current is not None:
            return current
    db = ModelDatabase(model_dir)
    paths = [
        db.save(o.oracle_model, algorithm=o.algorithm) for o in outcomes
    ]
    if store is not None and key is not None:
        store.put(
            "export",
            key,
            {"paths": paths, "digests": {p: _file_digest(p) for p in paths}},
        )
    return paths


# ----------------------------------------------------------------------
# evaluate stage
# ----------------------------------------------------------------------


def run_evaluate_stage(
    profiling: "ProfilingResult",
    outcomes: Sequence[TrainOutcome],
    space_names: Sequence[str],
    *,
    store: Optional["ArtifactStore"] = None,
    key: Optional[str] = None,
) -> dict:
    """Final report: Figure-2 distributions, speedups, model scores."""
    if store is not None and key is not None:
        payload = store.get("evaluate", key)
        if payload is not None:
            return payload
    from repro.evaluation.analysis import speedup_summary

    report = {
        "format_distribution": {
            name: profiling.format_distribution(name) for name in space_names
        },
        "speedup_vs_csr": {},
        "models": [],
    }
    for name in space_names:
        summary = speedup_summary(profiling, name)
        report["speedup_vs_csr"][name] = {
            "n": summary.n,
            "mean": summary.mean,
            "median": summary.median,
            "q3": summary.q3,
            "maximum": summary.maximum,
        }
    for outcome in outcomes:
        report["models"].append(
            {
                "algorithm": outcome.algorithm,
                "space": outcome.space_name,
                "cv_best_score": outcome.cv_best_score,
                "tuned_params": outcome.tuned_params,
                "test_scores": outcome.test_scores,
            }
        )
    if store is not None and key is not None:
        store.put("evaluate", key, report)
    return report
