"""Command-line interface: the Sparse.Tree / Oracle workflow from a shell.

Subcommands mirror the paper's pipeline:

``repro-oracle systems``
    List the simulated systems and their backends (Table II).
``repro-oracle backends``
    List the real kernel backends (:mod:`repro.kernels`): probe results,
    generation, compiled/JIT kind, and the resolution order requests
    fall through.
``repro-oracle profile --system cirrus --backend cuda [-n 300]``
    Profiling runs on the synthetic corpus; prints the optimal-format
    distribution (Figure 2 column).
``repro-oracle train --system cirrus --backend cuda -o model.file``
    Offline stage: profile, train, grid-search-tune, export (Figure 1).
``repro-oracle features matrix.mtx``
    Print the Table-I feature vector of a Matrix Market file.
``repro-oracle predict --model model.file matrix.mtx``
    Online stage: load the model, extract features, print the format.
``repro-oracle tune --model model.file --repetitions 1000 matrix.mtx``
    Full TuneMultiply: decision, overhead and speedup report.
``repro-oracle batch --system cirrus --backend serial -n 12 --requests 60``
    Serve a synthetic SpMV workload through the cached
    :class:`~repro.runtime.engine.WorkloadEngine` and report cache hit
    rates and amortised tuning cost.
``repro-oracle run suite.json --store ./store --jobs 4``
    Run a declarative scenario suite through the resumable experiment
    orchestrator; stage artifacts land in the store, so re-running (or
    ``resume`` after a kill) serves completed stages from disk.
``repro-oracle resume --store ./store``
    Re-run the most recent suite recorded in the store, resuming from
    its completed stage artifacts.
``repro-oracle serve --workers 4 --capacity 32 --clients 8``
    Drive the concurrent :class:`~repro.service.service.TuningService`
    with a multi-client workload — synthetic by default, or a trace
    replayed over a stored suite's corpus and exported model with
    ``--store`` — and report throughput, latency, coalescing and
    engine-cache counters.  ``--adaptive`` attaches an
    :class:`~repro.adaptive.controller.AdaptiveController` (telemetry,
    drift detection, background retraining, hot model reload).
``repro-oracle stream --family growing_rmat --epochs 12``
    Drive an evolving matrix through the streaming mutation path:
    :class:`~repro.service.service.Session` update requests advance the
    epoch, the engine maintains statistics incrementally and carries
    format decisions forward, and every served result is verified
    bitwise against a from-scratch engine on the compacted matrix.
``repro-oracle adapt --system cirrus --backend cuda --requests 160``
    End-to-end adaptive-loop demonstration: train an initial model on a
    banded corpus, serve a workload that drifts to scale-free matrices,
    watch the drift monitor trigger a retrain, and report how much the
    promoted model lowers the mispredict rate on the drifted segment.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.backends import make_space
from repro.core import (
    RandomForestTuner,
    RunFirstTuner,
    build_dataset,
    extract_features,
    profile_collection,
    save_model,
    train_tuned_model,
    tune_multiply,
)
from repro.core.features import FEATURE_NAMES
from repro.core.pipeline import SMALL_RF_GRID
from repro.datasets import MatrixCollection, read_matrix_market
from repro.formats import DynamicMatrix
from repro.formats.base import FORMAT_IDS
from repro.machine.systems import SYSTEMS

__all__ = ["main"]


def _add_target_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.add_argument(
        "--backend", required=True, choices=["serial", "openmp", "cuda", "hip"]
    )


def _add_corpus_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "-n", "--n-matrices", type=int, default=300,
        help="corpus size (paper: 2200)",
    )
    p.add_argument("--seed", type=int, default=42)


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for matrix generation during profiling",
    )


def cmd_systems(_args: argparse.Namespace) -> int:
    print(f"{'system':<10}{'backends':<24}devices")
    print("-" * 70)
    for name in sorted(SYSTEMS):
        system = SYSTEMS[name]
        devices = ", ".join(
            sorted({d.name for d in system.devices.values()})
        )
        print(f"{name:<10}{', '.join(system.backends):<24}{devices}")
    return 0


def cmd_backends(_args: argparse.Namespace) -> int:
    from repro.kernels import (
        PREFERENCE,
        available_backends,
        backend_info,
        default_backend,
        modelled_warmup_seconds,
    )

    print(f"{'backend':<9}{'gen':<5}{'available':<11}{'kind':<11}"
          f"{'warmup':<9}detail")
    print("-" * 78)
    for name in PREFERENCE:
        info = backend_info(name)
        kind = (
            "jit" if info.jit
            else "compiled" if info.compiled
            else "reference"
        )
        warm = modelled_warmup_seconds(name)
        print(f"{name:<9}{info.generation:<5}"
              f"{'yes' if info.available else 'no':<11}{kind:<11}"
              f"{warm:<9.1f}{info.detail}")
    avail = available_backends()
    print(f"resolution order     {' > '.join(avail)}")
    print(f"default backend      {default_backend()}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    space = make_space(args.system, args.backend)
    collection = MatrixCollection(n_matrices=args.n_matrices, seed=args.seed)
    profiling = profile_collection(collection, [space], jobs=args.jobs)
    dist = profiling.format_distribution(space.name)
    print(f"optimal-format distribution on {space.name} "
          f"({args.n_matrices} matrices):")
    for fmt in FORMAT_IDS:
        print(f"  {fmt:<5} {100 * dist[fmt]:6.1f}%")
    speedups = profiling.speedup_vs_csr(space.name)
    if speedups.size:
        print(f"optimal-vs-CSR speedup (non-CSR optima): "
              f"mean {speedups.mean():.2f}x, max {speedups.max():.1f}x")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    space = make_space(args.system, args.backend)
    collection = MatrixCollection(n_matrices=args.n_matrices, seed=args.seed)
    profiling = profile_collection(collection, [space], jobs=args.jobs)
    train, test = collection.train_test_split()
    Xtr, ytr = build_dataset(collection, train, profiling, space.name)
    Xte, yte = build_dataset(collection, test, profiling, space.name)
    tm = train_tuned_model(
        Xtr, ytr, Xte, yte,
        algorithm=args.algorithm,
        grid=SMALL_RF_GRID if args.algorithm == "random_forest" else None,
        system=args.system, backend=args.backend,
    )
    save_model(args.output, tm.oracle_model)
    print(f"model written to {args.output}")
    print(f"test accuracy          {100 * tm.test_scores['tuned_accuracy']:.2f}%")
    print(f"test balanced accuracy "
          f"{100 * tm.test_scores['tuned_balanced_accuracy']:.2f}%")
    return 0


def cmd_features(args: argparse.Namespace) -> int:
    matrix = read_matrix_market(args.matrix)
    vec = extract_features(matrix)
    for name, value in zip(FEATURE_NAMES, vec):
        print(f"{name:<8} {value:g}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    matrix = read_matrix_market(args.matrix)
    tuner = RandomForestTuner(args.model)
    system = tuner.model.system or "cirrus"
    backend = tuner.model.backend or "serial"
    space = make_space(system, backend)
    report = tuner.tune(DynamicMatrix(matrix), space)
    print(f"predicted optimal format: {report.format_name} "
          f"(id {report.format_id}) for {space.name}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    matrix = read_matrix_market(args.matrix)
    tuner = RandomForestTuner(args.model)
    system = tuner.model.system or "cirrus"
    backend = tuner.model.backend or "serial"
    space = make_space(system, backend)
    dyn = DynamicMatrix(matrix)
    result = tune_multiply(
        dyn, tuner, space, np.ones(dyn.ncols), repetitions=args.repetitions
    )
    print(f"target               {space.name} ({space.device.name})")
    print(f"selected format      {result.report.format_name}")
    print(f"tuning cost          "
          f"{result.tuning_cost_csr_equivalents:.1f} CSR-SpMV equivalents")
    print(f"speedup vs CSR       {result.speedup_vs_csr:.2f}x "
          f"over {result.repetitions} SpMVs")
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    import time

    space = make_space(args.system, args.backend)
    collection = MatrixCollection(n_matrices=args.n_matrices, seed=args.seed)
    specs = collection.specs
    tuner = RandomForestTuner(args.model) if args.model else RunFirstTuner()
    engine = space.engine(tuner=tuner)
    rng = np.random.default_rng(args.seed)
    matrices: dict = {}
    t0 = time.perf_counter()
    for _ in range(args.requests):
        spec = specs[int(rng.integers(0, len(specs)))]
        if spec.name not in matrices:
            matrices[spec.name] = DynamicMatrix(collection.generate(spec))
        dyn = matrices[spec.name]
        engine.submit(dyn, rng.standard_normal(dyn.ncols), key=spec.name)
    results = engine.flush()
    wall = time.perf_counter() - t0
    report = engine.stats()
    counters = report["counters"]
    seconds = report["seconds"]
    decisions = counters["decision_misses"]
    naive_tuning = (
        seconds["tuning"] * (args.requests / decisions) if decisions else 0.0
    )
    print(f"served               {len(results)} requests over "
          f"{report['unique_matrices']} matrices on {space.name}")
    print(f"decision cache       {counters['decision_hits']} hits / "
          f"{decisions} misses "
          f"(hit rate {100 * report['hit_rate']:.1f}% overall)")
    print(f"modelled SpMV time   {seconds['spmv']:.6f} s")
    print(f"tuning overhead      {seconds['tuning']:.6f} s amortised "
          f"(vs {naive_tuning:.6f} s re-tuning every request)")
    print(f"conversion overhead  {seconds['conversion']:.6f} s")
    print(f"wall-clock           {wall:.3f} s")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import tempfile
    import time

    from repro.service import (
        TuningService,
        replay,
        service_for_suite,
        synthetic_trace,
        trace_from_suite,
    )

    shadow_every = args.shadow_every
    if args.adaptive and shadow_every == 0:
        shadow_every = 4  # the adaptive loop needs shadow timings
    distributed = getattr(args, "distributed", False)
    kill_after = getattr(args, "kill_after", 0)
    verify_identity = getattr(args, "verify_identity", False)
    if kill_after and not distributed:
        print("serve: --kill-after requires --distributed",
              file=sys.stderr)
        return 2
    storage_dir = getattr(args, "storage_dir", None)
    if storage_dir and distributed:
        print("serve: --storage-dir applies to the in-process tier "
              "(workers own per-process engines)", file=sys.stderr)
        return 2
    service_cls = TuningService
    if distributed:
        from repro.distributed import DistributedService

        service_cls = DistributedService
    service_kwargs = dict(
        workers=args.workers,
        capacity=args.capacity,
        shards=args.shards,
        max_batch=args.max_batch,
        shadow_every=shadow_every,
        kernel_backend=args.kernel_backend,
    )
    # the reference replay for --verify-identity runs without the disk
    # tier: identical results prove demote/promote/streaming change
    # nothing about the math
    reference_kwargs = dict(service_kwargs)
    if storage_dir:
        service_kwargs.update(
            storage_dir=storage_dir,
            storage_capacity_bytes=getattr(
                args, "storage_capacity_bytes", None
            ),
        )
    stream_threshold = getattr(args, "stream_threshold_bytes", None)
    if stream_threshold is not None and not distributed:
        # 0 streams every mmap-backed CSR; negative disables streaming
        service_kwargs["stream_threshold_bytes"] = (
            None if stream_threshold < 0 else stream_threshold
        )
    if args.store:
        trace, spec = trace_from_suite(
            args.store,
            fingerprint=args.fingerprint,
            n_matrices=args.n_matrices,
            requests=args.requests,
            seed=args.seed,
        )
        service = service_for_suite(
            args.store,
            fingerprint=args.fingerprint,
            service_cls=service_cls,
            **service_kwargs,
        )
        print(f"replaying suite      {spec.name} "
              f"(fingerprint {spec.fingerprint})")
    else:
        if not (args.system and args.backend):
            print("serve: --system and --backend are required without "
              "--store", file=sys.stderr)
            return 2
        space = make_space(args.system, args.backend)
        tuner = RandomForestTuner(args.model) if args.model else RunFirstTuner()
        trace = synthetic_trace(
            args.n_matrices, args.requests, seed=args.seed
        )
        service = service_cls(space, tuner, **service_kwargs)
    controller = None
    if args.adaptive:
        from repro.adaptive import AdaptiveController, ModelRegistry

        registry_dir = args.registry or tempfile.mkdtemp(
            prefix="repro-registry-"
        )
        controller = AdaptiveController(
            service,
            ModelRegistry(registry_dir),
            check_every=args.check_every,
            background=True,
        ).attach()
    spiller = None
    metrics_dir = getattr(args, "metrics_dir", None)
    if metrics_dir:
        from repro.obs.spill import MetricsSpiller

        spiller = MetricsSpiller(
            metrics_dir,
            service.obs,
            interval=getattr(args, "metrics_interval", 1.0),
            retention_bytes=getattr(args, "metrics_retention_bytes", None),
            retention_segments=getattr(
                args, "metrics_retention_segments", 4
            ),
        ).start()
    killer = None
    if kill_after:
        import threading

        def kill_one_worker_mid_replay():
            # wait until the replay is genuinely in flight, then SIGKILL
            # the worker owning the trace's first matrix — the recovery
            # drill CI greps for
            while service.requests_served < kill_after:
                if service.requests_served >= args.requests:
                    return
                time.sleep(0.005)
            victim = service.worker_of(trace.sequence[0])
            pid = service.kill_worker(victim)
            if pid is not None:
                print(f"kill drill           SIGKILLed worker {victim} "
                      f"(pid {pid}) after "
                      f"{kill_after} requests")

        killer = threading.Thread(
            target=kill_one_worker_mid_replay, name="serve-kill-drill"
        )
    with service:
        if killer is not None:
            killer.start()
        report = replay(service, trace, clients=args.clients)
        if killer is not None:
            killer.join()
        if controller is not None:
            controller.close()
        if spiller is not None:
            spiller.stop()  # final flush while the fleet is still up
    stats = report.service_stats
    cache = stats["engine_cache"]
    engines = stats["engines"]
    latency = stats["latency"]
    coalesced = stats["coalesced_requests"]
    mean_batch = (
        coalesced / stats["coalesced_batches"]
        if stats["coalesced_batches"]
        else 1.0
    )
    print(f"served               {stats['requests_served']} requests from "
          f"{report.clients} clients over {len(trace.matrices)} matrices "
          f"on {stats['space']}")
    print(f"workers / capacity   {stats['workers']} workers, "
          f"{cache['capacity']} engines across {cache['shards']} shards")
    print(f"throughput           {report.throughput_rps:.0f} requests/s "
          f"({report.wall_seconds:.3f} s wall)")
    print(f"latency              mean {1e3 * latency['mean_seconds']:.2f} ms, "
          f"max {1e3 * latency['max_seconds']:.2f} ms")
    print(f"coalescing           {stats['coalesced_batches']} batched kernel "
          f"calls covering {coalesced} requests "
          f"(mean batch {mean_batch:.1f})")
    print(f"engine cache         {cache['hits']} hits / {cache['misses']} "
          f"misses, {cache['evictions']} evictions "
          f"({cache['size']}/{cache['capacity']} live)")
    print(f"modelled seconds     spmv {engines['seconds']['spmv']:.6f}, "
          f"tuning {engines['seconds']['tuning']:.6f}, "
          f"conversion {engines['seconds']['conversion']:.6f}")
    backends = stats.get("backends", {})
    if backends:
        parts = ", ".join(
            f"{kb} {v['requests']} requests "
            f"({v['seconds']:.6f} s)"
            for kb, v in sorted(backends.items())
        )
        warmups = engines.get("warmups", 0)
        warmup_s = engines["seconds"].get("warmup", 0.0)
        print(f"kernel backends      {parts}; {warmups} warm-ups "
              f"({warmup_s:.3f} s wall)")
    inv = stats["invalidations"]
    print(f"invalidations        epoch advances {inv['epoch_advances']}, "
          f"carried forward {inv['carried_forward']}, "
          f"forced re-tunes {inv['forced_retunes']}")
    storage = stats.get("storage")
    if storage is not None:
        streaming = engines.get("streaming", {})
        print(f"storage tier         {storage['demotions']} demotions / "
              f"{storage['promotions']} promotions "
              f"({storage['promote_misses']} misses, "
              f"{storage['tier_evictions']} tier evictions), "
              f"{storage['entries']} entries, "
              f"{storage['resident_bytes']} B resident")
        print(f"streaming            {streaming.get('requests', 0)} requests "
              f"over {streaming.get('blocks', 0)} row blocks "
              f"({streaming.get('seconds', 0.0):.6f} s)")
    model = service.stats()["model"]  # re-read: a late promotion counts
    promoted_at = model.get("promoted_at")
    when = (
        time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(promoted_at))
        if promoted_at
        else "never"
    )
    print(f"model                {model['version']} "
          f"(source {model['source'] or '-'}, "
          f"promotions {model['promotions']}, promoted {when})")
    if spiller is not None:
        obs_block = stats.get("observability", {})
        print(f"observability        spilled to {metrics_dir} "
              f"({obs_block.get('spans_recorded', 0)} spans, "
              f"{obs_block.get('spans_dropped', 0)} dropped); "
              f"inspect with 'repro top {metrics_dir} --once'")
    if controller is not None:
        cstats = controller.stats()
        telemetry = cstats["telemetry"]
        print(f"adaptive             {cstats['drift_events']} drift events, "
              f"{cstats['retrainer']['retrains']} retrains, "
              f"{cstats['promotions']} promotions "
              f"({telemetry['recorded']} telemetry records, "
              f"{telemetry['shadowed']} shadow-probed)")
    if distributed:
        dist = stats["distributed"]
        sup = dist["supervisor"]
        lost = args.requests - len(report.results)
        print(f"distributed          {sup['workers']} worker processes, "
              f"{dist['fingerprints']} routed fingerprints, "
              f"shm pool {dist['shm']['slots']}x"
              f"{dist['shm']['slot_bytes']} B "
              f"({dist['shm']['overflows']} overflows)")
        print(f"worker respawns      {sup['respawns']} "
              f"({dist['retried_requests']} requests retried, "
              f"{lost} lost)")
        if kill_after and lost == 0:
            print("kill recovery        OK: every request on the killed "
                  "shard was replayed and served")
        if verify_identity:
            mismatches = _verify_reference_identity(
                args, trace, report, reference_kwargs
            )
            if mismatches:
                print(f"bitwise identity     FAILED: {mismatches} of "
                      f"{len(report.results)} results differ from the "
                      f"single-process service", file=sys.stderr)
                return 1
            print(f"bitwise identity     OK: {len(report.results)} "
                  f"results identical to the single-process service")
    elif verify_identity:
        # without --distributed the reference is a storage-free in-RAM
        # service: identical results prove tiering changes no math
        mismatches = _verify_reference_identity(
            args, trace, report, reference_kwargs
        )
        if mismatches:
            print(f"bitwise identity     FAILED: {mismatches} of "
                  f"{len(report.results)} results differ from the "
                  f"in-RAM reference service", file=sys.stderr)
            return 1
        print(f"bitwise identity     OK: {len(report.results)} "
              f"results identical to the in-RAM reference service")
    return 0


def _verify_reference_identity(args, trace, report, service_kwargs):
    """Replay *trace* on a plain in-process service; count differing bits.

    The reference kwargs deliberately exclude the storage tier and any
    streaming override, so this doubles as the bitwise oracle for both
    the distributed tier and a tiered (``--storage-dir``) serve.
    """
    from repro.service import TuningService, replay, service_for_suite

    if args.store:
        single = service_for_suite(
            args.store, fingerprint=args.fingerprint, **service_kwargs
        )
    else:
        space = make_space(args.system, args.backend)
        tuner = (
            RandomForestTuner(args.model) if args.model else RunFirstTuner()
        )
        single = TuningService(space, tuner, **service_kwargs)
    with single:
        reference = replay(single, trace, clients=args.clients)
    return sum(
        1
        for got, want in zip(report.results, reference.results)
        if not np.array_equal(got.y, want.y)
    )


def cmd_stream(args: argparse.Namespace) -> int:
    """Serve an evolving matrix through the streaming mutation path."""
    import time

    from repro.datasets.evolving import generate_evolving
    from repro.formats import convert
    from repro.formats.coo import COOMatrix
    from repro.runtime.engine import WorkloadEngine
    from repro.runtime.epoch import RedecisionPolicy
    from repro.service import TuningService

    space = make_space(args.system, args.backend)
    workload = generate_evolving(
        args.family, epochs=args.epochs, seed=args.seed
    )
    mats = workload.compacted()
    policy = RedecisionPolicy(threshold=args.threshold)
    tuner = RunFirstTuner()
    key = workload.name
    matrix = DynamicMatrix(workload.initial)
    rng = np.random.default_rng(args.seed)
    service = TuningService(
        space, tuner, workers=args.workers, redecision=policy
    )
    verified = mismatched = epoch_mismatches = 0
    epochs_reached = 0
    updates = []
    with service:
        session = service.session("stream")
        for epoch in range(workload.epochs + 1):
            if epoch > 0:
                upd = session.update(
                    matrix, workload.deltas[epoch - 1], key=key
                )
                updates.append(upd)
                epochs_reached = upd.epoch
            fresh = references = None
            for _ in range(args.requests_per_epoch):
                x = rng.standard_normal(mats[epoch].ncols)
                res = session.spmv(matrix, x, key=key)
                if res.epoch != epoch:
                    epoch_mismatches += 1
                    continue
                if not args.no_verify:
                    # one reference engine per epoch: all its requests
                    # verify against the same converted container
                    if fresh is None:
                        fresh = WorkloadEngine(space)
                        references = {}
                    if res.format not in references:
                        references[res.format] = convert(
                            mats[epoch], res.format
                        )
                    ref = fresh.execute(
                        references[res.format], x, key=res.format
                    )
                    if np.array_equal(res.y, ref.y):
                        verified += 1
                    else:
                        mismatched += 1
    stats = service.stats()
    inv = stats["invalidations"]
    carried = sum(1 for u in updates if u.carried_forward)
    retuned = sum(1 for u in updates if u.retuned)

    # engine-level timing: the incremental path (delta merge + stat
    # maintenance + carried-forward decisions) vs rebuilding the engine
    # entry from scratch each epoch (re-canonicalise, re-hash, re-stat,
    # re-tune, re-convert) — same requests, same tuner
    operands = [
        [rng.standard_normal(m.ncols) for _ in range(args.requests_per_epoch)]
        for m in mats
    ]
    t0 = time.perf_counter()
    inc_engine = WorkloadEngine(space, tuner, redecision=policy)
    inc_engine.track(workload.initial, key=key)
    for epoch in range(workload.epochs + 1):
        if epoch > 0:
            inc_engine.update(key, workload.deltas[epoch - 1])
        for x in operands[epoch]:
            inc_engine.execute(matrix, x, key=key)
    incremental_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    for epoch in range(workload.epochs + 1):
        m = mats[epoch]
        rebuilt = COOMatrix(m.nrows, m.ncols, m.row, m.col, m.data)
        engine = WorkloadEngine(space, tuner)
        for x in operands[epoch]:
            engine.execute(rebuilt, x)
    scratch_wall = time.perf_counter() - t0
    speedup = scratch_wall / incremental_wall if incremental_wall else 0.0

    total_checks = verified + mismatched
    print(f"stream               {workload.name}: {workload.epochs} epochs, "
          f"{args.requests_per_epoch} requests/epoch on {space.name}")
    print(f"epochs               {epochs_reached} advanced "
          f"(nnz {mats[0].nnz} -> {mats[-1].nnz})")
    print(f"decisions            {carried} carried forward, {retuned} forced "
          f"re-tunes (drift threshold {policy.threshold})")
    print(f"invalidations        epoch_advances={inv['epoch_advances']} "
          f"carried_forward={inv['carried_forward']} "
          f"forced_retunes={inv['forced_retunes']}")
    if args.no_verify:
        print("identity             skipped (--no-verify)")
    elif mismatched:
        print(f"identity             MISMATCH: {mismatched}/{total_checks} "
              f"results differ from a from-scratch engine")
    else:
        print(f"identity             {verified}/{total_checks} results "
              f"bitwise-identical to a from-scratch engine")
    print(f"speedup              incremental serving {speedup:.1f}x vs "
          f"from-scratch rebuild per epoch")
    failed = False
    if epoch_mismatches:
        print(f"stream: {epoch_mismatches} results stamped with an "
              f"unexpected epoch", file=sys.stderr)
        failed = True
    if epochs_reached != workload.epochs:
        print(f"stream: expected epoch {workload.epochs}, reached "
              f"{epochs_reached}", file=sys.stderr)
        failed = True
    return 1 if (failed or mismatched) else 0


def cmd_record(args: argparse.Namespace) -> int:
    """Capture a seeded live workload into a replayable trace directory."""
    from repro.trace import record_workload

    if args.service == "inproc" and (args.kill_at or args.kill_with_update):
        print("record: kill drills need --service distributed",
              file=sys.stderr)
        return 2
    space = make_space(args.system, args.backend)
    tuner = RunFirstTuner()
    if args.service == "distributed":
        from repro.distributed import DistributedService

        service = DistributedService(
            space, tuner, workers=args.workers or 4
        )
    else:
        from repro.service import TuningService

        service = TuningService(space, tuner, workers=args.workers or 2)
    with service:
        trace = record_workload(
            service,
            args.out,
            name=args.name,
            requests=args.requests,
            sessions=args.sessions,
            n_matrices=args.n_matrices,
            seed=args.seed,
            family=args.family,
            updates=args.updates,
            spmm_every=args.spmm_every,
            promote_at=args.promote_at,
            kill_at=args.kill_at,
            kill_with_update=args.kill_with_update,
        )
    counts = trace.counts
    print(f"recorded             {counts['requests']} requests, "
          f"{counts['updates']} updates from "
          f"{len(trace.header.get('sessions', []))} sessions")
    print(f"events               {counts['events']} "
          f"({counts['kills']} kills, {counts['promotions']} promotions)")
    print(f"matrices             {len(trace.matrix_keys())} over "
          f"{trace.space.get('system')}/{trace.space.get('backend')} "
          f"({trace.header.get('service', {}).get('kind')} tier)")
    print(f"trace                {trace.path} "
          f"(fingerprint {trace.fingerprint})")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Deterministically re-drive a recorded trace; verify bitwise."""
    import json
    import tempfile

    from repro.trace import (
        load_trace,
        replay_trace,
        service_for_trace,
        validate_trace,
    )

    problems = validate_trace(args.trace)
    if problems:
        for problem in problems:
            print(f"replay: {args.trace}: {problem}", file=sys.stderr)
        return 2
    trace = load_trace(args.trace)
    counts = trace.counts
    print(f"trace                {trace.name} "
          f"(fingerprint {trace.fingerprint})")
    print(f"events               {counts['events']} "
          f"({counts['requests']} requests, {counts['updates']} updates, "
          f"{counts['kills']} kills, {counts['promotions']} promotions)")

    kind = "inproc" if args.service == "adaptive" else args.service
    service = service_for_trace(trace, kind, workers=args.workers)
    controller = None
    if args.service == "adaptive":
        from repro.adaptive import AdaptiveController, ModelRegistry

        service.shadow_every = 4
        registry_dir = args.registry or tempfile.mkdtemp(
            prefix="repro-registry-"
        )
        controller = AdaptiveController(
            service, ModelRegistry(registry_dir), background=True
        ).attach()
    print(f"service              {args.service}, "
          f"{service.workers} workers on "
          f"{trace.space.get('system')}/{trace.space.get('backend')}")
    print(f"speed                {args.speed}")
    with service:
        report = replay_trace(
            service,
            trace,
            speed=args.speed,
            verify=not args.no_verify,
        )
        if controller is not None:
            controller.close()
    print(f"replayed             {report.requests} requests, "
          f"{report.updates} updates in {report.wall_seconds:.2f}s "
          f"({report.throughput_rps:.1f} rps)")
    if report.kills_injected or report.kills_skipped:
        print(f"kills                {report.kills_injected} injected, "
              f"{report.kills_skipped} skipped (tier has no kill hook)")
    if report.promotions_applied or report.promotions_skipped:
        print(f"promotions           {report.promotions_applied} re-stamped")
    print(f"latency              {report.mean_latency_seconds * 1e3:.3f}ms "
          f"mean vs {report.recorded_mean_latency_seconds * 1e3:.3f}ms "
          f"recorded")
    if args.no_verify:
        print("verification         skipped (--no-verify)")
    elif report.mismatches or report.lost:
        print(f"verification         MISMATCH: "
              f"{len(report.mismatches)} fields differ, "
              f"{report.lost} requests lost")
        for mismatch in report.mismatches[:10]:
            print(f"  seq {mismatch['seq']} {mismatch['key']} "
                  f"{mismatch['field']}: recorded {mismatch['recorded']!r} "
                  f"!= replayed {mismatch['replayed']!r}", file=sys.stderr)
    else:
        print(f"verification         {report.verified}/{report.verified} "
              f"bitwise-identical, {report.lost} lost")
    print(f"results digest       {report.results_digest}")
    if args.bench_out:
        payload = {
            "benchmark": "replay",
            "config": {
                "trace": str(args.trace),
                "service": args.service,
                "speed": args.speed,
                "workers": service.workers,
            },
            "metrics": report.to_dict(),
        }
        with open(args.bench_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench                wrote {args.bench_out}")
    ok = args.no_verify or report.ok
    print(f"replay               {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def cmd_adapt(args: argparse.Namespace) -> int:
    """End-to-end adaptive loop over a synthetic drifting workload."""
    import tempfile

    from repro.adaptive import (
        AdaptiveController,
        DriftMonitor,
        ModelRegistry,
        Retrainer,
        bootstrap,
        drifting_trace,
        mispredict_rate,
    )
    from repro.core.tuners.ml import RandomForestTuner
    from repro.service import TuningService, replay

    space = make_space(args.system, args.backend)
    boot = bootstrap(
        args.system,
        args.backend,
        n_matrices=args.train_matrices,
        seed=args.seed,
    )
    scenario = drifting_trace(
        n_matrices=args.n_matrices, requests=args.requests, seed=args.seed + 1
    )
    frozen_mis = mispredict_rate(boot.model, scenario.after_matrices, space)

    registry = ModelRegistry(
        args.registry or tempfile.mkdtemp(prefix="repro-registry-")
    )
    initial = registry.publish(
        boot.model, metadata={"source": boot.baseline.source}
    )
    registry.promote(initial)
    service = TuningService(
        space, workers=args.workers, shadow_every=args.shadow_every
    )
    service.promote_model(
        RandomForestTuner(registry.load()),
        version=initial,
        source=boot.baseline.source,
        algorithm="random_forest",
    )
    controller = AdaptiveController(
        service,
        registry,
        monitor=DriftMonitor(
            boot.baseline, window=64, min_observations=24, min_shadowed=6
        ),
        retrainer=Retrainer(system=args.system, backend=args.backend),
        baseline_dataset=boot.dataset,
        check_every=args.check_every,
        background=False,
        source=boot.baseline.source,
    )
    # serve the pre-drift phase once, then the drifted phase in waves —
    # sustained drifted traffic lets the loop probe the whole population,
    # retrain, and confirm the fix instead of adapting from one snapshot
    with service, controller:
        replay(service, scenario.phase_trace("before"), clients=args.clients)
        post = scenario.phase_trace("after")
        for _ in range(args.waves):
            replay(service, post, clients=args.clients)
    stats = controller.stats()

    print(f"bootstrap            {initial} trained on "
          f"{args.train_matrices} banded-mix matrices "
          f"(test accuracy {100 * boot.test_scores['tuned_accuracy']:.1f}%)")
    requests_served = service.stats()["requests_served"]
    print(f"workload             {requests_served} requests over "
          f"2x{args.n_matrices} matrices on {space.name}, population "
          f"shift at request {scenario.shift_index} "
          f"({args.waves} drifted waves)")
    print(f"telemetry            {stats['telemetry']['recorded']} records, "
          f"{stats['telemetry']['shadowed']} shadow-probed, "
          f"{stats['telemetry']['mispredicts']} mispredicts observed")
    print(f"drift                "
          f"{stats['last_trigger'] or stats['last_drift'] or 'no check ran'}")
    print(f"retrain              {stats['retrainer']['retrains']} retrains "
          f"({stats['retrain_failures']} failures), "
          f"{controller.promotions} promotions")
    if controller.promotions == 0:
        print("adaptive loop never promoted a model; nothing to compare",
              file=sys.stderr)
        return 1
    adapted = registry.load()
    adapted_mis = mispredict_rate(adapted, scenario.after_matrices, space)
    version = registry.current()
    reduction = (
        100.0 * (frozen_mis - adapted_mis) / frozen_mis if frozen_mis else 0.0
    )
    print(f"promoted             {version} "
          f"(registry {registry.stats()['versions']} versions, "
          f"current {version})")
    print(f"mispredict rate      frozen {100 * frozen_mis:.1f}% -> "
          f"adaptive {100 * adapted_mis:.1f}% on the drifted segment "
          f"({reduction:.1f}% lower)")
    return 0


def _run_experiment(spec, store, jobs: int, until: str | None) -> int:
    from repro.experiments import ExperimentOrchestrator

    orchestrator = ExperimentOrchestrator(spec, store, jobs=jobs)
    result = orchestrator.run(until=until)
    print(f"experiment           {spec.name} "
          f"(fingerprint {spec.fingerprint})")
    print(f"corpus               {spec.corpus.n_matrices} matrices, "
          f"seed {spec.corpus.seed}")
    print(f"targets              {', '.join(spec.space_names)}")
    for outcome in result.outcomes:
        source = "store" if outcome.cached else "computed"
        print(f"  {outcome.stage:<10} {source:<9} {outcome.seconds:8.3f} s "
              f"[{outcome.key}]")
    gen = orchestrator.collection.stats_computed
    print(f"matrices generated   {gen}")
    if result.model_paths:
        print(f"models exported      {len(result.model_paths)} -> "
              f"{orchestrator.model_dir}")
    if result.report is not None:
        for row in result.report["models"]:
            acc = 100 * row["test_scores"]["tuned_accuracy"]
            print(f"  {row['space']:<18} {row['algorithm']:<16} "
                  f"tuned accuracy {acc:6.2f}%")
    print(f"stages served from the artifact store: "
          f"{result.cached_stages}/{result.total_stages}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Expose a serve's spilled metrics: Prometheus text or JSONL.

    Both formats render the *same* snapshot records (the last line of
    ``metrics.jsonl``), so their values are identical by construction —
    the invariant ``tests/obs`` locks.
    """
    import json as _json

    from repro.obs.dashboard import read_snapshots
    from repro.obs.metrics import render_prometheus

    snap = read_snapshots(args.directory, last=1)
    if not snap["metrics"]:
        print(f"metrics: no metrics.jsonl under {args.directory} "
              "(run serve with --metrics-dir)", file=sys.stderr)
        return 2
    line = snap["metrics"][-1]
    if args.format == "json":
        print(_json.dumps(line, separators=(",", ":"), default=str))
    else:
        sys.stdout.write(render_prometheus(line["metrics"]))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a serve's ``--metrics-dir`` spill directory."""
    from repro.obs.dashboard import run_top

    run_top(
        args.directory,
        interval=args.interval,
        iterations=1 if args.once else args.iterations,
    )
    return 0


def cmd_storage(args: argparse.Namespace) -> int:
    """Inspect a serve's ``--storage-dir`` disk tier."""
    import time

    from repro.storage.tier import StorageTier

    tier = StorageTier(args.directory)
    stats = tier.stats()
    entries = tier.entries()
    print(f"storage tier         {stats['directory']}")
    print(f"entries              {stats['entries']} "
          f"({stats['resident_bytes']} B resident"
          + (f", capacity {stats['capacity_bytes']} B"
             if stats["capacity_bytes"] else "")
          + ")")
    if stats["formats"]:
        print(f"formats              {', '.join(stats['formats'])}")
    if entries:
        now = time.time()
        print(f"{'key':<34}{'format':<7}{'shape':<18}{'nnz':>10}"
              f"{'bytes':>12}{'epoch':>7}{'age':>9}")
        for entry in entries:
            key = entry.key if len(entry.key) <= 32 else entry.key[:29] + "..."
            age = max(0.0, now - entry.stored_at)
            print(f"{key:<34}{entry.format:<7}"
                  f"{f'{entry.nrows}x{entry.ncols}':<18}{entry.nnz:>10}"
                  f"{entry.nbytes:>12}{entry.epoch:>7}{age:>8.0f}s")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import ArtifactStore, ExperimentSpec

    spec = ExperimentSpec.load(args.spec)
    store = ArtifactStore(args.store)
    return _run_experiment(spec, store, args.jobs, args.until)


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.experiments import ArtifactStore

    store = ArtifactStore(args.store)
    spec = store.load_spec(args.fingerprint)
    return _run_experiment(spec, store, args.jobs, None)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-oracle",
        description="Morpheus-Oracle reproduction: sparse-format auto-tuning",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="list simulated systems").set_defaults(
        func=cmd_systems
    )

    sub.add_parser(
        "backends", help="list real kernel backends and probe results"
    ).set_defaults(func=cmd_backends)

    p = sub.add_parser("profile", help="optimal-format distribution")
    _add_target_args(p)
    _add_corpus_args(p)
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("train", help="train + tune a model (offline stage)")
    _add_target_args(p)
    _add_corpus_args(p)
    _add_jobs_arg(p)
    p.add_argument("-o", "--output", required=True, help="model file path")
    p.add_argument(
        "--algorithm", default="random_forest",
        choices=["random_forest", "decision_tree"],
    )
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("features", help="Table-I features of a .mtx file")
    p.add_argument("matrix", help="Matrix Market file")
    p.set_defaults(func=cmd_features)

    p = sub.add_parser("predict", help="predict the optimal format")
    p.add_argument("--model", required=True, help="Oracle model file")
    p.add_argument("matrix", help="Matrix Market file")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("tune", help="TuneMultiply report for a .mtx file")
    p.add_argument("--model", required=True, help="Oracle model file")
    p.add_argument("--repetitions", type=int, default=1000)
    p.add_argument("matrix", help="Matrix Market file")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "batch", help="serve a batched workload through the runtime engine"
    )
    _add_target_args(p)
    p.add_argument(
        "-n", "--n-matrices", type=int, default=12,
        help="distinct matrices in the workload corpus",
    )
    p.add_argument(
        "--requests", type=int, default=60,
        help="SpMV requests to serve (matrices repeat)",
    )
    p.add_argument(
        "--model", default=None,
        help="Oracle model file (default: run-first tuner)",
    )
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "serve", help="drive the concurrent tuning service with traffic"
    )
    p.add_argument("--system", default=None, choices=sorted(SYSTEMS))
    p.add_argument(
        "--backend", default=None,
        choices=["serial", "openmp", "cuda", "hip"],
    )
    p.add_argument(
        "--store", default=None,
        help="replay a stored suite's corpus and exported model instead "
             "of a synthetic workload",
    )
    p.add_argument(
        "--fingerprint", default=None,
        help="suite fingerprint inside --store (default: latest)",
    )
    p.add_argument(
        "--model", default=None,
        help="Oracle model file for the synthetic workload "
             "(default: run-first tuner)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="service threads (worker processes with --distributed); "
             "default: derived from the host's core count",
    )
    p.add_argument(
        "--distributed", action="store_true",
        help="serve through the multi-process tier: worker processes "
             "with per-process engine caches, vectors over shared memory",
    )
    p.add_argument(
        "--kill-after", type=int, default=0,
        help="recovery drill (with --distributed): SIGKILL the worker "
             "owning the trace's first matrix after N served requests",
    )
    p.add_argument(
        "--verify-identity", action="store_true",
        help="after a --distributed replay, re-run the trace on a "
             "single-process service and require bitwise-identical "
             "results (exit 1 otherwise)",
    )
    p.add_argument(
        "--capacity", type=int, default=32,
        help="max live per-matrix engines before LRU eviction",
    )
    p.add_argument(
        "--shards", type=int, default=8,
        help="engine-cache lock shards (clamped to capacity)",
    )
    p.add_argument(
        "--max-batch", type=int, default=32,
        help="max requests coalesced into one kernel call (1 = naive)",
    )
    p.add_argument("--clients", type=int, default=8, help="client threads")
    p.add_argument(
        "--requests", type=int, default=200,
        help="total requests across all clients",
    )
    p.add_argument(
        "-n", "--n-matrices", type=int, default=8,
        help="distinct matrices in the workload",
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--adaptive", action="store_true",
        help="attach the adaptive loop (telemetry, drift detection, "
             "background retraining, hot model reload)",
    )
    p.add_argument(
        "--registry", default=None,
        help="model-registry directory for --adaptive (default: temp dir)",
    )
    p.add_argument(
        "--shadow-every", type=int, default=0,
        help="shadow-profile every Nth batch per matrix (0 = off; "
             "--adaptive defaults to 4)",
    )
    p.add_argument(
        "--check-every", type=int, default=32,
        help="drift-check cadence in observations (with --adaptive)",
    )
    p.add_argument(
        "--kernel-backend", default=None,
        choices=["numpy", "numba", "native", "auto"],
        help="pin the real kernel backend for every request "
             "(default: follow each matrix's tuner decision; "
             "'auto' = best available tier)",
    )
    p.add_argument(
        "--metrics-dir", default=None,
        help="spill metrics/spans/events to this directory while "
             "serving (metrics.prom, metrics.jsonl, spans.jsonl, "
             "events.jsonl; watch live with 'repro top DIR')",
    )
    p.add_argument(
        "--metrics-interval", type=float, default=0.5,
        help="spill cadence in seconds (with --metrics-dir)",
    )
    p.add_argument(
        "--metrics-retention-bytes", type=int, default=None,
        help="rotate each spilled jsonl file once it reaches this many "
             "bytes (default: unbounded)",
    )
    p.add_argument(
        "--metrics-retention-segments", type=int, default=4,
        help="rotated segments kept per jsonl file before the oldest "
             "is dropped (with --metrics-retention-bytes)",
    )
    p.add_argument(
        "--storage-dir", default=None,
        help="disk tier for evicted engines: converted containers "
             "demote here instead of being dropped, and promote back "
             "as mmap views (inspect with 'repro storage DIR')",
    )
    p.add_argument(
        "--storage-capacity-bytes", type=int, default=None,
        help="cap on resident tier bytes; oldest entries are evicted "
             "(default: unbounded)",
    )
    p.add_argument(
        "--stream-threshold-bytes", type=int, default=None,
        help="stream mmap-backed CSR containers at or above this size "
             "through row-block SpMV (0 = always stream, negative = "
             "never; default: 64 MiB)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "metrics",
        help="expose a serve's spilled metrics (Prometheus text or JSON)",
    )
    p.add_argument("directory", help="a serve's --metrics-dir directory")
    p.add_argument(
        "--format", default="prom", choices=["prom", "json"],
        help="exposition format; both render the same snapshot records",
    )
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "top",
        help="live dashboard over a serve's --metrics-dir spill directory",
    )
    p.add_argument("directory", help="a serve's --metrics-dir directory")
    p.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh cadence in seconds",
    )
    p.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (CI / scripting mode)",
    )
    p.add_argument(
        "--iterations", type=int, default=None,
        help="render N frames then exit (default: follow until Ctrl-C)",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "storage",
        help="inspect a serve's --storage-dir disk tier",
    )
    p.add_argument("directory", help="a serve's --storage-dir directory")
    p.set_defaults(func=cmd_storage)

    p = sub.add_parser(
        "stream",
        help="serve an evolving matrix through the mutation path",
    )
    from repro.datasets.evolving import EVOLVING_FAMILIES

    p.add_argument(
        "--family", default="growing_rmat",
        choices=sorted(EVOLVING_FAMILIES),
        help="evolving-workload generator family",
    )
    p.add_argument("--system", default="cirrus", choices=sorted(SYSTEMS))
    p.add_argument(
        "--backend", default="serial",
        choices=["serial", "openmp", "cuda", "hip"],
    )
    p.add_argument(
        "--epochs", type=int, default=12,
        help="number of epoch advances (deltas) to stream",
    )
    p.add_argument(
        "--requests-per-epoch", type=int, default=3,
        help="SpMV requests served at each epoch",
    )
    p.add_argument(
        "--threshold", type=float, default=0.25,
        help="re-decision drift threshold (stat drift above it re-tunes)",
    )
    p.add_argument("--workers", type=int, default=2, help="service threads")
    p.add_argument(
        "--no-verify", action="store_true",
        help="skip the bitwise identity check against from-scratch engines",
    )
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser(
        "record",
        help="capture a seeded live workload into a replayable trace",
    )
    p.add_argument("--out", required=True, help="trace directory to write")
    p.add_argument("--name", default="trace", help="trace name (header)")
    p.add_argument(
        "--service", default="inproc", choices=["inproc", "distributed"],
        help="serving tier to record from",
    )
    p.add_argument("--system", default="cirrus", choices=sorted(SYSTEMS))
    p.add_argument(
        "--backend", default="serial",
        choices=["serial", "openmp", "cuda", "hip"],
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="service threads (worker processes with --service distributed)",
    )
    p.add_argument("--requests", type=int, default=32)
    p.add_argument(
        "--sessions", type=int, default=2,
        help="client sessions the requests round-robin across",
    )
    p.add_argument(
        "-n", "--n-matrices", type=int, default=4,
        help="distinct matrices in the workload corpus",
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--family", default=None, choices=sorted(EVOLVING_FAMILIES),
        help="add one evolving matrix from this family to the corpus",
    )
    p.add_argument(
        "--updates", type=int, default=0,
        help="evolving-matrix update barriers to interleave (needs --family)",
    )
    p.add_argument(
        "--spmm-every", type=int, default=0,
        help="every Nth request is a 4-column block SpMM (0 = vectors only)",
    )
    p.add_argument(
        "--promote-at", type=int, default=0,
        help="promote a fresh model after N requests (recorded event)",
    )
    p.add_argument(
        "--kill-at", type=int, default=0,
        help="SIGKILL a worker after N requests (--service distributed)",
    )
    p.add_argument(
        "--kill-with-update", action="store_true",
        help="fire the kill immediately after an update barrier is "
             "submitted, so it lands mid-barrier (--service distributed)",
    )
    p.add_argument(
        "--compact", action="store_true",
        help="small fixed corpus (hundreds of rows) instead of sampled "
             "collection sizes — keeps the trace directory tiny",
    )
    p.set_defaults(func=cmd_record)

    p = sub.add_parser(
        "replay",
        help="deterministically re-drive a recorded trace, verify bitwise",
    )
    p.add_argument("--trace", required=True, help="trace directory to replay")
    p.add_argument(
        "--speed", default="max", choices=["1x", "10x", "100x", "max"],
        help="virtual-clock pacing of recorded arrival times",
    )
    p.add_argument(
        "--service", default="inproc",
        choices=["inproc", "distributed", "adaptive"],
        help="serving tier to replay against",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="service threads / worker processes (defaults per tier)",
    )
    p.add_argument(
        "--registry", default=None,
        help="model-registry directory for --service adaptive",
    )
    p.add_argument(
        "--no-verify", action="store_true",
        help="skip bitwise verification against the recorded digests",
    )
    p.add_argument(
        "--bench-out", default="BENCH_replay.json",
        help="write the replay report here as JSON ('' = skip)",
    )
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "adapt",
        help="demonstrate the adaptive loop on a drifting workload",
    )
    p.add_argument("--system", default="cirrus", choices=sorted(SYSTEMS))
    p.add_argument(
        "--backend", default="cuda",
        choices=["serial", "openmp", "cuda", "hip"],
    )
    p.add_argument(
        "--train-matrices", type=int, default=24,
        help="bootstrap training-corpus size (banded family mix)",
    )
    p.add_argument(
        "-n", "--n-matrices", type=int, default=6,
        help="matrices per workload phase (before/after the shift)",
    )
    p.add_argument(
        "--requests", type=int, default=160,
        help="total requests; the population shifts halfway",
    )
    p.add_argument("--workers", type=int, default=4, help="service threads")
    p.add_argument("--clients", type=int, default=4, help="client threads")
    p.add_argument(
        "--shadow-every", type=int, default=2,
        help="shadow-profile every Nth batch per matrix",
    )
    p.add_argument(
        "--check-every", type=int, default=16,
        help="drift-check cadence in observations",
    )
    p.add_argument(
        "--waves", type=int, default=3,
        help="replays of the drifted phase (sustained drifted traffic)",
    )
    p.add_argument(
        "--registry", default=None,
        help="model-registry directory (default: temp dir)",
    )
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=cmd_adapt)

    p = sub.add_parser(
        "run", help="run a declarative scenario suite (resumable)"
    )
    p.add_argument("spec", help="experiment spec JSON file")
    p.add_argument(
        "--store", required=True,
        help="artifact-store directory (stage outputs, models, spec)",
    )
    _add_jobs_arg(p)
    p.add_argument(
        "--until", default=None,
        choices=["profile", "dataset", "train", "export", "evaluate"],
        help="stop after this stage (resume later with `resume`)",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "resume", help="resume the suite recorded in an artifact store"
    )
    p.add_argument(
        "--store", required=True, help="artifact-store directory"
    )
    p.add_argument(
        "--fingerprint", default=None,
        help="spec fingerprint (default: the most recently run suite)",
    )
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_resume)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout piped into a pager/head that closed early — the Unix
        # convention is a silent exit, not a traceback
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
